//! # commsched — communication-aware job scheduling for tree/fat-tree clusters
//!
//! A from-scratch reproduction of *"Communication-aware Job Scheduling using
//! SLURM"* (Mishra, Agrawal, Malakar — ICPP Workshops 2020). The paper
//! proposes three node-allocation algorithms — **greedy**, **balanced** and
//! **adaptive** — that use a job's dominant MPI-collective communication
//! pattern and the current switch-level contention to pick better nodes than
//! SLURM's default `topology/tree` best-fit.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`hostlist`] — SLURM hostlist expressions (`n[0-3,5]`).
//! * [`topology`] — tree/fat-tree topologies, `topology.conf` I/O, distances.
//! * [`collectives`] — step generators for RD / RHVD / binomial collectives.
//! * [`netsim`] — flow-level network simulator (max–min fair sharing).
//! * [`workload`] — SWF job logs and Intrepid/Theta/Mira-like generators.
//! * [`core`] — the paper's allocators and contention/cost model.
//! * [`slurmsim`] — SLURM-like discrete-event scheduling engine.
//! * [`metrics`] — evaluation metrics, table/series rendering, and the
//!   counter/gauge/histogram registry behind machine-readable run reports.
//! * [`trace`] — deterministic virtual-time event tracing (JSONL and
//!   Chrome `trace_event` export) with zero-cost null recording.
//!
//! # Quickstart
//!
//! ```
//! use commsched::prelude::*;
//!
//! // A two-level fat-tree: 4 leaf switches x 8 nodes.
//! let tree = Tree::regular_two_level(4, 8);
//! let mut state = ClusterState::new(&tree);
//!
//! // Occupy a few nodes with a running communication-intensive job.
//! let busy: Vec<NodeId> = (0..6).map(NodeId).collect();
//! state
//!     .allocate(&tree, JobId(1), &busy, JobNature::CommIntensive)
//!     .unwrap();
//!
//! // Ask the balanced allocator for 8 nodes for an allgather-heavy job.
//! let req = AllocRequest::comm(JobId(2), 8)
//!     .with_pattern(CollectiveSpec::new(Pattern::Rhvd, 1 << 20));
//! let alloc = BalancedSelector.select(&tree, &state, &req).unwrap();
//! assert_eq!(alloc.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub use commsched_collectives as collectives;
pub use commsched_core as core;
pub use commsched_hostlist as hostlist;
pub use commsched_metrics as metrics;
pub use commsched_netsim as netsim;
pub use commsched_slurmsim as slurmsim;
pub use commsched_topology as topology;
pub use commsched_trace as trace;
pub use commsched_workload as workload;

/// One-stop imports for the common API surface.
pub mod prelude {
    pub use commsched_collectives::{CollectiveSpec, Pattern, Step};
    pub use commsched_core::{
        AdaptiveSelector, AllocRequest, BalancedSelector, ClusterState, CostModel,
        DefaultTreeSelector, GreedySelector, JobNature, MappingStrategy, NodeSelector,
        SelectorKind,
    };
    pub use commsched_metrics::{Registry, RunReport};
    pub use commsched_slurmsim::{BackfillPolicy, Engine, EngineConfig, JobOutcome, RunSummary};
    pub use commsched_topology::{NodeId, SwitchId, Tree};
    pub use commsched_trace::{Capture, ClassMask, NullRecorder, Recorder, Tracer};
    pub use commsched_workload::{Job, JobId, JobLog, LogSpec, SystemModel};
}
