//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of serde it actually uses: a
//! [`Serialize`] trait that renders straight into an in-memory JSON
//! [`Value`] (re-exported by the vendored `serde_json`), a marker
//! [`Deserialize`] trait, and the two derive macros. The derive macros
//! cover the shapes this codebase declares — named-field structs,
//! newtype tuple structs, and unit-variant enums — and intentionally
//! nothing more.

pub mod value;

pub use value::{Number, Value};

/// Re-export of the derive macros under the trait names, mirroring
/// `serde`'s `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

/// A type that can render itself as an in-memory JSON value.
///
/// This replaces serde's visitor-based `Serialize`; every call site in
/// the workspace ultimately wants JSON text or a [`Value`], so the
/// intermediate `Serializer` machinery is unnecessary.
pub trait Serialize {
    /// Render `self` as a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`.
///
/// Nothing in the workspace deserializes typed data (only
/// `serde_json::Value` round-trips through text), so the derive is a
/// compile-time no-op kept for source compatibility.
pub trait Deserialize {}

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}

impl_ser_unsigned!(u8, u16, u32, u64, usize);
impl_ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// JSON object keys must be strings; non-string keys are rendered
/// through their JSON form (numbers keep their textual representation,
/// exactly like `serde_json`'s integer map keys).
fn key_string(v: Value) -> String {
    match v {
        Value::String(s) => s,
        other => other.to_string(),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_json_value()), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_json_value()), v.to_json_value()))
                .collect(),
        )
    }
}

impl Deserialize for Value {}
