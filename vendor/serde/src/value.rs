//! The in-memory JSON tree shared by the vendored `serde` and
//! `serde_json` crates. Lives here (the dependency root) so both the
//! `Serialize` trait and the `serde_json` front end can name it.

use std::fmt;

/// A JSON number: unsigned, signed, or floating point — mirroring
/// `serde_json::Number`'s three-way representation so integers survive
/// round-trips without drifting through `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    pub fn from_u64(v: u64) -> Self {
        Number::U64(v)
    }

    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number::U64(v as u64)
        } else {
            Number::I64(v)
        }
    }

    pub fn from_f64(v: f64) -> Self {
        Number::F64(v)
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(_) | Number::F64(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U64(v) => Some(v as f64),
            Number::I64(v) => Some(v as f64),
            Number::F64(v) => Some(v),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    // Like serde_json: integral floats keep a ".0" so the
                    // type survives a round-trip.
                    if v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/inf; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An in-memory JSON value. Objects preserve insertion order (serde_json
/// with `preserve_order`) so emitted files are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_u64(&self) -> bool {
        matches!(self, Value::Number(n) if n.as_u64().is_some())
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Shared sentinel so `Index` can hand back a reference for misses,
/// matching `serde_json`'s panic-free indexing.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    pub(crate) fn write_pretty(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&PAD.repeat(indent + 1));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&PAD.repeat(indent + 1));
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Compact JSON text.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty-printed JSON text (two-space indent, serde_json style).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}
