//! Black-box tests of the deterministic parallel runtime: pooled
//! execution must be byte-for-byte equivalent to sequential execution
//! for every chain shape, at every thread count, including nested and
//! degenerate cases — and a panicking closure must surface exactly once
//! without wedging the pool.

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Thread counts every equivalence check runs at.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn at_threads<R>(n: usize, work: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("building the stand-in pool cannot fail")
        .install(work)
}

/// One of several map/flat_map chain shapes, applied via the parallel
/// runtime.
fn chain_parallel(items: Vec<u64>, shape: u8) -> Vec<u64> {
    match shape % 4 {
        0 => items
            .into_par_iter()
            .map(|x| x.wrapping_mul(3) + 1)
            .collect(),
        1 => items
            .into_par_iter()
            .map(|x| x ^ 0xabcd)
            .flat_map(|x| (0..(x % 4)).map(move |k| x + k).collect::<Vec<_>>())
            .collect(),
        2 => items
            .into_par_iter()
            .flat_map(|x| if x % 2 == 0 { Some(x / 2) } else { None })
            .map(|x| x + 7)
            .collect(),
        _ => items
            .into_par_iter()
            .map(|x| x.rotate_left(9))
            .flat_map(|x| vec![x, !x])
            .map(|x| x % 1000)
            .collect(),
    }
}

/// The same chain shapes via plain sequential iterators — the reference
/// the runtime must match exactly.
fn chain_sequential(items: Vec<u64>, shape: u8) -> Vec<u64> {
    match shape % 4 {
        0 => items.into_iter().map(|x| x.wrapping_mul(3) + 1).collect(),
        1 => items
            .into_iter()
            .map(|x| x ^ 0xabcd)
            .flat_map(|x| (0..(x % 4)).map(move |k| x + k))
            .collect(),
        2 => items
            .into_iter()
            .filter(|x| x % 2 == 0)
            .map(|x| x / 2 + 7)
            .collect(),
        _ => items
            .into_iter()
            .map(|x| x.rotate_left(9))
            .flat_map(|x| vec![x, !x])
            .map(|x| x % 1000)
            .collect(),
    }
}

proptest! {
    /// Pooled execution of an arbitrary map/flat_map chain equals the
    /// sequential reference at 1, 2, 4 and 8 threads.
    #[test]
    fn pooled_equals_sequential(
        items in proptest::collection::vec(any::<u64>(), 0..200),
        shape in any::<u8>(),
    ) {
        let expected = chain_sequential(items.clone(), shape);
        for n in THREADS {
            let got = at_threads(n, || chain_parallel(items.clone(), shape));
            prop_assert_eq!(&got, &expected, "threads={}", n);
        }
    }
}

#[test]
fn nested_par_iter_stress() {
    // An outer fan-out whose every item drives an inner parallel chain;
    // inner calls are flattened onto their worker, and the combined
    // output must equal the doubly-sequential reference at every thread
    // count.
    let expected: Vec<u64> = (0..8u64)
        .flat_map(|outer| (0..50u64).map(move |inner| outer * 1000 + inner * inner))
        .collect();
    for n in THREADS {
        let got: Vec<u64> = at_threads(n, || {
            (0..8u64)
                .collect::<Vec<_>>()
                .into_par_iter()
                .flat_map(|outer| {
                    (0..50u64)
                        .collect::<Vec<_>>()
                        .into_par_iter()
                        .map(move |inner| outer * 1000 + inner * inner)
                        .collect::<Vec<_>>()
                })
                .collect()
        });
        assert_eq!(got, expected, "threads={n}");
    }
}

#[test]
fn triply_nested_par_iter() {
    let expected: Vec<u32> = (0..4u32)
        .flat_map(|a| (0..3u32).flat_map(move |b| (0..2u32).map(move |c| a * 100 + b * 10 + c)))
        .collect();
    let got: Vec<u32> = at_threads(4, || {
        (0..4u32)
            .collect::<Vec<_>>()
            .into_par_iter()
            .flat_map(|a| {
                (0..3u32)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .flat_map(move |b| {
                        (0..2u32)
                            .collect::<Vec<_>>()
                            .into_par_iter()
                            .map(move |c| a * 100 + b * 10 + c)
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    });
    assert_eq!(got, expected);
}

#[test]
fn empty_and_single_item_inputs() {
    for n in THREADS {
        let empty: Vec<u32> = at_threads(n, || {
            Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect()
        });
        assert!(empty.is_empty(), "threads={n}");

        let single: Vec<u32> =
            at_threads(n, || vec![41u32].into_par_iter().map(|x| x + 1).collect());
        assert_eq!(single, vec![42], "threads={n}");

        let empty_flat: Vec<u32> = at_threads(n, || {
            vec![1u32, 2, 3]
                .into_par_iter()
                .flat_map(|_| Vec::<u32>::new())
                .collect()
        });
        assert!(empty_flat.is_empty(), "threads={n}");
    }
}

#[test]
fn par_chunks_equivalence() {
    let data: Vec<u64> = (0..173).collect();
    let expected: Vec<u64> = data.iter().map(|x| x * 2).collect();
    for n in THREADS {
        let got: Vec<u64> = at_threads(n, || {
            data.par_chunks(7)
                .flat_map(|chunk| chunk.iter().map(|x| x * 2).collect::<Vec<_>>())
                .collect()
        });
        assert_eq!(got, expected, "threads={n}");
    }
}

#[test]
fn panic_propagates_once_and_pool_survives() {
    for n in [2usize, 4] {
        let caught = std::panic::catch_unwind(|| {
            at_threads(n, || {
                (0..64u32)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .map(|x| {
                        if x == 13 {
                            panic!("unlucky item");
                        }
                        x
                    })
                    .collect::<Vec<_>>()
            })
        });
        let payload = caught.expect_err("the region's panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "unlucky item", "threads={n}");

        // The pool must stay fully usable after a panicked region.
        let after: Vec<u32> = at_threads(n, || {
            (0..32u32)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x * 2)
                .collect()
        });
        assert_eq!(after, (0..32u32).map(|x| x * 2).collect::<Vec<_>>());
    }
}

#[test]
fn repeated_regions_reuse_the_pool() {
    // Back-to-back regions exercise worker parking/waking; results must
    // stay exact over many iterations.
    for round in 0..200u64 {
        let got: u64 = at_threads(4, || {
            (0..50u64)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x + round)
                .collect::<Vec<_>>()
        })
        .into_iter()
        .sum();
        assert_eq!(got, (0..50).sum::<u64>() + 50 * round);
    }
}
