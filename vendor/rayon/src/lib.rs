//! Offline stand-in for `rayon` with real data parallelism.
//!
//! The subset this workspace uses — `par_iter`/`into_par_iter`,
//! `par_chunks`, `map`, `flat_map`, `collect` — is implemented as an
//! eager item list plus a composed push-based ("sink") transformation,
//! driven over a persistent worker pool (see [`pool`]). `collect`
//! partitions the items into contiguous chunks, workers claim chunks
//! from a shared counter and write into per-chunk output buffers, and
//! the buffers are stitched back together **by chunk index** — i.e. in
//! source order. The output of any chain is therefore identical at
//! every thread count; parallelism changes wall-clock only, never
//! bytes. That is the determinism guarantee the experiment sweeps rely
//! on.
//!
//! Nested parallel calls — a `par_iter` inside a closure already running
//! under another `par_iter` — execute sequentially on the worker they
//! land on: the enclosing region already owns the machine's parallelism,
//! and flattening (rather than splitting the budget down to 1 thread per
//! level) both keeps the outer fan-out wide and makes pool deadlock
//! impossible (workers never wait on the pool).
//!
//! A panic inside a parallel closure aborts the remaining chunks and is
//! re-raised exactly once on the calling thread, with the original
//! payload; the runtime itself has no panic or lock-poisoning paths
//! (it is scanned by detlint rule R1 like the deterministic core
//! crates).
//!
//! Thread count resolution, first match wins:
//! 1. inside a parallel region: 1 (nested calls are flattened);
//! 2. an enclosing [`ThreadPool::install`] scope;
//! 3. the `RAYON_NUM_THREADS` environment variable;
//! 4. [`std::thread::available_parallelism`].

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

mod pool;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

thread_local! {
    /// Thread budget installed by [`ThreadPool::install`] (0 = none).
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// True while this thread is executing inside a parallel region —
    /// as the calling thread or as a pool worker. Nested parallel calls
    /// then see a budget of 1 and run sequentially in place.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Flag a pool worker thread permanently: everything it runs is inside
/// some parallel region.
pub(crate) fn mark_worker_thread() {
    IN_PARALLEL.with(|c| c.set(true));
}

/// RAII scope for the calling thread's `IN_PARALLEL` flag, entered for
/// the duration of its own share of a region's work.
struct ParallelGuard {
    prev: bool,
}

impl ParallelGuard {
    fn enter() -> Self {
        ParallelGuard {
            prev: IN_PARALLEL.with(|c| c.replace(true)),
        }
    }
}

impl Drop for ParallelGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_PARALLEL.with(|c| c.set(prev));
    }
}

/// The number of threads parallel iterators would use here and now.
pub fn current_num_threads() -> usize {
    if IN_PARALLEL.with(Cell::get) {
        return 1;
    }
    let o = OVERRIDE.with(Cell::get);
    if o > 0 {
        return o;
    }
    // detlint: allow(D2) — honoring RAYON_NUM_THREADS is this crate's
    // documented contract, and the thread count never affects output
    // bytes (results are stitched in source order).
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder for a [`ThreadPool`] — only the thread count is configurable.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type kept for API compatibility; building cannot fail here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` threads (0 means "use the default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// A thread-budget scope. Worker threads live in one shared process-wide
/// pool (grown on demand); a `ThreadPool` value is just the budget that
/// [`install`](ThreadPool::install) puts in scope.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's thread count governing every parallel
    /// iterator it (transitively) drives on this thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = OVERRIDE.with(|c| c.replace(self.num_threads));
        let guard = RestoreOverride(prev);
        let out = op();
        drop(guard);
        out
    }
}

struct RestoreOverride(usize);

impl Drop for RestoreOverride {
    fn drop(&mut self) {
        OVERRIDE.with(|c| c.set(self.0));
    }
}

/// The composed per-item transformation: takes one source item and an
/// output sink to push results into.
type EachFn<'a, S, T> = dyn Fn(S, &mut dyn FnMut(T)) + Sync + 'a;

/// A parallel iterator chain: source items plus the composed push-based
/// transformation, evaluated when [`ParIter::collect`] drives it.
///
/// The transformation is a single borrowed closure taking an item and an
/// output sink; `map`/`flat_map` wrap it without boxing intermediate
/// `Vec`s, so a chain's per-item cost is plain nested calls.
pub struct ParIter<'a, S, T> {
    items: Vec<S>,
    each: Box<EachFn<'a, S, T>>,
}

fn from_items<'a, S: Send + 'a>(items: Vec<S>) -> ParIter<'a, S, S> {
    ParIter {
        items,
        each: Box::new(|s, sink| sink(s)),
    }
}

impl<'a, S: Send + 'a, T: Send + 'a> ParIter<'a, S, T> {
    pub fn map<O: Send + 'a>(self, g: impl Fn(T) -> O + Sync + 'a) -> ParIter<'a, S, O> {
        let each = self.each;
        ParIter {
            items: self.items,
            each: Box::new(move |s, sink| each(s, &mut |t| sink(g(t)))),
        }
    }

    pub fn flat_map<C, O>(self, g: impl Fn(T) -> C + Sync + 'a) -> ParIter<'a, S, O>
    where
        O: Send + 'a,
        C: IntoIterator<Item = O>,
    {
        let each = self.each;
        ParIter {
            items: self.items,
            each: Box::new(move |s, sink| {
                each(s, &mut |t| {
                    for o in g(t) {
                        sink(o);
                    }
                })
            }),
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        drive(self.items, self.each.as_ref()).into_iter().collect()
    }
}

/// Chunks per team member: more chunks than workers so uneven per-item
/// cost rebalances, few enough that claim traffic stays negligible.
/// Chunk geometry can never change output bytes — the stitch order is
/// fixed by chunk index.
const CHUNKS_PER_THREAD: usize = 4;

/// Shared state of one in-flight parallel region.
struct Run<'e, S, T> {
    each: &'e EachFn<'e, S, T>,
    inputs: Vec<Mutex<Option<Vec<S>>>>,
    outputs: Vec<Mutex<Option<Vec<T>>>>,
    next: AtomicUsize,
    abort: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<S, T> Run<'_, S, T> {
    /// Claim and process chunks until none are left or the region
    /// aborts. Runs concurrently on the caller and any pool workers that
    /// picked the region's job up; the claim counter makes every chunk
    /// execute exactly once.
    fn work(&self) {
        loop {
            if self.abort.load(Ordering::Relaxed) {
                return;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.inputs.len() {
                return;
            }
            let Some(input) = pool::lock(&self.inputs[i]).take() else {
                continue;
            };
            let mut out: Vec<T> = Vec::with_capacity(input.len());
            let status = catch_unwind(AssertUnwindSafe(|| {
                for s in input {
                    (self.each)(s, &mut |t| out.push(t));
                }
            }));
            match status {
                Ok(()) => *pool::lock(&self.outputs[i]) = Some(out),
                Err(payload) => {
                    // First panic wins; everyone else drains out via the
                    // abort flag and the caller re-raises it once.
                    self.abort.store(true, Ordering::Relaxed);
                    let mut first = pool::lock(&self.panic);
                    if first.is_none() {
                        *first = Some(payload);
                    }
                    return;
                }
            }
        }
    }
}

/// Evaluate `each` over `items` on the worker pool. Outputs are stitched
/// in chunk (= source) order, making the result independent of thread
/// count, chunk geometry, and scheduling.
fn drive<S: Send, T: Send>(items: Vec<S>, each: &EachFn<'_, S, T>) -> Vec<T> {
    let n = items.len();
    let team = current_num_threads().min(n);
    if team <= 1 {
        // A budget of one, a nested call inside a running region, or a
        // trivial item count: run in place, no pool traffic at all. The
        // `IN_PARALLEL` flag is left as-is — a single-item region has no
        // parallelism to own, so deeper calls keep the full budget.
        let mut out = Vec::with_capacity(n);
        for s in items {
            each(s, &mut |t| out.push(t));
        }
        return out;
    }

    let chunks = n.min(team * CHUNKS_PER_THREAD);
    let stride = n.div_ceil(chunks);
    let mut inputs: Vec<Mutex<Option<Vec<S>>>> = Vec::with_capacity(chunks);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<S> = iter.by_ref().take(stride).collect();
        if chunk.is_empty() {
            break;
        }
        inputs.push(Mutex::new(Some(chunk)));
    }
    let run = Run {
        each,
        outputs: (0..inputs.len()).map(|_| Mutex::new(None)).collect(),
        inputs,
        next: AtomicUsize::new(0),
        abort: AtomicBool::new(false),
        panic: Mutex::new(None),
    };
    let job = || {
        let _guard = ParallelGuard::enter();
        run.work();
    };
    pool::run_in_pool(team - 1, &job);

    let Run { outputs, panic, .. } = run;
    if let Some(payload) = panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        resume_unwind(payload);
    }
    let mut out = Vec::with_capacity(n);
    for cell in outputs {
        if let Some(part) = cell.into_inner().unwrap_or_else(|e| e.into_inner()) {
            out.extend(part);
        }
    }
    out
}

/// `into_par_iter()` on owned collections.
pub trait IntoParallelIterator: Sized {
    type Item: Send;

    fn into_par_iter<'a>(self) -> ParIter<'a, Self::Item, Self::Item>
    where
        Self::Item: 'a;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter<'a>(self) -> ParIter<'a, T, T>
    where
        T: 'a,
    {
        from_items(self)
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;

    fn into_par_iter<'a>(self) -> ParIter<'a, T, T>
    where
        T: 'a,
    {
        from_items(self.into_iter().collect())
    }
}

/// `par_iter()`/`par_chunks()` on slices (and anything that derefs to
/// one).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<'_, &T, &T>;

    /// Parallel iterator over non-overlapping sub-slices of length
    /// `chunk_size` (the last may be shorter), in source order. A
    /// `chunk_size` of 0 is treated as 1.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<'_, &[T], &[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, &T, &T> {
        from_items(self.iter().collect())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<'_, &[T], &[T]> {
        from_items(self.chunks(chunk_size.max(1)).collect())
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, &T, &T> {
        self.as_slice().par_iter()
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<'_, &[T], &[T]> {
        self.as_slice().par_chunks(chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_preserves_source_order() {
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_concatenates_in_order() {
        let out: Vec<usize> = vec![0usize, 10, 20]
            .into_par_iter()
            .flat_map(|base| (0..3).map(move |k| base + k).collect::<Vec<_>>())
            .collect();
        assert_eq!(out, vec![0, 1, 2, 10, 11, 12, 20, 21, 22]);
    }

    #[test]
    fn nested_parallel_calls_work() {
        let out: Vec<usize> = vec![0usize, 100]
            .into_par_iter()
            .flat_map(|base| {
                (0..4)
                    .collect::<Vec<usize>>()
                    .into_par_iter()
                    .map(move |k| base + k)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(out, vec![0, 1, 2, 3, 100, 101, 102, 103]);
    }

    #[test]
    fn identical_results_at_every_thread_count() {
        let work = || -> Vec<u64> {
            (0u64..32)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17))
                .collect()
        };
        let one = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(work);
        let four = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(work);
        assert_eq!(one, four);
    }

    #[test]
    fn install_scopes_and_restores_the_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1i32, 2, 3];
        let doubled: Vec<i32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        assert_eq!(data.len(), 3);
    }

    #[test]
    fn par_chunks_covers_the_slice_in_order() {
        let data: Vec<u32> = (0..37).collect();
        let flat: Vec<u32> = data
            .par_chunks(5)
            .flat_map(|chunk| chunk.to_vec())
            .collect();
        assert_eq!(flat, data);
        let sizes: Vec<usize> = data.par_chunks(5).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![5, 5, 5, 5, 5, 5, 5, 2]);
    }

    #[test]
    fn nested_calls_report_one_thread() {
        let budgets: Vec<usize> = vec![(); 8]
            .into_par_iter()
            .map(|()| current_num_threads())
            .collect();
        // Inside a region every thread reports a budget of 1: nested
        // parallelism is flattened, not subdivided.
        assert!(budgets.iter().all(|&b| b == 1), "{budgets:?}");
    }
}
