//! Offline stand-in for `rayon`: `par_iter`/`into_par_iter` resolve to
//! the corresponding sequential `std` iterators. All downstream adapters
//! (`map`, `collect`, `flat_map`, ...) are the ordinary `Iterator`
//! methods, so call sites compile unchanged; they simply run on one
//! thread in this offline environment.

pub mod prelude {
    /// `into_par_iter()` — sequential stand-in returning the ordinary
    /// `IntoIterator` iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` on slices (and anything that derefs to one).
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    impl<T> ParallelSlice<T> for Vec<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
}
