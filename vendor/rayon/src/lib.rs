//! Offline stand-in for `rayon` with real data parallelism.
//!
//! The subset this workspace uses — `par_iter`/`into_par_iter`, `map`,
//! `flat_map`, `collect` — is implemented as an eager item list plus a
//! composed per-item closure, driven over a scoped thread team pulling
//! indices from a shared counter. Results are concatenated in **source
//! order**, so the output of any chain is identical at every thread
//! count; parallelism changes wall-clock only, never bytes. That is the
//! determinism guarantee the experiment sweeps rely on.
//!
//! Thread count resolution, first match wins:
//! 1. an enclosing [`ThreadPool::install`] scope (propagated, divided,
//!    into nested parallel calls);
//! 2. the `RAYON_NUM_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

thread_local! {
    /// Thread budget installed by [`ThreadPool::install`] (0 = none).
    static OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The number of threads parallel iterators would use here and now.
pub fn current_num_threads() -> usize {
    let o = OVERRIDE.with(|c| c.get());
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder for a [`ThreadPool`] — only the thread count is configurable.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type kept for API compatibility; building cannot fail here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` threads (0 means "use the default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// A thread-count scope: threads are spawned per parallel call, not kept
/// warm, so the "pool" is just the installed budget.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's thread count governing every parallel
    /// iterator it (transitively) drives on this thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = OVERRIDE.with(|c| c.replace(self.num_threads));
        let guard = RestoreOverride(prev);
        let out = op();
        drop(guard);
        out
    }
}

struct RestoreOverride(usize);

impl Drop for RestoreOverride {
    fn drop(&mut self) {
        OVERRIDE.with(|c| c.set(self.0));
    }
}

/// A parallel iterator chain: source items plus the composed per-item
/// transformation, evaluated when [`ParIter::collect`] drives it.
pub struct ParIter<'a, S, T> {
    items: Vec<S>,
    f: Box<dyn Fn(S) -> Vec<T> + Sync + 'a>,
}

impl<'a, S: Send + 'a, T: Send + 'a> ParIter<'a, S, T> {
    pub fn map<O: Send + 'a>(self, g: impl Fn(T) -> O + Sync + 'a) -> ParIter<'a, S, O> {
        let f = self.f;
        ParIter {
            items: self.items,
            f: Box::new(move |s| f(s).into_iter().map(&g).collect()),
        }
    }

    pub fn flat_map<C, O>(self, g: impl Fn(T) -> C + Sync + 'a) -> ParIter<'a, S, O>
    where
        O: Send + 'a,
        C: IntoIterator<Item = O>,
    {
        let f = self.f;
        ParIter {
            items: self.items,
            f: Box::new(move |s| f(s).into_iter().flat_map(&g).collect()),
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        drive(self.items, self.f).into_iter().collect()
    }
}

/// Evaluate `f` over `items` on a scoped thread team. Workers pull item
/// indices from a shared counter; per-item outputs land in their source
/// slot and are concatenated in source order, making the result
/// independent of the thread count and of scheduling.
fn drive<S: Send, T: Send>(items: Vec<S>, f: impl Fn(S) -> Vec<T> + Sync) -> Vec<T> {
    let budget = current_num_threads();
    let team = budget.min(items.len());
    if team <= 1 {
        return items.into_iter().flat_map(f).collect();
    }
    // Parallel calls nested inside a worker share the remaining budget
    // instead of multiplying it.
    let inner_budget = (budget / team).max(1);
    let slots: Vec<Mutex<Option<S>>> = items.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let results: Vec<Mutex<Option<Vec<T>>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..team {
            scope.spawn(|| {
                OVERRIDE.with(|c| c.set(inner_budget));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("work item claimed twice");
                    let out = f(item);
                    *results[i].lock().unwrap() = Some(out);
                }
            });
        }
    });
    results
        .into_iter()
        .flat_map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("work item produced no result")
        })
        .collect()
}

/// `into_par_iter()` on owned collections.
pub trait IntoParallelIterator: Sized {
    type Item: Send;

    fn into_par_iter<'a>(self) -> ParIter<'a, Self::Item, Self::Item>
    where
        Self::Item: 'a;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter<'a>(self) -> ParIter<'a, T, T>
    where
        T: 'a,
    {
        ParIter {
            items: self,
            f: Box::new(|s| vec![s]),
        }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;

    fn into_par_iter<'a>(self) -> ParIter<'a, T, T>
    where
        T: 'a,
    {
        ParIter {
            items: self.into_iter().collect(),
            f: Box::new(|s| vec![s]),
        }
    }
}

/// `par_iter()` on slices (and anything that derefs to one).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<'_, &T, &T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, &T, &T> {
        ParIter {
            items: self.iter().collect(),
            f: Box::new(|s| vec![s]),
        }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, &T, &T> {
        ParIter {
            items: self.iter().collect(),
            f: Box::new(|s| vec![s]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_preserves_source_order() {
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_concatenates_in_order() {
        let out: Vec<usize> = vec![0usize, 10, 20]
            .into_par_iter()
            .flat_map(|base| (0..3).map(move |k| base + k).collect::<Vec<_>>())
            .collect();
        assert_eq!(out, vec![0, 1, 2, 10, 11, 12, 20, 21, 22]);
    }

    #[test]
    fn nested_parallel_calls_work() {
        let out: Vec<usize> = vec![0usize, 100]
            .into_par_iter()
            .flat_map(|base| {
                (0..4)
                    .collect::<Vec<usize>>()
                    .into_par_iter()
                    .map(move |k| base + k)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(out, vec![0, 1, 2, 3, 100, 101, 102, 103]);
    }

    #[test]
    fn identical_results_at_every_thread_count() {
        let work = || -> Vec<u64> {
            (0u64..32)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17))
                .collect()
        };
        let one = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(work);
        let four = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(work);
        assert_eq!(one, four);
    }

    #[test]
    fn install_scopes_and_restores_the_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1i32, 2, 3];
        let doubled: Vec<i32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        assert_eq!(data.len(), 3);
    }
}
