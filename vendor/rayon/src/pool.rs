//! The persistent worker pool behind the parallel iterators.
//!
//! Workers are OS threads spawned lazily on first use and parked on a
//! condvar between parallel regions — steady-state `collect`s never pay a
//! thread spawn. A parallel region enqueues one copy of its job per helper
//! it wants; the caller runs the same job itself and then blocks on a
//! countdown latch until every enqueued copy has finished (or been
//! cancelled unclaimed). Jobs are `&dyn Fn()` borrows of the caller's
//! stack frame, lifetime-erased for the queue; the latch protocol is what
//! makes that sound — see [`run_in_pool`].
//!
//! Deadlock freedom rests on three facts: the caller always participates
//! (progress never depends on a worker being free), workers never enqueue
//! into the pool themselves (nested parallel regions run sequentially, see
//! `IN_PARALLEL` in `lib.rs`), and the only blocking waits are the caller
//! on a latch and idle workers on the queue condvar.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Cap on pool growth: comfortably above any plausible `--threads` value,
/// small enough that a runaway budget cannot exhaust process thread
/// limits.
const MAX_WORKERS: usize = 256;

/// Poison-free lock. A panic inside a parallel region must surface once,
/// as that panic — not cascade into `PoisonError` panics on every later
/// lock of the same state.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Countdown latch: `wait` returns once `count_down` has been called as
/// many times as the latch was created with.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut left = lock(&self.remaining);
        *left = left.saturating_sub(1);
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = lock(&self.remaining);
        while *left > 0 {
            left = self.done.wait(left).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One queued copy of a region's job. The pointer targets the caller's
/// stack frame; the caller keeps that frame alive by blocking on `latch`
/// until every copy has counted down.
struct Task {
    job: *const (dyn Fn() + Sync),
    latch: Arc<Latch>,
}

// SAFETY: the pointee is `Sync`, so calling it from any thread is fine,
// and the lifetime-erased borrow stays valid because `run_in_pool` does
// not return (and so the borrowed frame does not unwind or drop) until
// the latch records that every queued copy has finished or been
// cancelled. Workers never touch `job` after counting down.
unsafe impl Send for Task {}

struct Shared {
    queue: VecDeque<Task>,
    /// Worker threads spawned so far.
    workers: usize,
    /// Workers currently parked or about to park.
    idle: usize,
}

struct Pool {
    shared: Mutex<Shared>,
    work_ready: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Mutex::new(Shared {
            queue: VecDeque::new(),
            workers: 0,
            idle: 0,
        }),
        work_ready: Condvar::new(),
    })
}

fn worker_loop() {
    // Everything a worker runs is, by construction, inside some parallel
    // region — flag the thread once so nested `par_iter`s inside jobs run
    // sequentially instead of re-entering the pool.
    crate::mark_worker_thread();
    let p = pool();
    let mut shared = lock(&p.shared);
    loop {
        if let Some(task) = shared.queue.pop_front() {
            shared.idle = shared.idle.saturating_sub(1);
            drop(shared);
            // SAFETY: the enqueuing caller is still inside `run_in_pool`
            // (blocked on this latch or running its own copy), so the
            // pointee is alive. See the `Send` impl above.
            let job = unsafe { &*task.job };
            // A panicking job must neither kill the worker nor skip the
            // count-down (the caller would deadlock). The region's driver
            // has already captured the payload for re-raise on the caller
            // (see `Run::work` in lib.rs), so it is dropped here.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            task.latch.count_down();
            shared = lock(&p.shared);
            shared.idle += 1;
        } else {
            shared = p.work_ready.wait(shared).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Run `job` on the calling thread and on up to `helpers` pool workers
/// concurrently; return once the caller's invocation and every enqueued
/// copy have finished. The job must tolerate running any number of times
/// in [1, helpers + 1] — drivers built on a shared claim counter (like
/// `Run::work`) have exactly that shape. If no worker thread can be
/// spawned at all, the call degrades to the caller running alone.
pub(crate) fn run_in_pool(helpers: usize, job: &(dyn Fn() + Sync)) {
    let p = pool();
    // Lifetime-erase the borrow so it can sit in the 'static queue. Sound
    // because this function only returns after `latch.wait()` below — the
    // pointee outlives every queued copy.
    let erased: *const (dyn Fn() + Sync + 'static) =
        unsafe { std::mem::transmute(job as *const (dyn Fn() + Sync)) };

    let mut latch: Option<Arc<Latch>> = None;
    {
        let mut shared = lock(&p.shared);
        let deficit = helpers.saturating_sub(shared.idle);
        for _ in 0..deficit {
            if shared.workers >= MAX_WORKERS {
                break;
            }
            let spawned = std::thread::Builder::new()
                .name("rayon-worker".into())
                .spawn(worker_loop)
                .is_ok();
            if !spawned {
                break;
            }
            shared.workers += 1;
            shared.idle += 1;
        }
        if helpers > 0 && shared.workers > 0 {
            let l = Arc::new(Latch::new(helpers));
            for _ in 0..helpers {
                shared.queue.push_back(Task {
                    job: erased,
                    latch: Arc::clone(&l),
                });
            }
            latch = Some(l);
        }
    }
    if latch.is_some() {
        p.work_ready.notify_all();
    }

    // The caller always participates, so the region completes even if
    // every worker is busy elsewhere and no copy is ever claimed.
    job();

    if let Some(l) = latch {
        // Cancel copies no worker claimed before the caller finished the
        // whole region — they would only find an empty claim counter.
        let mut shared = lock(&p.shared);
        shared.queue.retain(|t| {
            let ours = Arc::ptr_eq(&t.latch, &l);
            if ours {
                t.latch.count_down();
            }
            !ours
        });
        drop(shared);
        l.wait();
    }
}
