//! Offline stand-in for `criterion`: same macro/group/bencher surface,
//! measured with plain wall-clock sampling. Reports min/median/max
//! per-iteration time to stdout in a criterion-like format.
//!
//! Environment knobs:
//! - `CRITERION_SAMPLE_SIZE` overrides every group's sample size.

use std::time::{Duration, Instant};

/// Target wall-clock time per sample; iteration counts are calibrated
/// against this so fast benchmarks still measure full samples.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: env_sample_size().unwrap_or(DEFAULT_SAMPLE_SIZE),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, env_sample_size().unwrap_or(DEFAULT_SAMPLE_SIZE), &mut f);
        self
    }
}

fn env_sample_size() -> Option<usize> {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if env_sample_size().is_none() {
            self.sample_size = n.max(2);
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier, possibly parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Anything `bench_function`/`bench_with_input` accepts as an id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] measures the
/// routine.
pub struct Bencher {
    /// Iterations per sample (calibrated by the harness).
    iters: u64,
    /// Wall-clock time of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Calibrate: one iteration, timed, to choose iters per sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples.first().copied().unwrap_or(0.0);
    let max = samples.last().copied().unwrap_or(0.0);
    let median = samples[samples.len() / 2];
    println!(
        "{label:<50} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        samples.len(),
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
