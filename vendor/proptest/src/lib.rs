//! Offline stand-in for `proptest`: deterministic random test-case
//! generation with the strategy combinators and macros this workspace
//! uses. There is no shrinking — a failing case reports the case number
//! and assertion message; cases are deterministic per (module, test,
//! case index), so failures reproduce exactly.

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::Any;

    /// Types with a canonical strategy, selected via [`any`].
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut crate::test_runner::TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut crate::test_runner::TestRng) -> Self {
                    rand::Rng::random(rng)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for crate::sample::Index {
        fn generate(rng: &mut crate::test_runner::TestRng) -> Self {
            crate::sample::Index {
                raw: rand::Rng::random(rng),
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias so call sites can write `prop::sample::...`, as with the
    /// real crate's prelude.
    pub use crate as prop;
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — fail the
/// current case (returns from the generated case closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)+
            )));
        }
    }};
}

/// `prop_assert_ne!(left, right)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// `prop_assume!(cond)` — discard the current case without failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// The test-definition macro: each contained `fn` becomes a test that
/// runs `config.cases` deterministic cases of its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::case_rng(module_path!(), stringify!($name), case);
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} case {case}/{}: {msg}",
                               stringify!($name), config.cases);
                    }
                }
            }
        }
    )*};
}
