//! Value-generation strategies: ranges, tuples, `prop_map`, constants,
//! regex-shaped strings.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A strategy yielding clones of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`prop_map`](Strategy::prop_map) adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`any`](crate::arbitrary::any) strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// String strategy from a regex-shaped pattern. Supports the subset the
/// workspace uses: literal characters, character classes like `[a-z0-9]`
/// (ranges and singletons), and `{m}` / `{m,n}` / `*` / `+` / `?`
/// quantifiers on the preceding atom.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (choices, min, max) in &atoms {
            let reps = if min == max {
                *min
            } else {
                rng.random_range(*min..=*max)
            };
            for _ in 0..reps {
                let k = rng.random_range(0..choices.len());
                out.push(choices[k]);
            }
        }
        out
    }
}

type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .expect("proptest shim: unclosed character class");
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).unwrap());
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .expect("proptest shim: unclosed quantifier");
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier min"),
                        hi.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 4)
            }
            Some('+') => {
                i += 1;
                (1, 4)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(!choices.is_empty(), "proptest shim: empty character class");
        atoms.push((choices, min, max));
    }
    atoms
}
