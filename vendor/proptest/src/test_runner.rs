//! Test-runner plumbing for the `proptest!` macro.

use std::hash::{Hash, Hasher};

/// The RNG driving case generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Runner configuration. Only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps debug-profile suites quick
        // while still exercising plenty of structure.
        ProptestConfig { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` discarded the case.
    Reject,
    /// `prop_assert*` failed with a message.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic per-(module, test, case) RNG: failures reproduce on
/// re-run without any persisted seed file.
pub fn case_rng(module: &str, test: &str, case: u32) -> TestRng {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    module.hash(&mut h);
    test.hash(&mut h);
    case.hash(&mut h);
    rand::SeedableRng::seed_from_u64(h.finish())
}
