//! Sampling strategies: pick-from-collection and the `Index` helper.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// An abstract index resolvable against any non-empty collection length,
/// like `proptest::sample::Index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index {
    pub(crate) raw: usize,
}

impl Index {
    /// Resolve against a collection of `len` elements (`len > 0`).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.raw % len
    }
}

/// Strategy picking uniformly from a fixed set of values.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// `select(options)` — like `proptest::sample::select`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select of empty options");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.random_range(0..self.options.len());
        self.options[k].clone()
    }
}
