//! `Option<T>` strategies, as `proptest::option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// `Some` with the real crate's default 90% probability, else `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy {
        inner,
        some_prob: 0.9,
    }
}

/// `Some` with probability `prob`, else `None`.
pub fn weighted<S: Strategy>(prob: f64, inner: S) -> OptionStrategy<S> {
    assert!((0.0..=1.0).contains(&prob), "probability out of range");
    OptionStrategy {
        inner,
        some_prob: prob,
    }
}

/// The [`of`] / [`weighted`] strategy.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
    some_prob: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.random_range(0.0..1.0) < self.some_prob {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
