//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

/// `vec(element, size)` — like `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
