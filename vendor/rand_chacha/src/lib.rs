//! Offline stand-in for `rand_chacha`: real ChaCha block functions (8,
//! 12 and 20 rounds) exposed through the vendored `rand` traits. Streams
//! are deterministic per seed; they are not bit-compatible with upstream
//! `rand_chacha` (nothing in the workspace requires that).

use rand::{RngCore, SeedableRng};

/// The ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even.
fn block(input: &[u32; 16], rounds: u32) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(input.iter()) {
        *o = o.wrapping_add(*i);
    }
    x
}

/// Generic ChaCha RNG over a fixed round count.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: u32> {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
}

impl<const ROUNDS: u32> ChaChaRng<ROUNDS> {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter (12..13) and nonce (14..15) start at zero.
        ChaChaRng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        self.buffer = block(&self.state, ROUNDS);
        self.index = 0;
        // 64-bit block counter in words 12..13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl<const ROUNDS: u32> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl<const ROUNDS: u32> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::from_seed_bytes(seed)
    }
}

/// ChaCha with 8 rounds.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;
