//! Offline stand-in for `serde_json`: text parsing/printing over the
//! [`serde::Value`] tree plus the `json!` construction macro. Only the
//! surface this workspace uses is implemented.

use std::fmt;
use std::io::Write;

pub use serde::value::{Number, Value};

/// Parse/serialize error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Types `from_str` can produce. Only [`Value`] is deserializable in
/// this shim — the workspace never deserializes typed data.
pub trait FromJson: Sized {
    fn from_json_value(v: Value) -> Result<Self>;
}

impl FromJson for Value {
    fn from_json_value(v: Value) -> Result<Self> {
        Ok(v)
    }
}

/// Convert any `Serialize` into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_json_value()
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String> {
    Ok(v.to_json_value().to_compact_string())
}

/// Pretty JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String> {
    Ok(v.to_json_value().to_pretty_string())
}

/// Pretty JSON straight into a writer.
pub fn to_writer_pretty<W: Write, T: serde::Serialize + ?Sized>(mut w: W, v: &T) -> Result<()> {
    w.write_all(v.to_json_value().to_pretty_string().as_bytes())?;
    Ok(())
}

/// Parse JSON text.
pub fn from_str<T: FromJson>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_json_value(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected '{kw}' at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error::new(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|e| Error::new(e.to_string()))
    }
}

/// Build a [`Value`] from a JSON-shaped literal. Supports nested object
/// and array literals with expression values, like `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_internal_array!([] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_internal_object!([] () $($tt)*) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: accumulate array elements. Each step munches one element
/// (object, array, or expression up to the next top-level comma).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    // Done.
    ([ $($elems:expr),* ]) => { $crate::Value::Array(vec![ $($elems),* ]) };
    // Trailing comma.
    ([ $($elems:expr),* ] ,) => { $crate::json_internal_array!([ $($elems),* ]) };
    // Nested object element.
    ([ $($elems:expr),* ] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($elems,)* $crate::json!({ $($inner)* }) ] $($($rest)*)?)
    };
    // Nested array element.
    ([ $($elems:expr),* ] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($elems,)* $crate::json!([ $($inner)* ]) ] $($($rest)*)?)
    };
    // Expression element.
    ([ $($elems:expr),* ] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($elems,)* $crate::to_value(&$next) ] $($($rest)*)?)
    };
}

/// Internal: accumulate object entries as `key => value` pairs already
/// converted to `(String, Value)` expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    // Done.
    ([ $($entries:expr),* ] ()) => { $crate::Value::Object(vec![ $($entries),* ]) };
    // Trailing comma.
    ([ $($entries:expr),* ] () ,) => { $crate::json_internal_object!([ $($entries),* ] ()) };
    // key: { nested object }
    ([ $($entries:expr),* ] () $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($entries,)* ($key.to_string(), $crate::json!({ $($inner)* })) ] () $($($rest)*)?)
    };
    // key: [ nested array ]
    ([ $($entries:expr),* ] () $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($entries,)* ($key.to_string(), $crate::json!([ $($inner)* ])) ] () $($($rest)*)?)
    };
    // key: null
    ([ $($entries:expr),* ] () $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($entries,)* ($key.to_string(), $crate::Value::Null) ] () $($($rest)*)?)
    };
    // key: expression
    ([ $($entries:expr),* ] () $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($entries,)* ($key.to_string(), $crate::to_value(&$val)) ] () $($($rest)*)?)
    };
}
