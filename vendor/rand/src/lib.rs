//! Offline stand-in for `rand` 0.10: the trait surface this workspace
//! uses (`Rng::random`, `Rng::random_range`, `SeedableRng::seed_from_u64`,
//! `SliceRandom::shuffle`) over any `RngCore` implementation.
//!
//! Streams are deterministic per seed but are not bit-compatible with
//! upstream `rand`; nothing in the workspace asserts upstream streams.

/// A source of random 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed via SplitMix64, so nearby
    /// integer seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::random`].
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty : $next:ident),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}

impl_standard_int!(u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64,
                   usize: next_u64, i8: next_u32, i16: next_u32, i32: next_u32,
                   i64: next_u64, isize: next_u64);

/// Uniform over `0..n` (`n > 0`) via widening multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening-multiply rejection sampling (Lemire); unbiased.
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// The user-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// In-place Fisher–Yates shuffling for slices.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}
