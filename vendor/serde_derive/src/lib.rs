//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the item token stream (no `syn`/`quote` available in this
//! environment) and emits `serde::Serialize` / `serde::Deserialize`
//! impls for the shapes this workspace declares:
//!
//! - structs with named fields  -> JSON object in declaration order
//! - tuple structs with one field (newtypes) -> the inner value
//! - tuple structs with N fields -> JSON array
//! - enums with unit variants only -> variant name as a JSON string
//!
//! Attributes such as `#[serde(default)]` and doc comments are skipped.
//! Generic items are unsupported (none exist in the workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the item under derive.
enum Shape {
    /// Struct with named fields.
    Named { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` fields.
    Tuple { name: String, arity: usize },
    /// Enum with unit variants only.
    UnitEnum { name: String, variants: Vec<String> },
}

/// Skip attribute streams (`#` followed by a bracket group) and return
/// the remaining trees.
fn strip_attrs(trees: &[TokenTree]) -> Vec<TokenTree> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#[...]` — skip the punct and the following group.
                i += 2;
            }
            t => {
                out.push(t.clone());
                i += 1;
            }
        }
    }
    out
}

/// Field names of a named-struct body: idents appearing immediately
/// before a top-level `:`.
fn named_fields(body: &[TokenTree]) -> Vec<String> {
    let body = strip_attrs(body);
    let mut fields = Vec::new();
    let mut expecting_name = true;
    let mut depth = 0usize;
    let mut prev_ident: Option<String> = None;
    for t in &body {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ':' if depth == 0 && expecting_name => {
                    if let Some(name) = prev_ident.take() {
                        fields.push(name);
                        expecting_name = false;
                    }
                }
                ',' if depth == 0 => expecting_name = true,
                _ => {}
            },
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                // Visibility and raw keywords are not field names.
                if s != "pub" && s != "crate" && s != "in" {
                    prev_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}

/// Count the comma-separated fields of a tuple-struct body.
fn tuple_arity(body: &[TokenTree]) -> usize {
    let body = strip_attrs(body);
    if body.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut arity = 1usize;
    for t in &body {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => arity += 1,
                _ => {}
            }
        }
    }
    arity
}

/// Variant names of a unit-only enum body. Panics (compile error) on
/// data-carrying variants, which this shim does not support.
fn unit_variants(body: &[TokenTree]) -> Vec<String> {
    let body = strip_attrs(body);
    let mut variants = Vec::new();
    let mut depth = 0usize;
    for t in &body {
        match t {
            TokenTree::Ident(id) if depth == 0 => variants.push(id.to_string()),
            TokenTree::Group(g) if depth == 0 && g.delimiter() != Delimiter::None => {
                panic!("serde_derive shim: only unit enum variants are supported");
            }
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                '=' => panic!("serde_derive shim: explicit discriminants are unsupported"),
                _ => {}
            },
            _ => {}
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let trees = strip_attrs(&trees);
    let mut i = 0;
    let mut kind: Option<&'static str> = None;
    let mut name: Option<String> = None;
    while i < trees.len() {
        if let TokenTree::Ident(id) = &trees[i] {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                kind = Some(if s == "struct" { "struct" } else { "enum" });
                if let Some(TokenTree::Ident(n)) = trees.get(i + 1) {
                    name = Some(n.to_string());
                }
                i += 2;
                break;
            }
        }
        i += 1;
    }
    let kind = kind.expect("serde_derive shim: expected struct or enum");
    let name = name.expect("serde_derive shim: expected item name");
    // Reject generics: next token after the name must not be `<`.
    if let Some(TokenTree::Punct(p)) = trees.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic items are unsupported");
        }
    }
    // Find the body group.
    for t in &trees[i..] {
        if let TokenTree::Group(g) = t {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            return match (kind, g.delimiter()) {
                ("struct", Delimiter::Brace) => Shape::Named {
                    name,
                    fields: named_fields(&body),
                },
                ("struct", Delimiter::Parenthesis) => Shape::Tuple {
                    name,
                    arity: tuple_arity(&body),
                },
                ("enum", Delimiter::Brace) => Shape::UnitEnum {
                    name,
                    variants: unit_variants(&body),
                },
                _ => panic!("serde_derive shim: unsupported item body"),
            };
        }
    }
    // `struct Foo;`
    if kind == "struct" {
        Shape::Tuple { name, arity: 0 }
    } else {
        panic!("serde_derive shim: empty enum body");
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_shape(input) {
        Shape::Named { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_json_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(entries)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity } => {
            let expr = match arity {
                0 => "::serde::Value::Null".to_string(),
                1 => "::serde::Serialize::to_json_value(&self.0)".to_string(),
                n => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::String(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("serde_derive shim: generated code parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_shape(input) {
        Shape::Named { name, .. } | Shape::Tuple { name, .. } | Shape::UnitEnum { name, .. } => {
            name
        }
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated code parses")
}
