use crate::*;

#[test]
fn mean_median_basics() {
    assert_eq!(mean(&[]), 0.0);
    assert_eq!(mean(&[2.0, 4.0]), 3.0);
    assert_eq!(median(&[1.0, 3.0, 2.0]), 2.0);
    assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    assert_eq!(median(&[]), 0.0);
}

#[test]
fn percentile_interpolates() {
    let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
    assert_eq!(percentile(&xs, 0.0), 10.0);
    assert_eq!(percentile(&xs, 100.0), 50.0);
    assert_eq!(percentile(&xs, 50.0), 30.0);
    assert_eq!(percentile(&xs, 25.0), 20.0);
    assert_eq!(percentile(&xs, 12.5), 15.0);
}

#[test]
#[should_panic(expected = "percentile out of range")]
fn percentile_rejects_out_of_range() {
    percentile(&[1.0], 101.0);
}

#[test]
fn stddev_basics() {
    assert_eq!(stddev(&[5.0]), 0.0);
    let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
    assert!((s - 2.0).abs() < 1e-12);
}

#[test]
fn pearson_perfect_and_inverse() {
    let x = [1.0, 2.0, 3.0, 4.0];
    let y = [2.0, 4.0, 6.0, 8.0];
    assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    let z = [8.0, 6.0, 4.0, 2.0];
    assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    assert_eq!(pearson(&x, &[5.0, 5.0, 5.0, 5.0]), 0.0); // no variance
    assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
}

#[test]
fn improvement_convention() {
    // Lower is better: going from 100 to 90 is a 10% improvement.
    assert_eq!(percentage_improvement(100.0, 90.0), 10.0);
    assert_eq!(percentage_improvement(100.0, 110.0), -10.0);
    assert_eq!(percentage_improvement(0.0, 5.0), 0.0);
}

#[test]
fn peak_to_mean_detects_spikes() {
    let quiet = [1.0, 1.0, 1.0, 1.0];
    let spiky = [1.0, 1.0, 4.0, 1.0];
    assert_eq!(peak_to_mean(&quiet), 1.0);
    assert!(peak_to_mean(&spiky) > 2.0);
    assert_eq!(peak_to_mean(&[]), 0.0);
}

#[test]
fn table_renders_aligned() {
    let mut t = Table::new(vec!["Log".into(), "Exec".into()]);
    t.row(vec!["Intrepid".into(), "1382".into()]);
    t.row(vec!["Theta".into(), "2189".into()]);
    let s = t.to_string();
    let lines: Vec<&str> = s.lines().collect();
    assert_eq!(lines.len(), 4); // header, rule, 2 rows
    assert!(lines[0].starts_with("Log"));
    assert!(lines[2].contains("Intrepid"));
    assert_eq!(t.len(), 2);
    assert!(!t.is_empty());
}

#[test]
fn table_pads_short_rows() {
    let mut t = Table::new(vec!["A".into(), "B".into(), "C".into()]);
    t.row(vec!["x".into()]);
    let s = t.to_string();
    assert!(s.contains('x'));
}

#[test]
fn series_csv() {
    let mut a = Series::new("default");
    a.push(30.0, 1.0);
    a.push(60.0, 2.0);
    let mut b = Series::new("balanced");
    b.push(30.0, 0.5);
    b.push(60.0, 1.5);
    let csv = Series::to_csv(&[a, b]);
    assert_eq!(csv, "x,default,balanced\n30,1,0.5\n60,2,1.5\n");
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Percentile is monotone in p and bounded by the extremes.
        #[test]
        fn percentile_monotone(
            mut xs in proptest::collection::vec(-1e6f64..1e6, 1..50),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-9);
            xs.sort_by(f64::total_cmp);
            prop_assert!(percentile(&xs, lo) >= xs[0] - 1e-9);
            prop_assert!(percentile(&xs, hi) <= xs[xs.len() - 1] + 1e-9);
        }

        /// Pearson is symmetric, bounded in [-1, 1], and invariant under
        /// positive affine transforms.
        #[test]
        fn pearson_properties(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..40),
            scale in 0.1f64..10.0,
            shift in -100.0f64..100.0,
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let r = pearson(&xs, &ys);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            prop_assert!((r - pearson(&ys, &xs)).abs() < 1e-9);
            let xs2: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
            prop_assert!((pearson(&xs2, &ys) - r).abs() < 1e-6);
        }
    }
}

mod registry_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn registry_handles_and_counters() {
        let mut r = Registry::new();
        let c = r.counter("jobs.started");
        assert_eq!(r.counter("jobs.started"), c); // find, not duplicate
        r.inc(c, 2);
        r.inc(c, 3);
        assert_eq!(r.counter_value("jobs.started"), Some(5));
        assert_eq!(r.counter_value("missing"), None);
        let g = r.gauge("makespan_s");
        r.set(g, 1234.5);
        let h = r.hist("job.wait_s");
        r.observe(h, 10.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("jobs.started".to_string(), 5)]);
        assert_eq!(snap.gauges, vec![("makespan_s".to_string(), 1234.5)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count(), 1);
    }

    #[test]
    fn snapshot_sorts_by_name() {
        let mut r = Registry::new();
        r.counter("zeta");
        r.counter("alpha");
        r.counter("mid");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_drops_non_finite() {
        let mut h = LogHistogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(3.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 3.0);
    }

    #[test]
    fn report_json_round_trip() {
        let mut r = Registry::new();
        let c = r.counter("jobs.completed");
        r.inc(c, 17);
        let g = r.gauge("lost_node_seconds");
        r.set(g, 960.0);
        let h = r.hist("job.exec_s");
        for x in [30.0, 600.0, 601.5, 4000.0, 0.0, -2.5] {
            r.observe(h, x);
        }
        let report = r.snapshot();
        let text = report.to_json_pretty();
        let back = RunReport::from_json(&text).expect("round trip parses");
        assert_eq!(back, report);
        // Serialization is deterministic: re-rendering gives the same bytes.
        assert_eq!(back.to_json_pretty(), text);
    }

    #[test]
    fn report_rejects_unknown_version() {
        let mut r = Registry::new();
        r.counter("x");
        let text = r
            .snapshot()
            .to_json_pretty()
            .replace("\"version\": 1", "\"version\": 999");
        assert!(RunReport::from_json(&text).is_err());
    }

    proptest! {
        /// Every quantile lands inside the observed [min, max], and q0/q100
        /// are exactly the extremes.
        #[test]
        fn quantile_bounds(
            xs in proptest::collection::vec(-1e9f64..1e9, 1..200),
            q in 0.0f64..1.0,
        ) {
            let mut h = LogHistogram::new();
            for &x in &xs {
                h.observe(x);
            }
            let (min, max) = (h.min(), h.max());
            prop_assert_eq!(h.quantile(0.0), min);
            prop_assert_eq!(h.quantile(1.0), max);
            let v = h.quantile(q);
            prop_assert!((min..=max).contains(&v), "q{} = {} outside [{}, {}]", q, v, min, max);
        }

        /// Merge is associative: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c). Samples are
        /// small integers so the floating-point sums are exact.
        #[test]
        fn merge_associativity(
            a in proptest::collection::vec(-1000i64..1000, 0..40),
            b in proptest::collection::vec(-1000i64..1000, 0..40),
            c in proptest::collection::vec(-1000i64..1000, 0..40),
        ) {
            let hist_of = |xs: &[i64]| {
                let mut h = LogHistogram::new();
                for &x in xs {
                    h.observe(x as f64);
                }
                h
            };
            let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right);
            // And merging all three one-by-one matches observing everything.
            let all: Vec<i64> = a.iter().chain(&b).chain(&c).copied().collect();
            prop_assert_eq!(&left, &hist_of(&all));
        }

        /// Reports survive a JSON round trip for arbitrary histogram
        /// contents (quantiles are recomputed from buckets, not trusted).
        #[test]
        fn report_round_trip_any_samples(
            xs in proptest::collection::vec(-1e12f64..1e12, 0..60),
        ) {
            let mut r = Registry::new();
            let h = r.hist("samples");
            for &x in &xs {
                r.observe(h, x);
            }
            let report = r.snapshot();
            let back = RunReport::from_json(&report.to_json_pretty());
            prop_assert_eq!(back.as_ref(), Ok(&report));
        }
    }
}

mod hist_tests {
    use super::*;

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend(&[0.0, 1.0, 2.5, 9.9, -3.0, 42.0]);
        assert_eq!(h.total(), 6);
        let bins: Vec<(f64, u64)> = h.bins().collect();
        assert_eq!(bins.len(), 5);
        assert_eq!(bins[0], (0.0, 3)); // 0.0, 1.0 and clamped -3.0
        assert_eq!(bins[1], (2.0, 1)); // 2.5
        assert_eq!(bins[4], (8.0, 2)); // 9.9 and clamped 42.0
        let text = h.render();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn ci95_shrinks_with_samples() {
        let few: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let many: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let (m1, w1) = mean_ci95(&few);
        let (m2, w2) = mean_ci95(&many);
        assert!((m1 - 4.5).abs() < 1e-9);
        assert!((m2 - 4.5).abs() < 1e-9);
        assert!(w2 < w1);
        assert_eq!(mean_ci95(&[7.0]), (7.0, 0.0));
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
    }
}
