//! Summary statistics over `f64` samples.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (linear-interpolated); 0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Percentile in `[0, 100]` with linear interpolation between order
/// statistics; 0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Pearson correlation coefficient of paired samples; 0 when either side
/// has no variance or fewer than two pairs.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson needs paired samples");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// The paper's improvement convention:
/// `100 * (baseline - candidate) / baseline` — positive when the candidate
/// is better (smaller). 0 when the baseline is 0.
pub fn percentage_improvement(baseline: f64, candidate: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    100.0 * (baseline - candidate) / baseline
}

/// Ratio of the maximum sample to the mean — used to detect the Figure 1
/// interference spikes. 0 for an empty slice.
pub fn peak_to_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    xs.iter().cloned().fold(f64::MIN, f64::max) / m
}
