//! A named-metric registry snapshotting into a machine-readable
//! [`RunReport`].
//!
//! Producers resolve names to copyable handles once ([`Registry::counter`]
//! / [`Registry::gauge`] / [`Registry::hist`]) and then update by index,
//! so hot loops never hash or compare strings. A [`Registry::snapshot`]
//! sorts metrics by name into a [`RunReport`], whose JSON rendering is
//! deterministic: same run, same bytes, at any thread count.
//!
//! Histograms are [`LogHistogram`]s — power-of-two magnitude buckets plus
//! exact count/min/max/sum — chosen because they merge associatively
//! (bucket-wise addition) and answer quantile queries with bounded
//! relative error, clamped to the observed `[min, max]`.

use commsched_num::f64_of_u64;
use serde_json::{Number, Value};
use std::collections::BTreeMap;

/// Handle to a named counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a named gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a named histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// A mergeable histogram over power-of-two magnitude buckets.
///
/// Each finite sample lands in the bucket of its binary exponent (signed;
/// zero has its own bucket), and the exact `count`/`min`/`max`/`sum` ride
/// along. Merging two histograms is bucket-wise addition plus min/max/sum
/// combination — associative and commutative in every field except the
/// floating-point `sum`, which is associative only when the partial sums
/// are exactly representable (true for the integral second counts this
/// workspace records). Non-finite samples are ignored.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LogHistogram {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    /// Bucket key → sample count. Keys order numerically: more-negative
    /// samples sort first, zero in the middle, larger positives last.
    buckets: BTreeMap<i32, u64>,
}

/// Bucket key of a finite sample: 0 for zero, `±(exponent + 1100)`
/// otherwise, so keys sort in numeric sample order.
fn vu(v: u64) -> Value {
    Value::Number(Number::from_u64(v))
}

fn vi(v: i64) -> Value {
    Value::Number(Number::from_i64(v))
}

fn vf(v: f64) -> Value {
    Value::Number(Number::from_f64(v))
}

fn bucket_key(x: f64) -> i32 {
    if x == 0.0 {
        return 0;
    }
    // IEEE-754 exponent extraction: deterministic across platforms, no
    // transcendental calls. Subnormals share the -1023 bucket.
    let bits = x.abs().to_bits();
    let exp = i32::try_from((bits >> 52) & 0x7ff).unwrap_or(0) - 1023;
    let mag = exp + 1100;
    if x > 0.0 {
        mag
    } else {
        -mag
    }
}

/// Upper edge of a bucket (the value a quantile query reports before
/// clamping to the observed range).
fn bucket_upper(key: i32) -> f64 {
    if key == 0 {
        return 0.0;
    }
    if key > 0 {
        2.0f64.powi(key - 1100 + 1)
    } else {
        -(2.0f64.powi(-key - 1100))
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Non-finite samples are dropped.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
        *self.buckets.entry(bucket_key(x)).or_insert(0) += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / f64_of_u64(self.count)
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`): walk the buckets to the
    /// sample of rank `ceil(q·count)` and report that bucket's upper edge,
    /// clamped to the observed `[min, max]`. Exact at the extremes
    /// (`q=0` → min, `q=1` → max); within a power of two elsewhere.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        let rank = (q * f64_of_u64(self.count)).ceil().max(1.0);
        let mut seen = 0.0f64;
        for (&key, &n) in &self.buckets {
            seen += f64_of_u64(n);
            if seen >= rank {
                return bucket_upper(key).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (&key, &n) in &other.buckets {
            *self.buckets.entry(key).or_insert(0) += n;
        }
    }

    /// `(bucket_key, count)` pairs in ascending sample order.
    pub fn buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets.iter().map(|(&k, &n)| (k, n))
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".into(), vu(self.count)),
            ("min".into(), vf(self.min)),
            ("max".into(), vf(self.max)),
            ("sum".into(), vf(self.sum)),
            ("q0".into(), vf(self.quantile(0.0))),
            ("q50".into(), vf(self.quantile(0.5))),
            ("q100".into(), vf(self.quantile(1.0))),
            (
                "buckets".into(),
                Value::Array(
                    self.buckets
                        .iter()
                        .map(|(&k, &n)| Value::Array(vec![vi(i64::from(k)), vu(n)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<LogHistogram, String> {
        let field = |name: &str| -> Result<&Value, String> {
            v.get(name)
                .ok_or_else(|| format!("histogram missing {name}"))
        };
        let count = field("count")?
            .as_u64()
            .ok_or("histogram count not a u64")?;
        let num = |name: &str| -> Result<f64, String> {
            field(name)?
                .as_f64()
                .ok_or_else(|| format!("histogram {name} not a number"))
        };
        let mut buckets = BTreeMap::new();
        for entry in field("buckets")?
            .as_array()
            .ok_or("histogram buckets not an array")?
        {
            let pair = entry.as_array().ok_or("bucket entry not an array")?;
            let (Some(k), Some(n)) = (
                pair.first().and_then(Value::as_i64),
                pair.get(1).and_then(Value::as_u64),
            ) else {
                return Err("bucket entry not [key, count]".into());
            };
            let key = i32::try_from(k).map_err(|_| "bucket key out of range".to_string())?;
            buckets.insert(key, n);
        }
        Ok(LogHistogram {
            count,
            min: num("min")?,
            max: num("max")?,
            sum: num("sum")?,
            buckets,
        })
    }
}

/// The registry: named counters, gauges and histograms, updated by handle.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, LogHistogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Find or create the counter `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Add `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Find or create the gauge `name`.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Set a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].1 = v;
    }

    /// Find or create the histogram `name`.
    pub fn hist(&mut self, name: &str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| n == name) {
            return HistId(i);
        }
        self.hists.push((name.to_string(), LogHistogram::new()));
        HistId(self.hists.len() - 1)
    }

    /// Record a histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistId, x: f64) {
        self.hists[id.0].1.observe(x);
    }

    /// Current value of a counter, by name (tests and report assembly).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Snapshot into a name-sorted, serializable [`RunReport`].
    pub fn snapshot(&self) -> RunReport {
        let mut counters = self.counters.clone();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges = self.gauges.clone();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms = self.hists.clone();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        RunReport {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Report format version, bumped on breaking schema changes.
pub const RUN_REPORT_VERSION: u64 = 1;

/// A point-in-time snapshot of a [`Registry`], sorted by metric name, with
/// a deterministic JSON rendering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// `(name, value)` counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, name-sorted.
    pub histograms: Vec<(String, LogHistogram)>,
}

impl RunReport {
    /// The report as a JSON value (objects keep insertion order, so the
    /// rendering is deterministic).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".into(), vu(RUN_REPORT_VERSION)),
            (
                "counters".into(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), vu(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), vf(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed JSON with a trailing newline — the `--report-out`
    /// file format.
    pub fn to_json_pretty(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_value()).unwrap_or_default();
        s.push('\n');
        s
    }

    /// Rebuild a report from its JSON value (derived quantile fields are
    /// recomputed, not trusted).
    pub fn from_value(v: &Value) -> Result<RunReport, String> {
        let version = v
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("report missing version")?;
        if version != RUN_REPORT_VERSION {
            return Err(format!(
                "unsupported report version {version} (expected {RUN_REPORT_VERSION})"
            ));
        }
        let entries = |name: &str| -> Result<&Vec<(String, Value)>, String> {
            match v.get(name) {
                Some(Value::Object(entries)) => Ok(entries),
                _ => Err(format!("report missing object {name}")),
            }
        };
        let mut counters = Vec::new();
        for (n, val) in entries("counters")? {
            counters.push((
                n.clone(),
                val.as_u64().ok_or_else(|| format!("counter {n} not u64"))?,
            ));
        }
        let mut gauges = Vec::new();
        for (n, val) in entries("gauges")? {
            gauges.push((
                n.clone(),
                val.as_f64()
                    .ok_or_else(|| format!("gauge {n} not a number"))?,
            ));
        }
        let mut histograms = Vec::new();
        for (n, val) in entries("histograms")? {
            histograms.push((n.clone(), LogHistogram::from_value(val)?));
        }
        Ok(RunReport {
            counters,
            gauges,
            histograms,
        })
    }

    /// Parse the `--report-out` file format.
    pub fn from_json(s: &str) -> Result<RunReport, String> {
        let v: Value = serde_json::from_str(s).map_err(|e| e.to_string())?;
        Self::from_value(&v)
    }
}
