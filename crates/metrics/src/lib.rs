//! Evaluation metrics, summary statistics and report rendering.
//!
//! The paper evaluates with five metrics (§5.4): execution time, wait time,
//! turnaround time, node-hours and communication cost. This crate holds the
//! statistics used to aggregate them (means, percentiles, Pearson
//! correlation for the §5.3 validation) and small text renderers for the
//! tables and figure series the benchmark harness regenerates.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
mod hist;
mod registry;
mod render;
mod stats;

pub use hist::{mean_ci95, Histogram};
pub use registry::{
    CounterId, GaugeId, HistId, LogHistogram, Registry, RunReport, RUN_REPORT_VERSION,
};
pub use render::{Series, Table};
pub use stats::{mean, median, peak_to_mean, pearson, percentage_improvement, percentile, stddev};

#[cfg(test)]
mod tests;
