//! Fixed-bin histograms and simple interval estimates.

use crate::stats::{mean, stddev};

/// A histogram over equal-width bins spanning `[lo, hi)`.
///
/// Out-of-range samples clamp into the edge bins, so totals are conserved —
/// convenient for long-tailed latency data.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "empty range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Record many samples.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bin_low_edge, count)` pairs.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as f64 * width, c))
    }

    /// ASCII rendering, one row per bin.
    pub fn render(&self) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (edge, count) in self.bins() {
            out.push_str(&format!(
                "{edge:>12.2}  {count:>7}  {}\n",
                "#".repeat((count * 40 / peak) as usize)
            ));
        }
        out
    }
}

/// Normal-approximation 95% confidence interval of the mean:
/// `mean ± 1.96 · s/√n`. Returns `(mean, half_width)`; half-width 0 for
/// fewer than two samples.
pub fn mean_ci95(xs: &[f64]) -> (f64, f64) {
    let m = mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let s = stddev(xs);
    (m, 1.96 * s / (xs.len() as f64).sqrt())
}
