//! Plain-text tables and figure series, in the layout of the paper's
//! results section.

use std::fmt;

/// A column-aligned text table.
///
/// ```
/// use commsched_metrics::Table;
///
/// let mut t = Table::new(vec!["Log".into(), "Default".into(), "Balanced".into()]);
/// t.row(vec!["Intrepid".into(), "1382".into(), "1256".into()]);
/// let text = t.to_string();
/// assert!(text.contains("Intrepid"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given header cells.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Append a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access the raw rows (for JSON emission alongside the text).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (c, &w) in width.iter().enumerate() {
                let cell = row.get(c).map(String::as_str).unwrap_or("");
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// A named series of `(x, y)` points — one line/bar group of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label ("default", "balanced", ...).
    pub name: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series with a label.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Render several series as aligned CSV (x, then one column per
    /// series), assuming they share x values in order.
    pub fn to_csv(series: &[Series]) -> String {
        let mut out = String::from("x");
        for s in series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
        for i in 0..rows {
            let x = series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.0))
                .unwrap_or(i as f64);
            out.push_str(&format!("{x}"));
            for s in series {
                match s.points.get(i) {
                    Some(p) => out.push_str(&format!(",{}", p.1)),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}
