//! Tree and fat-tree cluster topologies.
//!
//! SLURM describes hierarchical networks in `topology.conf`: leaf switches
//! list their attached compute nodes, upper switches list their child
//! switches. This crate provides:
//!
//! * [`Tree`] — an immutable, validated topology with O(depth) lowest-common-
//!   ancestor queries and the paper's distance metric
//!   `d(i, j) = 2 * level(LCA)` (Eq. 4);
//! * `topology.conf` parsing and emission compatible with SLURM syntax
//!   (see [`Tree::from_conf`] / [`Tree::to_conf`]);
//! * builders for regular and irregular trees plus presets that model the
//!   systems used in the paper's evaluation: the IIT Kanpur cluster
//!   (16 nodes/leaf), a Cori-like tree (330–380 nodes/leaf), and
//!   Intrepid/Theta/Mira-scaled trees — plus the exascale classes
//!   (multi-rail fat-tree at 524,288 nodes, dragonfly-as-tree at
//!   1,048,576 nodes) from ROADMAP item 3.
//!
//! Levels follow the paper's convention: leaf switches are level 1, their
//! parents level 2, and so on up to the root.
//!
//! # Example
//!
//! ```
//! use commsched_topology::{NodeId, Tree};
//!
//! // The fat-tree from Figure 2 of the paper: s2 over s0, s1; 4 nodes each.
//! let conf = "SwitchName=s0 Nodes=n[0-3]\n\
//!             SwitchName=s1 Nodes=n[4-7]\n\
//!             SwitchName=s2 Switches=s[0-1]\n";
//! let tree = Tree::from_conf(conf).unwrap();
//! assert_eq!(tree.num_nodes(), 8);
//! assert_eq!(tree.distance(NodeId(0), NodeId(1)), 2); // same leaf
//! assert_eq!(tree.distance(NodeId(0), NodeId(4)), 4); // via s2
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
mod build;
mod conf;
mod tree;

pub use build::{SpecError, SystemPreset};
pub use conf::ConfError;
pub use tree::{NodeId, Switch, SwitchId, Tree, TreeError};

#[cfg(test)]
mod tests;
