use crate::{NodeId, SwitchId, SystemPreset, Tree, TreeError};

/// The paper's Figure 2 topology: s2 over s0, s1; nodes n0-n3 / n4-n7.
fn figure2() -> Tree {
    Tree::from_conf(
        "SwitchName=s0 Nodes=n[0-3]\n\
         SwitchName=s1 Nodes=n[4-7]\n\
         SwitchName=s2 Switches=s[0-1]\n",
    )
    .unwrap()
}

#[test]
fn figure2_shape() {
    let t = figure2();
    assert_eq!(t.num_nodes(), 8);
    assert_eq!(t.num_switches(), 3);
    assert_eq!(t.num_leaves(), 2);
    assert_eq!(t.height(), 2);
    assert_eq!(t.switch(t.root()).name, "s2");
}

#[test]
fn figure2_distances_match_paper() {
    // Section 5.3: d(n0, n1) = 2 and d(n0, n4) = 4.
    let t = figure2();
    let n0 = t.node_by_name("n0").unwrap();
    let n1 = t.node_by_name("n1").unwrap();
    let n4 = t.node_by_name("n4").unwrap();
    assert_eq!(t.distance(n0, n1), 2);
    assert_eq!(t.distance(n0, n4), 4);
    assert_eq!(t.distance(n0, n0), 0);
}

#[test]
fn leaf_queries() {
    let t = figure2();
    assert_eq!(t.leaf_size(0), 4);
    assert_eq!(t.leaf_size(1), 4);
    assert_eq!(t.leaf_ordinal_of(NodeId(0)), 0);
    assert_eq!(t.leaf_ordinal_of(NodeId(5)), 1);
    assert_eq!(
        t.leaf_nodes(1),
        &[NodeId(4), NodeId(5), NodeId(6), NodeId(7)]
    );
    let leaf0 = t.leaves()[0];
    assert_eq!(t.leaf_ordinal(leaf0), 0);
}

#[test]
fn lca_levels() {
    let t = Tree::regular_three_level(2, 2, 2); // 8 nodes, 3 levels
    assert_eq!(t.height(), 3);
    // Same leaf -> level 1; same group -> level 2; across groups -> level 3.
    assert_eq!(t.leaf_lca_level(0, 0), 1);
    assert_eq!(t.leaf_lca_level(0, 1), 2);
    assert_eq!(t.leaf_lca_level(0, 2), 3);
    assert_eq!(t.distance(NodeId(0), NodeId(1)), 2);
    assert_eq!(t.distance(NodeId(0), NodeId(2)), 4);
    assert_eq!(t.distance(NodeId(0), NodeId(7)), 6);
}

#[test]
fn subtree_counts() {
    let t = Tree::regular_three_level(3, 4, 5);
    assert_eq!(t.num_nodes(), 60);
    assert_eq!(t.subtree_nodes(t.root()), 60);
    let g0 = t.switch(t.root()).children[0];
    assert_eq!(t.subtree_nodes(g0), 20);
    assert_eq!(t.leaf_ordinals_under(g0), &[0, 1, 2, 3]);
    assert_eq!(t.leaf_ordinals_under(t.root()).len(), 12);
}

#[test]
fn conf_round_trip() {
    for t in [
        figure2(),
        Tree::regular_two_level(4, 8),
        Tree::regular_three_level(2, 3, 4),
        Tree::irregular_two_level(&[3, 7, 1, 12]),
    ] {
        let conf = t.to_conf();
        let t2 = Tree::from_conf(&conf).unwrap();
        assert_eq!(t.num_nodes(), t2.num_nodes());
        assert_eq!(t.num_switches(), t2.num_switches());
        assert_eq!(t.height(), t2.height());
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert_eq!(
                    t.distance(NodeId(a), NodeId(b)),
                    t2.distance(NodeId(a), NodeId(b)),
                    "distance mismatch after round trip"
                );
            }
        }
    }
}

#[test]
fn conf_comments_and_blank_lines() {
    let t = Tree::from_conf(
        "# cluster topology\n\
         \n\
         SwitchName=s0 Nodes=n[0-1]  # leaf\n\
         SwitchName=s1 Nodes=n[2-3]\n\
         SwitchName=top Switches=s[0-1]\n",
    )
    .unwrap();
    assert_eq!(t.num_nodes(), 4);
}

#[test]
fn conf_case_insensitive_keys_and_linkspeed() {
    let t = Tree::from_conf(
        "switchname=s0 nodes=n[0-1] LinkSpeed=100\n\
         SWITCHNAME=top SWITCHES=s0\n",
    )
    .unwrap();
    assert_eq!(t.num_nodes(), 2);
    assert_eq!(t.height(), 2);
}

#[test]
fn conf_errors() {
    use crate::ConfError;
    assert!(matches!(
        Tree::from_conf("Nodes=n[0-1]\n").unwrap_err(),
        ConfError::MissingSwitchName { line: 1 }
    ));
    assert!(matches!(
        Tree::from_conf("SwitchName=s0 Nodes=n0 Switches=s1\n").unwrap_err(),
        ConfError::NodesXorSwitches { line: 1, .. }
    ));
    assert!(matches!(
        Tree::from_conf("SwitchName=s0\n").unwrap_err(),
        ConfError::NodesXorSwitches { line: 1, .. }
    ));
    assert!(matches!(
        Tree::from_conf("SwitchName=s0 Nodes=n[2-1]\n").unwrap_err(),
        ConfError::BadHostlist { line: 1, .. }
    ));
    assert!(matches!(
        Tree::from_conf("SwitchName=s0 Frobnicate=1 Nodes=n0\n").unwrap_err(),
        ConfError::UnknownKey { line: 1, .. }
    ));
}

#[test]
fn structure_errors() {
    // duplicate node
    let e = Tree::from_conf(
        "SwitchName=s0 Nodes=n0\nSwitchName=s1 Nodes=n0\nSwitchName=t Switches=s[0-1]\n",
    )
    .unwrap_err();
    assert!(matches!(
        e,
        crate::ConfError::Structure(TreeError::DuplicateNode(_))
    ));

    // two roots
    let e = Tree::from_conf("SwitchName=s0 Nodes=n0\nSwitchName=s1 Nodes=n1\n").unwrap_err();
    assert!(matches!(
        e,
        crate::ConfError::Structure(TreeError::MultipleRoots(_))
    ));

    // unknown child
    let e = Tree::from_conf("SwitchName=s0 Nodes=n0\nSwitchName=t Switches=s[0-1]\n").unwrap_err();
    assert!(matches!(
        e,
        crate::ConfError::Structure(TreeError::UnknownSwitch(_))
    ));

    // child with two parents
    let e = Tree::from_conf(
        "SwitchName=s0 Nodes=n0\nSwitchName=t0 Switches=s0\nSwitchName=t1 Switches=s0,t0\n",
    )
    .unwrap_err();
    assert!(matches!(
        e,
        crate::ConfError::Structure(TreeError::DuplicateChild(_))
    ));

    // empty file
    let e = Tree::from_conf("# nothing\n").unwrap_err();
    assert!(matches!(e, crate::ConfError::Structure(TreeError::Empty)));
}

#[test]
fn presets_build_to_stated_sizes() {
    for p in [
        SystemPreset::IitkDepartment,
        SystemPreset::IitkHpc2010,
        SystemPreset::CoriLike,
        SystemPreset::Intrepid,
        SystemPreset::Theta,
        SystemPreset::Mira,
    ] {
        let t = p.build();
        assert_eq!(t.num_nodes(), p.num_nodes(), "{p:?}");
    }
}

#[test]
fn preset_branching_factors_match_paper() {
    // IITK HPC2010: 16 nodes/leaf (Section 5.2).
    let t = SystemPreset::IitkHpc2010.build();
    for k in 0..t.num_leaves() {
        assert_eq!(t.leaf_size(k), 16);
    }
    // Cori-like: 330-380 nodes/leaf (Section 2 mentions 330-380 nodes/switch).
    let t = SystemPreset::Theta.build();
    for k in 0..t.num_leaves() {
        let s = t.leaf_size(k);
        assert!((330..=380).contains(&s), "leaf {k} has {s} nodes");
    }
    // Intrepid and Mira: emulated on the Cori leaf shape too (330-380
    // nodes per leaf; see DESIGN.md for why not the 16/leaf file).
    for p in [SystemPreset::Intrepid, SystemPreset::Mira] {
        let t = p.build();
        for k in 0..t.num_leaves() {
            let s = t.leaf_size(k);
            assert!((330..=380).contains(&s), "{p:?} leaf {k} has {s} nodes");
        }
    }
}

#[test]
fn node_names_dense_and_unique() {
    let t = Tree::regular_two_level(3, 4);
    for i in 0..t.num_nodes() {
        assert_eq!(t.node_name(NodeId(i)), format!("n{i}"));
        assert_eq!(t.node_by_name(&format!("n{i}")), Some(NodeId(i)));
    }
    assert_eq!(t.node_by_name("does-not-exist"), None);
}

#[test]
fn switches_by_level_is_bottom_up() {
    let t = Tree::regular_three_level(2, 2, 2);
    let order = t.switches_by_level();
    let levels: Vec<u32> = order.iter().map(|s| t.switch(*s).level).collect();
    let mut sorted = levels.clone();
    sorted.sort_unstable();
    assert_eq!(levels, sorted);
}

#[test]
fn lca_switch_of_leaf_and_ancestor() {
    let t = Tree::regular_three_level(2, 2, 2);
    let leaf = t.leaves()[0];
    let group = t.switch(t.root()).children[0];
    assert_eq!(t.lca_switch(leaf, group), group);
    assert_eq!(t.lca_switch(leaf, t.root()), t.root());
    assert_eq!(t.lca_switch(leaf, leaf), leaf);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_leaf_sizes() -> impl Strategy<Value = Vec<usize>> {
        proptest::collection::vec(1usize..12, 1..10)
    }

    proptest! {
        /// Distance is a symmetric, reflexive-zero metric bounded by
        /// 2 * height, and equals 2 exactly for distinct same-leaf pairs.
        #[test]
        fn distance_metric_axioms(sizes in arb_leaf_sizes(), seed in 0u64..1000) {
            let t = Tree::irregular_two_level(&sizes);
            let n = t.num_nodes();
            let a = NodeId((seed as usize) % n);
            let b = NodeId((seed as usize * 7 + 3) % n);
            prop_assert_eq!(t.distance(a, a), 0);
            prop_assert_eq!(t.distance(a, b), t.distance(b, a));
            if a != b {
                prop_assert!(t.distance(a, b) >= 2);
                prop_assert!(t.distance(a, b) <= 2 * t.height());
                let same_leaf = t.leaf_of(a) == t.leaf_of(b);
                prop_assert_eq!(same_leaf, t.distance(a, b) == 2);
            }
        }

        /// Every node belongs to exactly one leaf and leaf ordinals tile the
        /// node range in order.
        #[test]
        fn leaves_partition_nodes(sizes in arb_leaf_sizes()) {
            let t = Tree::irregular_two_level(&sizes);
            let mut seen = vec![false; t.num_nodes()];
            for k in 0..t.num_leaves() {
                for n in t.leaf_nodes(k) {
                    prop_assert!(!seen[n.0]);
                    seen[n.0] = true;
                    prop_assert_eq!(t.leaf_ordinal_of(*n), k);
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }

        /// conf round trip preserves all pairwise distances (three-level).
        #[test]
        fn conf_round_trip_three_level(groups in 1usize..4, lpg in 1usize..4, npl in 1usize..5) {
            let t = Tree::regular_three_level(groups, lpg, npl);
            let t2 = Tree::from_conf(&t.to_conf()).unwrap();
            prop_assert_eq!(t.num_nodes(), t2.num_nodes());
            for a in 0..t.num_nodes() {
                for b in (a + 1)..t.num_nodes() {
                    prop_assert_eq!(
                        t.distance(NodeId(a), NodeId(b)),
                        t2.distance(NodeId(a), NodeId(b))
                    );
                }
            }
        }

        /// LCA is an ancestor of both and has minimal level among common
        /// ancestors.
        #[test]
        fn lca_is_lowest_common_ancestor(
            groups in 1usize..4, lpg in 1usize..4, npl in 1usize..4,
            ai in any::<prop::sample::Index>(), bi in any::<prop::sample::Index>()
        ) {
            let t = Tree::regular_three_level(groups, lpg, npl);
            let a = NodeId(ai.index(t.num_nodes()));
            let b = NodeId(bi.index(t.num_nodes()));
            let lca = t.lca(a, b);

            // ancestors of a leaf switch
            let ancestors = |mut s: SwitchId| {
                let mut v = vec![s];
                while let Some(p) = t.switch(s).parent {
                    v.push(p);
                    s = p;
                }
                v
            };
            let aa = ancestors(t.leaf_of(a));
            let ab = ancestors(t.leaf_of(b));
            prop_assert!(aa.contains(&lca));
            prop_assert!(ab.contains(&lca));
            // minimal level common ancestor
            let min_common = aa.iter().filter(|s| ab.contains(s))
                .map(|s| t.switch(*s).level).min().unwrap();
            prop_assert_eq!(t.switch(lca).level, min_common);
        }
    }
}

mod spec_builder {
    use super::*;

    #[test]
    fn two_factor_spec_is_flat() {
        let t = Tree::from_spec("4x8").unwrap();
        assert_eq!(t.num_nodes(), 32);
        assert_eq!(t.num_leaves(), 4);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn three_factor_spec_matches_three_level_builder() {
        let a = Tree::from_spec("2x24x16").unwrap();
        let b = Tree::regular_three_level(2, 24, 16);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_leaves(), b.num_leaves());
        assert_eq!(a.height(), b.height());
        for (x, y) in [(0usize, 100usize), (5, 700), (300, 301)] {
            assert_eq!(
                a.distance(NodeId(x), NodeId(y)),
                b.distance(NodeId(x), NodeId(y))
            );
        }
    }

    #[test]
    fn four_level_spec() {
        let t = Tree::from_spec("2x3x4x5").unwrap();
        assert_eq!(t.num_nodes(), 2 * 3 * 4 * 5);
        assert_eq!(t.num_leaves(), 24);
        assert_eq!(t.height(), 4);
        // Distances span 2..8.
        assert_eq!(t.distance(NodeId(0), NodeId(1)), 2);
        assert_eq!(t.distance(NodeId(0), NodeId(t.num_nodes() - 1)), 8);
    }

    #[test]
    fn spec_errors_carry_factor_context() {
        use crate::build::SpecError;
        assert_eq!(
            Tree::from_spec("16").unwrap_err(),
            SpecError::TooFewFactors { count: 1 }
        );
        assert_eq!(
            Tree::from_spec("").unwrap_err(),
            SpecError::BadFactor {
                index: 0,
                text: String::new()
            }
        );
        assert_eq!(
            Tree::from_spec("ax4").unwrap_err(),
            SpecError::BadFactor {
                index: 0,
                text: "a".to_string()
            }
        );
        assert_eq!(
            Tree::from_spec("4x0").unwrap_err(),
            SpecError::ZeroFactor { index: 1 }
        );
        assert_eq!(
            Tree::from_spec("0x4").unwrap_err(),
            SpecError::ZeroFactor { index: 0 }
        );
        assert_eq!(
            Tree::from_spec("4xbad x8").unwrap_err().to_string(),
            "factor 1: \"bad\" is not a positive integer"
        );
    }

    #[test]
    fn multirail_fat_tree_shape() {
        // 2 pods x 3 leaves x (2 rails x 4 nodes) = 48 nodes, 8 per leaf.
        let t = Tree::multirail_fat_tree(2, 3, 4, 2);
        assert_eq!(t.num_nodes(), 48);
        assert_eq!(t.num_leaves(), 6);
        assert_eq!(t.height(), 3);
        for k in 0..t.num_leaves() {
            assert_eq!(t.leaf_size(k), 8);
        }
        assert_eq!(t.switch(t.leaves()[4]).name, "p1l1");
        // Same pod: distance 4; across pods: 6.
        assert_eq!(t.distance(NodeId(0), NodeId(8)), 4);
        assert_eq!(t.distance(NodeId(0), NodeId(24)), 6);
    }

    #[test]
    fn dragonfly_tree_shape() {
        // 3 groups x 4 routers x 2 nodes = 24 nodes.
        let t = Tree::dragonfly_tree(3, 4, 2);
        assert_eq!(t.num_nodes(), 24);
        assert_eq!(t.num_leaves(), 12);
        assert_eq!(t.height(), 3);
        assert_eq!(t.switch(t.leaves()[5]).name, "g1r1");
        // Same router: 2; same group: 4; across groups: 6.
        assert_eq!(t.distance(NodeId(0), NodeId(1)), 2);
        assert_eq!(t.distance(NodeId(0), NodeId(2)), 4);
        assert_eq!(t.distance(NodeId(0), NodeId(8)), 6);
    }

    #[test]
    #[ignore = "builds the 524k/1M-node presets; run with --ignored or rely on bench_engine"]
    fn exascale_presets_build_to_stated_size() {
        for preset in [SystemPreset::Multirail500k, SystemPreset::Dragonfly1M] {
            let t = preset.build();
            assert_eq!(t.num_nodes(), preset.num_nodes());
            assert_eq!(t.height(), 3);
            t.switches()
                .iter()
                .for_each(|s| assert!(s.subtree_nodes > 0));
        }
    }

    #[test]
    fn bisection_links() {
        // Flat 4-leaf tree: best equal split cuts 2 root links.
        assert_eq!(Tree::from_spec("4x8").unwrap().bisection_links(), 2);
        // Two groups: cutting one root link splits the machine in half.
        assert_eq!(Tree::from_spec("2x4x8").unwrap().bisection_links(), 1);
        // Single leaf: no split possible.
        assert_eq!(Tree::regular_two_level(1, 8).bisection_links(), 1);
    }
}
