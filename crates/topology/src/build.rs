//! Synthetic topology builders and paper-system presets, including the
//! exascale topology classes (multi-rail fat-tree, dragonfly-as-tree)
//! grounded in "Scalable HPC Job Scheduling and Resource Management in
//! SST" (PAPERS.md).

use crate::tree::{Tree, TreeError};
use std::fmt;

/// Error parsing a `"AxBx...xN"` topology spec string, carrying the
/// offending factor's position and text (the typed-error convention the
/// conf/SWF/fault parsers already follow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A factor that is not a positive integer.
    BadFactor {
        /// Zero-based factor position in the spec.
        index: usize,
        /// The factor text as written.
        text: String,
    },
    /// A factor equal to zero.
    ZeroFactor {
        /// Zero-based factor position in the spec.
        index: usize,
    },
    /// Fewer than two factors — a tree needs at least one switch level
    /// over the nodes-per-leaf factor.
    TooFewFactors {
        /// Number of factors found.
        count: usize,
    },
    /// The factors describe a structurally invalid tree.
    Structure(TreeError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadFactor { index, text } => {
                write!(f, "factor {index}: {text:?} is not a positive integer")
            }
            Self::ZeroFactor { index } => write!(f, "factor {index}: must be nonzero"),
            Self::TooFewFactors { count } => write!(
                f,
                "found {count} factor(s), need at least two (switch fan-out x nodes/leaf)"
            ),
            Self::Structure(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<TreeError> for SpecError {
    fn from(e: TreeError) -> Self {
        Self::Structure(e)
    }
}

impl Tree {
    /// A regular two-level fat-tree: `leaves` leaf switches named `s0..`,
    /// each with `nodes_per_leaf` nodes named `n0..`, under one root.
    ///
    /// This is the shape of the paper's Figure 2 (with `leaves = 2`,
    /// `nodes_per_leaf = 4`).
    pub fn regular_two_level(leaves: usize, nodes_per_leaf: usize) -> Tree {
        Self::irregular_two_level(&vec![nodes_per_leaf; leaves])
    }

    /// A two-level tree with the given per-leaf node counts.
    pub fn irregular_two_level(leaf_sizes: &[usize]) -> Tree {
        assert!(!leaf_sizes.is_empty(), "need at least one leaf");
        let mut leaf_names = Vec::with_capacity(leaf_sizes.len());
        let mut leaf_nodes = Vec::with_capacity(leaf_sizes.len());
        let mut next = 0usize;
        for (k, &sz) in leaf_sizes.iter().enumerate() {
            assert!(sz > 0, "leaf {k} has zero nodes");
            leaf_names.push(format!("s{k}"));
            leaf_nodes.push((next..next + sz).map(|i| format!("n{i}")).collect());
            next += sz;
        }
        let children = (0..leaf_sizes.len()).map(|k| format!("s{k}")).collect();
        let uppers = vec![("root".to_string(), children)];
        // detlint: allow(P1) — the builder enumerates unique names and a
        // single root by construction, which is exactly what from_parts
        // validates
        Tree::from_parts(leaf_names, leaf_nodes, uppers).expect("builder produces valid trees")
    }

    /// A regular three-level tree: `groups` level-2 switches, each over
    /// `leaves_per_group` leaf switches of `nodes_per_leaf` nodes, under one
    /// root.
    pub fn regular_three_level(
        groups: usize,
        leaves_per_group: usize,
        nodes_per_leaf: usize,
    ) -> Tree {
        assert!(groups > 0 && leaves_per_group > 0 && nodes_per_leaf > 0);
        let total_leaves = groups * leaves_per_group;
        let mut leaf_names = Vec::with_capacity(total_leaves);
        let mut leaf_nodes = Vec::with_capacity(total_leaves);
        let mut next = 0usize;
        for k in 0..total_leaves {
            leaf_names.push(format!("s{k}"));
            leaf_nodes.push(
                (next..next + nodes_per_leaf)
                    .map(|i| format!("n{i}"))
                    .collect(),
            );
            next += nodes_per_leaf;
        }
        let mut uppers = Vec::with_capacity(groups + 1);
        for g in 0..groups {
            let children = (g * leaves_per_group..(g + 1) * leaves_per_group)
                .map(|k| format!("s{k}"))
                .collect();
            uppers.push((format!("g{g}"), children));
        }
        uppers.push((
            "root".to_string(),
            (0..groups).map(|g| format!("g{g}")).collect(),
        ));
        // detlint: allow(P1) — the builder enumerates unique names and a
        // single root by construction, which is exactly what from_parts
        // validates
        Tree::from_parts(leaf_names, leaf_nodes, uppers).expect("builder produces valid trees")
    }
}

impl Tree {
    /// Build a regular tree of arbitrary depth from a spec string:
    /// `"AxBx...xN"` where the last factor is nodes per leaf and earlier
    /// factors are switch fan-outs, root first. `"2x24x16"` is two
    /// aggregation switches over 24 leaves each with 16 nodes (the IITK
    /// HPC2010 shape); `"48x366"` is a flat 48-leaf tree.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending factor for malformed
    /// specs (non-numeric, zero factors, empty, or a single factor — a
    /// tree needs at least one switch level).
    pub fn from_spec(spec: &str) -> Result<Tree, SpecError> {
        let factors: Vec<usize> = spec
            .split('x')
            .enumerate()
            .map(|(index, p)| {
                p.trim().parse::<usize>().map_err(|_| SpecError::BadFactor {
                    index,
                    text: p.trim().to_string(),
                })
            })
            .collect::<Result<_, _>>()?;
        if factors.len() < 2 {
            return Err(SpecError::TooFewFactors {
                count: factors.len(),
            });
        }
        if let Some(index) = factors.iter().position(|&f| f == 0) {
            return Err(SpecError::ZeroFactor { index });
        }
        // detlint: allow(P1) — the TooFewFactors check above guarantees a
        // non-empty factor list
        let nodes_per_leaf = *factors.last().expect("len checked");
        let fanouts = &factors[..factors.len() - 1];
        let total_leaves: usize = fanouts.iter().product();

        let mut leaf_names = Vec::with_capacity(total_leaves);
        let mut leaf_nodes = Vec::with_capacity(total_leaves);
        for k in 0..total_leaves {
            leaf_names.push(format!("s{k}"));
            leaf_nodes.push(
                (k * nodes_per_leaf..(k + 1) * nodes_per_leaf)
                    .map(|i| format!("n{i}"))
                    .collect(),
            );
        }
        // Build upper levels bottom-up: children of level l are grouped in
        // runs of fanouts[depth - 1 - l].
        let mut uppers: Vec<(String, Vec<String>)> = Vec::new();
        let mut current: Vec<String> = leaf_names.clone();
        for (level, &fan) in fanouts.iter().rev().enumerate() {
            if current.len() == 1 {
                break;
            }
            let mut next = Vec::new();
            for (g, chunk) in current.chunks(fan).enumerate() {
                let name = if current.len() / fan <= 1 {
                    "root".to_string()
                } else {
                    format!("l{level}g{g}")
                };
                uppers.push((name.clone(), chunk.to_vec()));
                next.push(name);
            }
            current = next;
        }
        Ok(Tree::from_parts(leaf_names, leaf_nodes, uppers)?)
    }

    /// A multi-rail fat-tree flattened to its placement hierarchy:
    /// `pods` pod switches over `leaves_per_pod` leaf switches each, with
    /// `rails * nodes_per_rail` nodes per leaf.
    ///
    /// In a real multi-rail fabric every node injects into `rails`
    /// parallel planes with identical hierarchy, so the *distance*
    /// structure (Eq. 4) of every rail is the same tree; rails multiply
    /// leaf injection bandwidth, not depth. The SST scheduling paper's
    /// fat-tree class models it the same way: the tree carries the
    /// hierarchy, the rail count scales the per-leaf radix. Switches are
    /// named `p{i}` (pods) and `p{i}l{j}` (leaves); nodes `n0..`.
    pub fn multirail_fat_tree(
        pods: usize,
        leaves_per_pod: usize,
        nodes_per_rail: usize,
        rails: usize,
    ) -> Tree {
        assert!(pods > 0 && leaves_per_pod > 0 && nodes_per_rail > 0 && rails > 0);
        let per_leaf = nodes_per_rail * rails;
        let mut leaf_names = Vec::with_capacity(pods * leaves_per_pod);
        let mut leaf_nodes = Vec::with_capacity(pods * leaves_per_pod);
        let mut uppers = Vec::with_capacity(pods + 1);
        let mut next = 0usize;
        for p in 0..pods {
            let mut children = Vec::with_capacity(leaves_per_pod);
            for l in 0..leaves_per_pod {
                let name = format!("p{p}l{l}");
                leaf_nodes.push((next..next + per_leaf).map(|i| format!("n{i}")).collect());
                next += per_leaf;
                children.push(name.clone());
                leaf_names.push(name);
            }
            uppers.push((format!("p{p}"), children));
        }
        uppers.push((
            "root".to_string(),
            (0..pods).map(|p| format!("p{p}")).collect(),
        ));
        // detlint: allow(P1) — the builder enumerates unique names and a
        // single root by construction, which is exactly what from_parts
        // validates
        Tree::from_parts(leaf_names, leaf_nodes, uppers).expect("builder produces valid trees")
    }

    /// A dragonfly flattened to a tree: `groups` all-to-all groups of
    /// `routers_per_group` routers with `nodes_per_router` nodes each.
    ///
    /// A dragonfly's distance hierarchy collapses to three tiers — same
    /// router, same group (one local hop), different group (global link)
    /// — which is exactly a three-level tree: routers are leaf switches,
    /// groups are level-2 switches, the global link layer is the root.
    /// The all-to-all wiring *within* those tiers affects bandwidth, not
    /// the hop hierarchy the placement cost model reads. Switches are
    /// named `g{i}` (groups) and `g{i}r{j}` (routers); nodes `n0..`.
    pub fn dragonfly_tree(
        groups: usize,
        routers_per_group: usize,
        nodes_per_router: usize,
    ) -> Tree {
        assert!(groups > 0 && routers_per_group > 0 && nodes_per_router > 0);
        let mut leaf_names = Vec::with_capacity(groups * routers_per_group);
        let mut leaf_nodes = Vec::with_capacity(groups * routers_per_group);
        let mut uppers = Vec::with_capacity(groups + 1);
        let mut next = 0usize;
        for g in 0..groups {
            let mut children = Vec::with_capacity(routers_per_group);
            for r in 0..routers_per_group {
                let name = format!("g{g}r{r}");
                leaf_nodes.push(
                    (next..next + nodes_per_router)
                        .map(|i| format!("n{i}"))
                        .collect(),
                );
                next += nodes_per_router;
                children.push(name.clone());
                leaf_names.push(name);
            }
            uppers.push((format!("g{g}"), children));
        }
        uppers.push((
            "root".to_string(),
            (0..groups).map(|g| format!("g{g}")).collect(),
        ));
        // detlint: allow(P1) — the builder enumerates unique names and a
        // single root by construction, which is exactly what from_parts
        // validates
        Tree::from_parts(leaf_names, leaf_nodes, uppers).expect("builder produces valid trees")
    }

    /// Nominal bisection width in *links*: the minimum number of tree edges
    /// cut when splitting the nodes into two equal halves — for a tree,
    /// the number of root-child edges on the smaller side of the best
    /// root split, a standard capacity sanity metric for topologies.
    pub fn bisection_links(&self) -> usize {
        let root = self.switch(self.root());
        if root.children.is_empty() {
            return 0;
        }
        // Greedy partition of root subtrees by node count.
        let mut sizes: Vec<usize> = root
            .children
            .iter()
            .map(|c| self.subtree_nodes(*c))
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = sizes.iter().sum();
        let mut side = 0usize;
        let mut links = 0usize;
        for s in sizes {
            if side + s <= total / 2 {
                side += s;
                links += 1;
            }
        }
        links.max(1)
    }
}

/// Topologies scaled to the systems in the paper's evaluation (§5).
///
/// The paper emulates Intrepid/Theta/Mira job logs on fat-tree topology
/// files from IIT Kanpur (16 nodes per leaf switch) and LBNL Cori
/// (330–380 nodes per leaf switch). These presets reproduce the stated
/// branching factors at each system's node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemPreset {
    /// The 50-node IIT Kanpur department cluster from the Figure 1
    /// motivation study: tree topology, a handful of leaf switches.
    IitkDepartment,
    /// The IIT Kanpur HPC2010 shape: 16 nodes/leaf.
    IitkHpc2010,
    /// Cori-like: large irregular leaves (330–380 nodes each).
    CoriLike,
    /// Intrepid scale: 40,960 nodes (Blue Gene/P), three-level tree.
    Intrepid,
    /// Theta scale: 4,392 nodes, Cori-like large leaves.
    Theta,
    /// Mira scale: 49,152 nodes (Blue Gene/Q), three-level tree.
    Mira,
    /// Exascale multi-rail fat-tree: 524,288 nodes — 32 pods × 32 leaves
    /// × (4 rails × 128 nodes). See [`Tree::multirail_fat_tree`].
    Multirail500k,
    /// Exascale dragonfly-as-tree: 1,048,576 nodes — 64 groups × 256
    /// routers × 64 nodes. See [`Tree::dragonfly_tree`].
    Dragonfly1M,
}

impl SystemPreset {
    /// Build the topology for this preset.
    ///
    /// Deterministic: the "irregular" Cori-like leaf sizes follow a fixed
    /// repeating pattern in 330–380 (the paper only states the range).
    pub fn build(self) -> Tree {
        match self {
            // 50 nodes, 13/13/12/12 across 4 leaf switches; the motivation
            // experiment placed jobs across two of these.
            Self::IitkDepartment => Tree::irregular_two_level(&[13, 13, 12, 12]),
            // HPC2010: 768 nodes at 16/leaf = 48 leaves, two aggregation
            // switches of 24 leaves each.
            Self::IitkHpc2010 => Tree::regular_three_level(2, 24, 16),
            // A 12-leaf Cori-ish tree, ~4.3k nodes.
            Self::CoriLike => Tree::irregular_two_level(&cori_leaf_sizes(12, 4392)),
            // The three evaluation systems are emulated on the LBNL/Cori
            // leaf shape (330-380 nodes per leaf switch, §5.2). Large
            // leaves never divide the logs' power-of-two requests, which
            // is what gives the allocators real choices; the IITK 16/leaf
            // shape makes every power-of-two job occupy whole leaves under
            // *any* policy (see DESIGN.md). 40,960 nodes over 118 leaves.
            Self::Intrepid => Tree::irregular_two_level(&cori_leaf_sizes(118, 40960)),
            // 4,392 nodes over 12 large leaves.
            Self::Theta => Tree::irregular_two_level(&cori_leaf_sizes(12, 4392)),
            // 49,152 nodes over 144 large leaves.
            Self::Mira => Tree::irregular_two_level(&cori_leaf_sizes(144, 49152)),
            // The two exascale classes (ROADMAP item 3): 2^19 nodes over
            // 1,024 fat leaves, and 2^20 nodes over 16,384 thin routers.
            Self::Multirail500k => Tree::multirail_fat_tree(32, 32, 128, 4),
            Self::Dragonfly1M => Tree::dragonfly_tree(64, 256, 64),
        }
    }

    /// Total node count of the built topology (without building it).
    pub fn num_nodes(self) -> usize {
        match self {
            Self::IitkDepartment => 50,
            Self::IitkHpc2010 => 768,
            Self::CoriLike | Self::Theta => 4392,
            Self::Intrepid => 40960,
            Self::Mira => 49152,
            Self::Multirail500k => 524288,
            Self::Dragonfly1M => 1048576,
        }
    }
}

/// Leaf sizes in the 330–380 band summing exactly to `total`.
fn cori_leaf_sizes(leaves: usize, total: usize) -> Vec<usize> {
    // Cycle through the band deterministically, then fix up the remainder on
    // the last leaf while keeping every size within [330, 380].
    let pattern = [
        366usize, 352, 374, 338, 360, 380, 344, 370, 332, 356, 376, 348,
    ];
    let mut sizes: Vec<usize> = (0..leaves).map(|k| pattern[k % pattern.len()]).collect();
    let sum: usize = sizes.iter().sum();
    let mut diff = total as isize - sum as isize;
    let mut k = 0;
    while diff != 0 {
        let s = &mut sizes[k % leaves];
        if diff > 0 && *s < 380 {
            *s += 1;
            diff -= 1;
        } else if diff < 0 && *s > 330 {
            *s -= 1;
            diff += 1;
        }
        k += 1;
        assert!(k < leaves * 200, "cannot fit {total} nodes in band");
    }
    sizes
}
