//! The core immutable tree topology structure and its queries.

use commsched_num::usize_of_u32;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a compute node (dense, `0..num_nodes`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a switch (dense, `0..num_switches`, leaves and uppers mixed).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SwitchId(pub usize);

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "switch{}", self.0)
    }
}

/// One switch in the tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Switch {
    /// Configured name (e.g. `s0`).
    pub name: String,
    /// Level in the tree: leaves are 1, the root has the highest level.
    pub level: u32,
    /// Parent switch; `None` only for the root.
    pub parent: Option<SwitchId>,
    /// Child switches (empty for leaf switches).
    pub children: Vec<SwitchId>,
    /// Nodes attached directly (non-empty exactly for leaf switches).
    pub nodes: Vec<NodeId>,
    /// Total compute nodes in this switch's subtree.
    pub subtree_nodes: usize,
    /// Ordinals (indices into [`Tree::leaves`]) of leaf switches under this
    /// switch, in node order. For a leaf switch this is its own ordinal.
    pub leaf_ordinals: Vec<usize>,
}

/// Structural errors detected while validating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// No switches at all.
    Empty,
    /// More than one switch has no parent.
    MultipleRoots(Vec<String>),
    /// No root (a parent cycle).
    NoRoot,
    /// A node is attached to more than one leaf switch.
    DuplicateNode(String),
    /// A switch is claimed as child by more than one parent.
    DuplicateChild(String),
    /// A referenced child switch was never defined.
    UnknownSwitch(String),
    /// A switch mixes `Nodes=` and `Switches=` or has neither.
    MalformedSwitch(String),
    /// A cycle in the switch hierarchy.
    Cycle(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "topology has no switches"),
            Self::MultipleRoots(names) => write!(f, "multiple root switches: {names:?}"),
            Self::NoRoot => write!(f, "no root switch (parent cycle?)"),
            Self::DuplicateNode(n) => write!(f, "node {n} attached to more than one switch"),
            Self::DuplicateChild(s) => write!(f, "switch {s} has more than one parent"),
            Self::UnknownSwitch(s) => write!(f, "switch {s} referenced but never defined"),
            Self::MalformedSwitch(s) => {
                write!(f, "switch {s} must have exactly one of Nodes= or Switches=")
            }
            Self::Cycle(s) => write!(f, "cycle in switch hierarchy at {s}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Interned node names: one shared byte buffer plus an offset table.
///
/// A `Vec<String>` costs 24 bytes of struct plus one heap allocation per
/// node; at the 1M-node presets that is tens of megabytes of pointer
/// chasing before the first query runs. The arena stores every name
/// contiguously (~9 bytes per node for `n1048575`-style names) and hands
/// out `&str` slices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct NameArena {
    buf: String,
    /// `offsets[i]..offsets[i+1]` is name `i`; always `count + 1` entries.
    offsets: Vec<u32>,
}

impl NameArena {
    fn with_capacity(names: usize, bytes: usize) -> Self {
        let mut offsets = Vec::with_capacity(names + 1);
        offsets.push(0);
        NameArena {
            buf: String::with_capacity(bytes),
            offsets,
        }
    }

    fn push(&mut self, name: &str) {
        self.buf.push_str(name);
        // detlint: allow(P1) — offsets are u32 by design; a topology with
        // over 4 GiB of node names is out of scope for every target scale
        let end = u32::try_from(self.buf.len()).expect("name arena exceeds 4 GiB");
        self.offsets.push(end);
    }

    #[inline]
    fn get(&self, i: usize) -> &str {
        &self.buf[usize_of_u32(self.offsets[i])..usize_of_u32(self.offsets[i + 1])]
    }

    #[inline]
    fn len(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// An immutable, validated tree/fat-tree topology.
///
/// Construction goes through [`Tree::from_conf`], the builders in this crate,
/// or [`Tree::from_parts`]. All queries are cheap: LCA is O(depth) with no
/// allocation, [`Tree::node_by_name`] is a binary search over a prebuilt
/// index, everything else is O(1) table lookups.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    pub(crate) node_names: NameArena,
    /// Leaf switch of each node.
    pub(crate) node_leaf: Vec<SwitchId>,
    pub(crate) switches: Vec<Switch>,
    /// Leaf switch ids in node order (ordinal -> SwitchId).
    pub(crate) leaves: Vec<SwitchId>,
    /// SwitchId -> leaf ordinal (usize::MAX for non-leaves).
    pub(crate) leaf_ordinal: Vec<usize>,
    pub(crate) root: SwitchId,
    /// Node ids sorted by name — the [`Tree::node_by_name`] index.
    pub(crate) name_order: Vec<NodeId>,
    /// Switch ids in increasing level order (ties by id) — the precomputed
    /// [`Tree::switches_by_level`] answer.
    pub(crate) level_order: Vec<SwitchId>,
}

impl Tree {
    /// Build and validate a tree from explicit parts.
    ///
    /// `leaf_nodes[k]` is the list of node names on leaf `k` (in order);
    /// `uppers` is a list of `(name, children)` where children name either
    /// leaves or earlier-defined upper switches. Leaf `k` is named
    /// `leaf_names[k]`.
    pub fn from_parts(
        leaf_names: Vec<String>,
        leaf_nodes: Vec<Vec<String>>,
        uppers: Vec<(String, Vec<String>)>,
    ) -> Result<Self, TreeError> {
        use std::collections::BTreeMap;

        assert_eq!(leaf_names.len(), leaf_nodes.len());
        if leaf_names.is_empty() {
            return Err(TreeError::Empty);
        }

        let num_leaves = leaf_names.len();
        let mut switches: Vec<Switch> = Vec::with_capacity(num_leaves + uppers.len());
        // Ordered containers: switch/node numbering must never depend on
        // hash order, even if a future refactor iterates these.
        let mut by_name: BTreeMap<String, SwitchId> = BTreeMap::new();

        let total_nodes: usize = leaf_nodes.iter().map(Vec::len).sum();
        let name_bytes: usize = leaf_nodes
            .iter()
            .flat_map(|ns| ns.iter().map(String::len))
            .sum();
        let mut node_names = NameArena::with_capacity(total_nodes, name_bytes);
        let mut node_leaf = Vec::with_capacity(total_nodes);
        let mut leaves = Vec::with_capacity(num_leaves);

        for (k, (name, nodes)) in leaf_names.into_iter().zip(leaf_nodes).enumerate() {
            let id = SwitchId(switches.len());
            if by_name.insert(name.clone(), id).is_some() {
                return Err(TreeError::DuplicateChild(name));
            }
            let mut node_ids = Vec::with_capacity(nodes.len());
            for n in nodes {
                let nid = NodeId(node_names.len());
                node_names.push(&n);
                node_leaf.push(id);
                node_ids.push(nid);
            }
            let count = node_ids.len();
            switches.push(Switch {
                name,
                level: 1,
                parent: None,
                children: Vec::new(),
                nodes: node_ids,
                subtree_nodes: count,
                leaf_ordinals: vec![k],
            });
            leaves.push(id);
        }

        // Duplicate-node detection doubles as the name index build: sort
        // node ids by name once, then any duplicate is adjacent. Replaces
        // the old per-name `BTreeSet<String>` (which cloned every name).
        let mut name_order: Vec<NodeId> = (0..node_names.len()).map(NodeId).collect();
        name_order.sort_unstable_by(|a, b| node_names.get(a.0).cmp(node_names.get(b.0)));
        for pair in name_order.windows(2) {
            if node_names.get(pair[0].0) == node_names.get(pair[1].0) {
                return Err(TreeError::DuplicateNode(node_names.get(pair[0].0).into()));
            }
        }

        for (name, children) in uppers {
            let id = SwitchId(switches.len());
            if by_name.contains_key(&name) {
                return Err(TreeError::DuplicateChild(name));
            }
            let mut child_ids = Vec::with_capacity(children.len());
            for c in &children {
                let cid = *by_name
                    .get(c)
                    .ok_or_else(|| TreeError::UnknownSwitch(c.clone()))?;
                if switches[cid.0].parent.is_some() {
                    return Err(TreeError::DuplicateChild(c.clone()));
                }
                switches[cid.0].parent = Some(id);
                child_ids.push(cid);
            }
            if child_ids.is_empty() {
                return Err(TreeError::MalformedSwitch(name));
            }
            let level = 1 + child_ids
                .iter()
                .map(|c| switches[c.0].level)
                .max()
                .unwrap_or(0);
            let subtree_nodes = child_ids.iter().map(|c| switches[c.0].subtree_nodes).sum();
            let leaf_ordinals = child_ids
                .iter()
                .flat_map(|c| switches[c.0].leaf_ordinals.iter().copied())
                .collect();
            by_name.insert(name.clone(), id);
            switches.push(Switch {
                name,
                level,
                parent: None,
                children: child_ids,
                nodes: Vec::new(),
                subtree_nodes,
                leaf_ordinals,
            });
        }

        let roots: Vec<SwitchId> = (0..switches.len())
            .map(SwitchId)
            .filter(|s| switches[s.0].parent.is_none())
            .collect();
        let root = match roots.as_slice() {
            [] => return Err(TreeError::NoRoot),
            [r] => *r,
            many => {
                return Err(TreeError::MultipleRoots(
                    many.iter().map(|s| switches[s.0].name.clone()).collect(),
                ))
            }
        };

        // Reachability from the root guards against disconnected groups that
        // happen to form a second tree whose root got a parent via a cycle.
        let mut reach = vec![false; switches.len()];
        let mut stack = vec![root];
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut reach[s.0], true) {
                return Err(TreeError::Cycle(switches[s.0].name.clone()));
            }
            stack.extend(switches[s.0].children.iter().copied());
        }
        if let Some(unreached) = reach.iter().position(|r| !r) {
            return Err(TreeError::Cycle(switches[unreached].name.clone()));
        }

        let mut leaf_ordinal = vec![usize::MAX; switches.len()];
        for (k, l) in leaves.iter().enumerate() {
            leaf_ordinal[l.0] = k;
        }

        let mut level_order: Vec<SwitchId> = (0..switches.len()).map(SwitchId).collect();
        level_order.sort_by_key(|s| switches[s.0].level);

        Ok(Tree {
            node_names,
            node_leaf,
            switches,
            leaves,
            leaf_ordinal,
            root,
            name_order,
            level_order,
        })
    }

    /// Number of compute nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of switches (all levels).
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of leaf switches.
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// The root switch.
    #[inline]
    pub fn root(&self) -> SwitchId {
        self.root
    }

    /// Height of the tree = level of the root (leaves are level 1).
    #[inline]
    pub fn height(&self) -> u32 {
        self.switches[self.root.0].level
    }

    /// Access a switch by id.
    #[inline]
    pub fn switch(&self, s: SwitchId) -> &Switch {
        &self.switches[s.0]
    }

    /// All switches, dense by id.
    #[inline]
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// Leaf switch ids, ordinal order.
    #[inline]
    pub fn leaves(&self) -> &[SwitchId] {
        &self.leaves
    }

    /// Leaf switch id for a leaf ordinal.
    #[inline]
    pub fn leaf(&self, ordinal: usize) -> SwitchId {
        self.leaves[ordinal]
    }

    /// Leaf ordinal of a leaf switch id; panics on non-leaf.
    #[inline]
    pub fn leaf_ordinal(&self, s: SwitchId) -> usize {
        let o = self.leaf_ordinal[s.0];
        assert!(o != usize::MAX, "{s} is not a leaf switch");
        o
    }

    /// The leaf switch a node hangs off.
    #[inline]
    pub fn leaf_of(&self, n: NodeId) -> SwitchId {
        self.node_leaf[n.0]
    }

    /// Leaf ordinal of the leaf switch a node hangs off.
    #[inline]
    pub fn leaf_ordinal_of(&self, n: NodeId) -> usize {
        self.leaf_ordinal[self.node_leaf[n.0].0]
    }

    /// Nodes attached to a leaf (by ordinal).
    #[inline]
    pub fn leaf_nodes(&self, ordinal: usize) -> &[NodeId] {
        &self.switches[self.leaves[ordinal].0].nodes
    }

    /// Number of nodes on a leaf (the paper's `L_nodes`).
    #[inline]
    pub fn leaf_size(&self, ordinal: usize) -> usize {
        self.leaf_nodes(ordinal).len()
    }

    /// Configured name of a node.
    #[inline]
    pub fn node_name(&self, n: NodeId) -> &str {
        self.node_names.get(n.0)
    }

    /// Look up a node by name — O(log n) binary search over the sorted
    /// name index built at construction (the conf/hostlist resolution
    /// path; the old linear scan was pathological at 1M nodes).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_order
            .binary_search_by(|n| self.node_names.get(n.0).cmp(name))
            .ok()
            .map(|i| self.name_order[i])
    }

    /// Lowest common ancestor switch of two *switches*.
    pub fn lca_switch(&self, mut a: SwitchId, mut b: SwitchId) -> SwitchId {
        // detlint: allow(P1) — from_parts validates a single connected
        // root, so two switches of the same tree always meet before
        // either walk runs past the root.
        let up = |s: SwitchId| self.switches[s.0].parent.expect("reached root before LCA");
        while a != b {
            let (la, lb) = (self.switches[a.0].level, self.switches[b.0].level);
            if la < lb {
                a = up(a);
            } else if lb < la {
                b = up(b);
            } else {
                a = up(a);
                b = up(b);
            }
        }
        a
    }

    /// Lowest common ancestor switch of two nodes.
    #[inline]
    pub fn lca(&self, i: NodeId, j: NodeId) -> SwitchId {
        self.lca_switch(self.node_leaf[i.0], self.node_leaf[j.0])
    }

    /// The paper's Eq. 4: `d(i, j) = 2 * level(lowest common switch)`.
    ///
    /// Two nodes on the same leaf are at distance 2; `d(i, i) = 0`.
    #[inline]
    pub fn distance(&self, i: NodeId, j: NodeId) -> u32 {
        if i == j {
            return 0;
        }
        2 * self.switches[self.lca(i, j).0].level
    }

    /// Level of the lowest common switch of two leaf *ordinals*.
    ///
    /// This is the inner loop of the cost model, so it avoids the node
    /// indirection of [`Tree::distance`].
    #[inline]
    pub fn leaf_lca_level(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return 1;
        }
        self.switches[self.lca_switch(self.leaves[a], self.leaves[b]).0].level
    }

    /// Iterate over `(ordinal, SwitchId)` of leaves under `s`, node order.
    pub fn leaf_ordinals_under(&self, s: SwitchId) -> &[usize] {
        &self.switches[s.0].leaf_ordinals
    }

    /// Total nodes in a switch's subtree.
    #[inline]
    pub fn subtree_nodes(&self, s: SwitchId) -> usize {
        self.switches[s.0].subtree_nodes
    }

    /// Switches in increasing level order (leaves first, ties by id), for
    /// bottom-up scans. Precomputed at construction — the old
    /// allocate-and-sort on every call showed up in per-placement profiles.
    #[inline]
    pub fn switches_by_level(&self) -> &[SwitchId] {
        &self.level_order
    }

    /// Size of the canonical *directed-link* id space over this tree: one
    /// up/down pair per node (toward/from its leaf switch) followed by one
    /// up/down pair per switch (toward/from its parent; the root's pair is
    /// reserved but unused). This numbering is shared by the netsim flow
    /// solver and the engine's link-fault model, so a link ordinal in a
    /// fault trace means the same wire in both simulators.
    #[inline]
    pub fn num_directed_links(&self) -> usize {
        2 * (self.node_leaf.len() + self.switches.len())
    }

    /// Directed link carrying traffic from node `n` up into its leaf switch.
    #[inline]
    pub fn node_uplink(&self, n: NodeId) -> usize {
        2 * n.0
    }

    /// Directed link carrying traffic from the leaf switch down to node `n`.
    #[inline]
    pub fn node_downlink(&self, n: NodeId) -> usize {
        2 * n.0 + 1
    }

    /// Directed link carrying traffic from switch `s` up to its parent.
    #[inline]
    pub fn switch_uplink(&self, s: SwitchId) -> usize {
        2 * self.node_leaf.len() + 2 * s.0
    }

    /// Directed link carrying traffic from `s`'s parent down into `s`.
    #[inline]
    pub fn switch_downlink(&self, s: SwitchId) -> usize {
        2 * self.node_leaf.len() + 2 * s.0 + 1
    }
}
