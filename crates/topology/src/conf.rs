//! SLURM `topology.conf` parsing and emission.
//!
//! Grammar (the subset SLURM's `topology/tree` plugin reads):
//!
//! ```text
//! # comment
//! SwitchName=<name> Nodes=<hostlist>
//! SwitchName=<name> Switches=<hostlist>
//! ```
//!
//! Keys are case-insensitive like SLURM's parser; `LinkSpeed=` (accepted and
//! ignored by SLURM) is accepted and ignored here too.

use crate::tree::{Tree, TreeError};
use commsched_hostlist as hostlist;
use std::fmt;

/// Error parsing a `topology.conf` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfError {
    /// A line that is not a comment and has no `SwitchName=`.
    MissingSwitchName { line: usize },
    /// Unrecognized `key=value` token.
    UnknownKey { line: usize, key: String },
    /// A bad hostlist expression.
    BadHostlist { line: usize, err: String },
    /// Line defines both or neither of `Nodes=` / `Switches=`.
    NodesXorSwitches { line: usize, switch: String },
    /// The switch graph is structurally invalid.
    Structure(TreeError),
}

impl fmt::Display for ConfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingSwitchName { line } => {
                write!(f, "line {line}: missing SwitchName=")
            }
            Self::UnknownKey { line, key } => write!(f, "line {line}: unknown key {key:?}"),
            Self::BadHostlist { line, err } => write!(f, "line {line}: bad hostlist: {err}"),
            Self::NodesXorSwitches { line, switch } => write!(
                f,
                "line {line}: switch {switch} needs exactly one of Nodes= or Switches="
            ),
            Self::Structure(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl std::error::Error for ConfError {}

impl From<TreeError> for ConfError {
    fn from(e: TreeError) -> Self {
        Self::Structure(e)
    }
}

struct RawSwitch {
    name: String,
    nodes: Option<Vec<String>>,
    switches: Option<Vec<String>>,
}

fn parse_line(line: &str, lineno: usize) -> Result<Option<RawSwitch>, ConfError> {
    let line = match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
    .trim();
    if line.is_empty() {
        return Ok(None);
    }

    let mut name: Option<String> = None;
    let mut nodes: Option<Vec<String>> = None;
    let mut switches: Option<Vec<String>> = None;

    for token in line.split_whitespace() {
        let Some((key, value)) = token.split_once('=') else {
            return Err(ConfError::UnknownKey {
                line: lineno,
                key: token.to_string(),
            });
        };
        match key.to_ascii_lowercase().as_str() {
            "switchname" => name = Some(value.to_string()),
            "nodes" => {
                nodes = Some(hostlist::expand(value).map_err(|e| ConfError::BadHostlist {
                    line: lineno,
                    err: e.to_string(),
                })?)
            }
            "switches" => {
                switches = Some(hostlist::expand(value).map_err(|e| ConfError::BadHostlist {
                    line: lineno,
                    err: e.to_string(),
                })?)
            }
            "linkspeed" => {} // accepted and ignored, like SLURM
            _ => {
                return Err(ConfError::UnknownKey {
                    line: lineno,
                    key: key.to_string(),
                })
            }
        }
    }

    let name = name.ok_or(ConfError::MissingSwitchName { line: lineno })?;
    if nodes.is_some() == switches.is_some() {
        return Err(ConfError::NodesXorSwitches {
            line: lineno,
            switch: name,
        });
    }
    Ok(Some(RawSwitch {
        name,
        nodes,
        switches,
    }))
}

impl Tree {
    /// Parse a SLURM `topology.conf` document.
    ///
    /// Leaf switches (lines with `Nodes=`) may appear in any order relative
    /// to upper switches, but an upper switch must be defined after all of
    /// its children, which is how SLURM sites lay the file out in practice
    /// (leaves first, then aggregation layers).
    pub fn from_conf(text: &str) -> Result<Self, ConfError> {
        let mut leaf_names = Vec::new();
        let mut leaf_nodes = Vec::new();
        let mut uppers = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if let Some(raw) = parse_line(line, i + 1)? {
                // parse_line guarantees nodes XOR switches is populated.
                if let Some(nodes) = raw.nodes {
                    leaf_names.push(raw.name);
                    leaf_nodes.push(nodes);
                } else if let Some(switches) = raw.switches {
                    uppers.push((raw.name, switches));
                }
            }
        }
        Ok(Tree::from_parts(leaf_names, leaf_nodes, uppers)?)
    }

    /// Emit this topology as a `topology.conf` document.
    ///
    /// Hostlists are compressed canonically, so `from_conf(to_conf(t))`
    /// reproduces an identical tree.
    pub fn to_conf(&self) -> String {
        let mut out = String::new();
        for &s in self.switches_by_level() {
            let sw = self.switch(s);
            if sw.children.is_empty() {
                let names: Vec<&str> = sw.nodes.iter().map(|n| self.node_name(*n)).collect();
                out.push_str(&format!(
                    "SwitchName={} Nodes={}\n",
                    sw.name,
                    hostlist::compress(&names)
                ));
            } else {
                let names: Vec<&str> = sw
                    .children
                    .iter()
                    .map(|c| self.switch(*c).name.as_str())
                    .collect();
                out.push_str(&format!(
                    "SwitchName={} Switches={}\n",
                    sw.name,
                    hostlist::compress(&names)
                ));
            }
        }
        out
    }
}
