//! The fluid flow simulator: routing, max–min rate allocation, event loop.
//!
//! # Hot-path architecture
//!
//! The simulator spends essentially all of its time reacting to events
//! (a flow drains, a step's overhead gate opens, a job arrives) and
//! recomputing max–min fair rates. Three structures keep that loop
//! allocation-free and sub-linear in the machine size:
//!
//! * **Route arena** ([`RouteArena`]): every flow's route is a contiguous
//!   slice of one shared `LinkId` buffer (CSR style), written in place when
//!   a step's flows are created — no per-flow `Vec` allocations. Retired
//!   flows leave dead segments; the arena compacts itself once more than
//!   half the buffer is dead.
//! * **Maintained link index** ([`RunState::link_flows`]): the set of
//!   *active* flows crossing each link is kept up to date on every flow
//!   activation/retirement instead of being rebuilt from scratch at each
//!   event; its length is the per-link active-flow count the solver needs.
//! * **Dirty-link frontier solver** ([`FlowSim::solve_incremental`]): an
//!   event only changes rates for flows connected to the changed links
//!   through shared-link connectivity (max–min allocations decompose across
//!   connected components of the flow/link graph). The solver BFSes from
//!   the dirty links, re-waterfills just the affected component(s), and
//!   leaves every other flow's rate untouched. The full-fixpoint reference
//!   solver is retained behind [`SolverKind::Naive`] and the two are
//!   property-tested for exact rate equality.

use commsched_collectives::{CollectiveSpec, Pattern, Step};
use commsched_num::{f64_of_u64, i32_of_u32, u32_of_usize, u64_of_f64, u64_of_usize, usize_of_u32};
use commsched_topology::{NodeId, SwitchId, Tree};
use commsched_trace::{EventClass, EventKind as TK, Recorder, Tracer};
use serde::{Deserialize, Serialize};

/// Link capacities and protocol overheads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Capacity of a node↔leaf link, bytes/second per direction.
    pub node_bandwidth: f64,
    /// Capacity multiplier for a switch↔parent link at level `l` (the
    /// leaf's uplink is level 1): `node_bandwidth * trunk_factor^l`.
    /// `1.0` models the paper's department cluster (1G everywhere, heavy
    /// contention on uplinks); `2.0` models a fat-tree that doubles upward.
    pub trunk_factor: f64,
    /// Fixed per-step synchronization overhead in seconds (MPI call and
    /// switch latency); keeps tiny-message steps from completing in 0 time.
    pub step_overhead: f64,
    /// Aggregate switching fabric of each *leaf* switch, as a multiple of
    /// `node_bandwidth`: every flow entering or leaving a leaf consumes a
    /// share of its backplane. `None` models a non-blocking switch (the
    /// default). Cheap department-cluster switches are oversubscribed —
    /// the effect behind the paper's same-leaf contention term (Eq. 2).
    #[serde(default)]
    pub backplane_factor: Option<f64>,
    /// Parallel rails each modelled link aggregates (multirail topologies
    /// are flattened here, so one `LinkId` stands for `rails` physical
    /// cables). A [`LinkEvent`] degrading to `p`‰ hits *one* rail; the
    /// other `rails − 1` stay at nominal, so the effective capacity factor
    /// is `((rails − 1) + p/1000) / rails` — traffic fails over to the
    /// healthy rails. `1` (single-rail, the default constructors) makes a
    /// degrade apply verbatim.
    #[serde(default)]
    pub rails: u32,
}

impl NetConfig {
    /// 1 Gbit/s Ethernet everywhere — the IIT Kanpur department cluster of
    /// the Figure 1 study.
    pub fn gigabit_ethernet() -> Self {
        NetConfig {
            node_bandwidth: 125.0e6, // 1 Gb/s in bytes/s
            trunk_factor: 1.0,
            step_overhead: 100.0e-6,
            backplane_factor: None,
            rails: 1,
        }
    }

    /// A department cluster with oversubscribed leaf switches: 1 Gb/s
    /// links but only 6 line-rates of fabric per leaf. Same-leaf traffic
    /// now contends, as Eq. 2 assumes.
    pub fn cheap_ethernet() -> Self {
        NetConfig {
            backplane_factor: Some(6.0),
            ..Self::gigabit_ethernet()
        }
    }

    /// A fat-tree whose aggregate uplink capacity doubles per level, the
    /// topology of Figure 2.
    pub fn fat_tree() -> Self {
        NetConfig {
            node_bandwidth: 125.0e6,
            trunk_factor: 2.0,
            step_overhead: 100.0e-6,
            backplane_factor: None,
            rails: 1,
        }
    }

    /// The same fat-tree with each modelled link standing for `rails`
    /// physical cables, for degraded-link failover studies.
    pub fn multirail_fat_tree(rails: u32) -> Self {
        NetConfig {
            rails: rails.max(1),
            ..Self::fat_tree()
        }
    }
}

/// Which max–min rate solver drives the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolverKind {
    /// Dirty-link frontier: recompute rates only for flows sharing a link
    /// (transitively) with the flows that changed at this event. The
    /// default.
    #[default]
    Incremental,
    /// Re-run the full progressive-filling fixpoint over every flow at
    /// every event — the reference implementation the incremental solver is
    /// property-tested against.
    Naive,
}

/// One collective job to simulate: a node set, the collective it runs, when
/// it is submitted, and how many back-to-back iterations it performs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Caller-chosen id, reported back in [`JobResult`].
    pub id: u64,
    /// Nodes the job occupies; rank `r` runs on `nodes[r]` after sorting.
    pub nodes: Vec<NodeId>,
    /// The collective and its message size.
    pub spec: CollectiveSpec,
    /// Submission time in seconds.
    pub submit: f64,
    /// Back-to-back iterations of the collective (≥ 1).
    pub iterations: usize,
}

/// Timing of one iteration of a job's collective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationSample {
    /// Wall-clock second the iteration started.
    pub start: f64,
    /// Seconds the iteration took.
    pub duration: f64,
}

/// Completed-job report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Id from the [`Workload`].
    pub id: u64,
    /// Submission time (the job starts immediately; netsim has no queue).
    pub submit: f64,
    /// Completion time of the last iteration, or the kill time for jobs
    /// torn down by a [`KillEvent`].
    pub end: f64,
    /// Per-iteration timings — the Figure 1 series. A killed job reports
    /// only the iterations it completed; the in-flight one is dropped.
    pub iterations: Vec<IterationSample>,
    /// Whether the job was torn down by a [`KillEvent`] before finishing.
    pub killed: bool,
}

/// An externally imposed job teardown (a node failure upstairs in the
/// scheduler killed the job). At time `t` every flow belonging to the job
/// is removed from the network and max–min rates are recomputed for the
/// surviving flows that shared links with it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KillEvent {
    /// Simulation second the teardown takes effect. Kills before the job's
    /// submit time make it stillborn (it never transfers a byte).
    pub t: f64,
    /// [`Workload::id`] of the job to tear down. Ids matching no workload
    /// are ignored.
    pub job: u64,
}

/// A mid-run capacity change on one directed link (a degraded cable, or
/// its repair). At time `t` the link's capacity becomes
/// `nominal × effective_factor(permille)` — see [`NetConfig::rails`] for
/// the multirail blend — and max–min rates are re-solved for every flow
/// that (transitively) shares a link with it. `permille = 1000` restores
/// the nominal capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkEvent {
    /// Simulation second the capacity change takes effect.
    pub t: f64,
    /// Directed link id in the canonical topology numbering
    /// (`Tree::node_uplink` and friends). Out-of-range ids are ignored.
    pub link: usize,
    /// New capacity of the affected rail, in thousandths of nominal.
    /// Clamped to `1..=1000` — a dead cable is modelled as 1‰, never 0,
    /// so flows keep draining and the event loop cannot stall.
    pub permille: u32,
}

/// Where the bytes went: per-class link accounting for one simulation run.
///
/// Produced by [`FlowSim::run_with_stats`]; useful for spotting which part
/// of the fabric bottlenecked a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Bytes through node↔leaf links (both directions).
    pub node_bytes: f64,
    /// Bytes through switch↔parent trunks, indexed by switch level − 1
    /// (entry 0 = leaf uplinks).
    pub trunk_bytes_per_level: Vec<f64>,
    /// Bytes through leaf backplanes (0 when backplanes are disabled).
    pub backplane_bytes: f64,
    /// Peak time-average utilization over all links:
    /// `bytes / (capacity × span)` of the busiest link.
    pub busiest_utilization: f64,
    /// Wall-clock span of the run in seconds.
    pub span: f64,
}

/// Directed-link id space: `2*n`/`2*n+1` are node `n`'s up/down links;
/// switch `s`'s up/down links to its parent follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LinkId(usize);

/// One directed flow. Its route lives in the [`RouteArena`] as the
/// half-open slice `route.0..route.1`.
#[derive(Debug, Clone)]
struct Flow {
    route: (u32, u32),
    remaining: f64,
    rate: f64,
    job_idx: usize,
    /// Whether the step's overhead gate has opened for this flow. Inactive
    /// flows hold rate 0 and do not appear in the link index.
    active: bool,
}

#[derive(Debug)]
struct ActiveJob {
    workload_idx: usize,
    steps: Vec<Step>,
    /// Sorted node list; rank r -> ranked[r].
    ranked: Vec<NodeId>,
    step_idx: usize,
    iter_idx: usize,
    iter_start: f64,
    /// When the current step's overhead gate opens (flows start draining).
    gate: f64,
    flows_left: usize,
    samples: Vec<IterationSample>,
    done: bool,
    /// Set when a [`KillEvent`] tore the job down, to the effective kill
    /// time (clamped to the submit time for stillborn kills).
    killed_at: Option<f64>,
}

const EPS: f64 = 1e-9;

/// CSR-style route storage shared by all live flows of a run.
#[derive(Debug, Default)]
struct RouteArena {
    links: Vec<LinkId>,
    /// Link slots owned by retired flows, reclaimed by compaction.
    dead: usize,
}

impl RouteArena {
    #[inline]
    fn slice(&self, route: (u32, u32)) -> &[LinkId] {
        &self.links[usize_of_u32(route.0)..usize_of_u32(route.1)]
    }

    /// Copying compaction: drop dead segments once they dominate the
    /// buffer, rewriting the surviving flows' ranges. Amortized O(1) per
    /// retired link slot.
    fn maybe_compact(&mut self, flows: &mut [Flow]) {
        if self.dead < 4096 || self.dead * 2 < self.links.len() {
            return;
        }
        let mut packed = Vec::with_capacity(self.links.len() - self.dead);
        for f in flows.iter_mut() {
            let start = u32_of_usize(packed.len());
            packed.extend_from_slice(&self.links[usize_of_u32(f.route.0)..usize_of_u32(f.route.1)]);
            f.route = (start, u32_of_usize(packed.len()));
        }
        self.links = packed;
        self.dead = 0;
    }
}

/// Per-run mutable simulation state: flow table, route arena, and the
/// incrementally maintained per-link index of active flows.
struct RunState {
    flows: Vec<Flow>,
    arena: RouteArena,
    /// Indices of the *active* flows crossing each link; `len()` is the
    /// maintained per-link active-flow count. Updated on activation and
    /// retirement, never rebuilt from scratch.
    link_flows: Vec<Vec<u32>>,
    /// Links whose active-flow set (or capacity) changed since the last
    /// rate solve.
    dirty_links: Vec<usize>,
    dirty_mark: Vec<bool>,
    /// Per-run link capacities: a copy of the simulator's nominal table,
    /// mutated in place by [`LinkEvent`]s. Both solvers read this, so the
    /// incremental/naive equivalence holds under mid-run degradation.
    cap: Vec<f64>,
}

impl RunState {
    fn new(capacity: &[f64]) -> Self {
        RunState {
            flows: Vec::new(),
            arena: RouteArena::default(),
            link_flows: vec![Vec::new(); capacity.len()],
            dirty_links: Vec::new(),
            dirty_mark: vec![false; capacity.len()],
            cap: capacity.to_vec(),
        }
    }

    #[inline]
    fn mark_dirty(&mut self, l: usize) {
        if !self.dirty_mark[l] {
            self.dirty_mark[l] = true;
            self.dirty_links.push(l);
        }
    }

    fn clear_dirty(&mut self) {
        for &l in &self.dirty_links {
            self.dirty_mark[l] = false;
        }
        self.dirty_links.clear();
    }

    /// Open the gate for flow `f`: index it on its links and mark them
    /// dirty for the next solve.
    fn activate(&mut self, f: usize) {
        debug_assert!(!self.flows[f].active);
        self.flows[f].active = true;
        let (a, b) = self.flows[f].route;
        for i in a..b {
            let l = self.arena.links[usize_of_u32(i)].0;
            self.link_flows[l].push(u32_of_usize(f));
            self.mark_dirty(l);
        }
    }

    /// Retire flow `f` (drained): unlink it, mark its links dirty, and
    /// reclaim its arena segment lazily.
    fn remove_flow(&mut self, f: usize) {
        let (a, b) = self.flows[f].route;
        if self.flows[f].active {
            for i in a..b {
                let l = self.arena.links[usize_of_u32(i)].0;
                let pos = self.link_flows[l]
                    .iter()
                    .position(|&x| x == u32_of_usize(f))
                    // detlint: allow(P1) — activate() indexed this flow on
                    // every link of its route; absence is memory corruption.
                    .expect("active flow is indexed on each of its links");
                self.link_flows[l].swap_remove(pos);
                self.mark_dirty(l);
            }
        }
        self.arena.dead += usize_of_u32(b - a);
        self.flows.swap_remove(f);
        // The flow formerly at the tail now sits at `f`; repoint its index
        // entries.
        if f < self.flows.len() {
            let old = u32_of_usize(self.flows.len());
            if self.flows[f].active {
                let (a, b) = self.flows[f].route;
                for i in a..b {
                    let l = self.arena.links[usize_of_u32(i)].0;
                    let pos = self.link_flows[l]
                        .iter()
                        .position(|&x| x == old)
                        // detlint: allow(P1) — the tail flow was active, so
                        // it is indexed on each of its links by construction.
                        .expect("moved flow is indexed on each of its links");
                    self.link_flows[l][pos] = u32_of_usize(f);
                }
            }
        }
        self.arena.maybe_compact(&mut self.flows);
    }
}

/// Reusable solver scratch — allocated once per run, epoch-stamped so the
/// incremental solver never clears whole-machine-sized arrays per event.
struct SolverScratch {
    residual: Vec<f64>,
    load: Vec<u32>,
    link_epoch: Vec<u32>,
    flow_epoch: Vec<u32>,
    epoch: u32,
    /// Links / flows of the component currently being waterfilled.
    affected_links: Vec<usize>,
    affected_flows: Vec<usize>,
    frozen: Vec<bool>,
    /// Positions (into `affected_flows`) frozen in the current round.
    round: Vec<usize>,
    /// The naive solver's from-scratch load rebuild (kept separate from
    /// `load` so the rebuild cost it pays is real, not elided).
    naive_load: Vec<u32>,
}

impl SolverScratch {
    fn new(nlinks: usize) -> Self {
        SolverScratch {
            residual: vec![0.0; nlinks],
            load: vec![0; nlinks],
            link_epoch: vec![0; nlinks],
            flow_epoch: Vec::new(),
            epoch: 0,
            affected_links: Vec::new(),
            affected_flows: Vec::new(),
            frozen: Vec::new(),
            round: Vec::new(),
            naive_load: vec![0; nlinks],
        }
    }

    fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.link_epoch.fill(0);
            self.flow_epoch.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// Fluid-flow simulator over a [`Tree`].
///
/// Construct once per topology; [`FlowSim::run`] is `&self` and can be
/// called repeatedly with different workloads.
pub struct FlowSim<'t> {
    tree: &'t Tree,
    cfg: NetConfig,
    /// Capacity per directed link.
    capacity: Vec<f64>,
    /// Switch-up-link base index.
    switch_base: usize,
    /// Leaf-backplane link base index (`usize::MAX` when disabled).
    backplane_base: usize,
    solver: SolverKind,
}

impl<'t> FlowSim<'t> {
    /// Build the link table for `tree` under `cfg`.
    pub fn new(tree: &'t Tree, cfg: NetConfig) -> Self {
        assert!(cfg.node_bandwidth > 0.0 && cfg.trunk_factor > 0.0);
        let switch_base = 2 * tree.num_nodes();
        let mut capacity = vec![cfg.node_bandwidth; switch_base + 2 * tree.num_switches()];
        for s in 0..tree.num_switches() {
            let level = tree.switch(SwitchId(s)).level;
            let cap = cfg.node_bandwidth * cfg.trunk_factor.powi(i32_of_u32(level));
            capacity[switch_base + 2 * s] = cap;
            capacity[switch_base + 2 * s + 1] = cap;
        }
        let backplane_base = if let Some(factor) = cfg.backplane_factor {
            assert!(factor > 0.0, "backplane factor must be positive");
            let base = capacity.len();
            capacity.extend(std::iter::repeat_n(
                cfg.node_bandwidth * factor,
                tree.num_leaves(),
            ));
            base
        } else {
            usize::MAX
        };
        FlowSim {
            tree,
            cfg,
            capacity,
            switch_base,
            backplane_base,
            solver: SolverKind::default(),
        }
    }

    /// Select the rate solver (the incremental solver is the default; the
    /// naive fixpoint is retained for benchmarking and equivalence tests).
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// The configured rate solver.
    pub fn solver(&self) -> SolverKind {
        self.solver
    }

    #[inline]
    fn node_up(&self, n: NodeId) -> LinkId {
        LinkId(2 * n.0)
    }

    #[inline]
    fn node_down(&self, n: NodeId) -> LinkId {
        LinkId(2 * n.0 + 1)
    }

    #[inline]
    fn switch_up(&self, s: SwitchId) -> LinkId {
        LinkId(self.switch_base + 2 * s.0)
    }

    #[inline]
    fn switch_down(&self, s: SwitchId) -> LinkId {
        LinkId(self.switch_base + 2 * s.0 + 1)
    }

    /// Append the route from `src` to `dst` — up-links to the LCA, then
    /// down-links — to the arena buffer, returning the written range.
    fn route_into(&self, src: NodeId, dst: NodeId, arena: &mut Vec<LinkId>) -> (u32, u32) {
        let start = u32_of_usize(arena.len());
        arena.push(self.node_up(src));
        let lca = self.tree.lca(src, dst);
        let mut s = self.tree.leaf_of(src);
        while s != lca {
            arena.push(self.switch_up(s));
            // detlint: allow(P1) — the walk stops at the LCA, which is a
            // strict ancestor, so every switch visited has a parent.
            s = self.tree.switch(s).parent.expect("LCA above leaf");
        }
        // Down-links are discovered leaf-upward; reverse in place to get
        // LCA-downward order.
        let down_start = arena.len();
        let mut d = self.tree.leaf_of(dst);
        while d != lca {
            arena.push(self.switch_down(d));
            // detlint: allow(P1) — same LCA-ancestor argument as above.
            d = self.tree.switch(d).parent.expect("LCA above leaf");
        }
        arena[down_start..].reverse();
        arena.push(self.node_down(dst));
        if self.backplane_base != usize::MAX {
            let a = self.tree.leaf_ordinal_of(src);
            let b = self.tree.leaf_ordinal_of(dst);
            arena.push(LinkId(self.backplane_base + a));
            if b != a {
                arena.push(LinkId(self.backplane_base + b));
            }
        }
        (start, u32_of_usize(arena.len()))
    }

    /// BFS one connected component of the flow/link sharing graph into
    /// `sc.affected_links` / `sc.affected_flows`, starting from the links
    /// queued at `sc.affected_links[link_head..]`. Uses epoch stamps, so
    /// components already visited this solve are skipped for free.
    fn collect_component(&self, rs: &RunState, sc: &mut SolverScratch, mut head: usize) {
        let epoch = sc.epoch;
        while head < sc.affected_links.len() {
            let l = sc.affected_links[head];
            head += 1;
            for k in 0..rs.link_flows[l].len() {
                let f = usize_of_u32(rs.link_flows[l][k]);
                if sc.flow_epoch[f] == epoch {
                    continue;
                }
                sc.flow_epoch[f] = epoch;
                sc.affected_flows.push(f);
                let (a, b) = rs.flows[f].route;
                for i in a..b {
                    let l2 = rs.arena.links[usize_of_u32(i)].0;
                    if sc.link_epoch[l2] != epoch {
                        sc.link_epoch[l2] = epoch;
                        sc.affected_links.push(l2);
                    }
                }
            }
        }
    }

    /// Max–min progressive filling over one component
    /// (`sc.affected_links` / `sc.affected_flows`), writing each flow's
    /// bottleneck share into its rate.
    ///
    /// Each round computes the component's bottleneck share, then freezes
    /// in **two phases**: first decide the freeze set against the
    /// *pre-round* residuals, then apply all the subtractions. That makes
    /// the result a pure function of the component's {links, loads,
    /// capacities} — independent of flow visit order and of when (or with
    /// what else) the component is solved — which is what lets the
    /// incremental solver skip untouched components and still match the
    /// full fixpoint bit for bit. (In real arithmetic the two phases are
    /// equivalent: freezing a flow can only *raise* the remaining shares
    /// on its links, never pull a new link under the bottleneck; the
    /// mid-round cascade of a single-phase loop only fires on
    /// floating-point noise at the tolerance edge, and then depends on
    /// visit order.)
    fn waterfill(&self, rs: &mut RunState, sc: &mut SolverScratch) {
        for &l in &sc.affected_links {
            sc.residual[l] = rs.cap[l];
            sc.load[l] = u32_of_usize(rs.link_flows[l].len());
        }
        sc.frozen.clear();
        sc.frozen.resize(sc.affected_flows.len(), false);
        let mut left = sc.affected_flows.len();
        while left > 0 {
            // Bottleneck: minimal residual share among loaded links.
            let mut share = f64::INFINITY;
            for &l in &sc.affected_links {
                if sc.load[l] > 0 {
                    let s = sc.residual[l] / f64::from(sc.load[l]);
                    if s < share {
                        share = s;
                    }
                }
            }
            debug_assert!(share.is_finite());
            // Phase 1: the freeze set, judged on pre-round residuals only.
            sc.round.clear();
            for k in 0..sc.affected_flows.len() {
                if sc.frozen[k] {
                    continue;
                }
                let f = sc.affected_flows[k];
                let route = usize_of_u32(rs.flows[f].route.0)..usize_of_u32(rs.flows[f].route.1);
                let bottlenecked = rs.arena.links[route].iter().any(|l| {
                    sc.load[l.0] > 0
                        && sc.residual[l.0] / f64::from(sc.load[l.0]) <= share * (1.0 + 1e-12)
                });
                if bottlenecked {
                    sc.round.push(k);
                }
            }
            // The argmin link's flows always pass the test, so every round
            // makes progress.
            debug_assert!(!sc.round.is_empty(), "progressive filling stalled");
            if sc.round.is_empty() {
                break;
            }
            // Phase 2: apply.
            left -= sc.round.len();
            for ri in 0..sc.round.len() {
                let k = sc.round[ri];
                sc.frozen[k] = true;
                let f = sc.affected_flows[k];
                rs.flows[f].rate = share;
                let route = usize_of_u32(rs.flows[f].route.0)..usize_of_u32(rs.flows[f].route.1);
                for l in &rs.arena.links[route] {
                    sc.residual[l.0] = (sc.residual[l.0] - share).max(0.0);
                    sc.load[l.0] -= 1;
                }
            }
        }
    }

    /// The dirty-link frontier solver. For each link whose active-flow set
    /// changed since the last solve, BFS the connected component of flows
    /// and links around it and re-waterfill that component alone. Flows in
    /// untouched components keep their rates: max–min allocations
    /// decompose across connected components of the flow/link sharing
    /// graph, and the per-component waterfill is a pure function of the
    /// component, so an untouched component would recompute to exactly the
    /// rates it already holds.
    /// Returns `(components re-solved, flows re-rated)` — observability
    /// counts that fall out of the work already done.
    fn solve_incremental(&self, rs: &mut RunState, sc: &mut SolverScratch) -> (u64, u64) {
        if rs.dirty_links.is_empty() {
            return (0, 0);
        }
        sc.next_epoch();
        if sc.flow_epoch.len() < rs.flows.len() {
            sc.flow_epoch.resize(rs.flows.len(), 0);
        }
        let epoch = sc.epoch;
        let (mut components, mut rerated) = (0u64, 0u64);
        for di in 0..rs.dirty_links.len() {
            let l = rs.dirty_links[di];
            if sc.link_epoch[l] == epoch {
                continue; // already solved as part of an earlier component
            }
            sc.affected_links.clear();
            sc.affected_flows.clear();
            sc.link_epoch[l] = epoch;
            sc.affected_links.push(l);
            self.collect_component(rs, sc, 0);
            if !sc.affected_flows.is_empty() {
                self.waterfill(rs, sc);
                components += 1;
                rerated += u64_of_usize(sc.affected_flows.len());
            }
        }
        rs.clear_dirty();
        (components, rerated)
    }

    /// The retained reference solver: rebuild every per-link load from
    /// scratch and re-waterfill every component at every event — the
    /// pre-optimization O(links + flows) + O(rounds × links × flows)
    /// fixpoint the incremental solver is benchmarked and property-tested
    /// against. Inactive flows are pinned at rate 0.
    /// Returns `(components re-solved, flows re-rated)`, like
    /// [`FlowSim::solve_incremental`].
    fn solve_naive(&self, rs: &mut RunState, sc: &mut SolverScratch) -> (u64, u64) {
        // The from-scratch rebuild the maintained `link_flows` index
        // replaces; checked against it, and kept as real paid work so the
        // benchmark comparison is honest.
        sc.naive_load.fill(0);
        for flow in rs.flows.iter() {
            if flow.active {
                for l in rs.arena.slice(flow.route) {
                    sc.naive_load[l.0] += 1;
                }
            }
        }
        debug_assert!((0..self.capacity.len())
            .all(|l| usize_of_u32(sc.naive_load[l]) == rs.link_flows[l].len()));
        for flow in rs.flows.iter_mut() {
            if !flow.active {
                flow.rate = 0.0;
            }
        }
        sc.next_epoch();
        if sc.flow_epoch.len() < rs.flows.len() {
            sc.flow_epoch.resize(rs.flows.len(), 0);
        }
        let epoch = sc.epoch;
        let (mut components, mut rerated) = (0u64, 0u64);
        for f in 0..rs.flows.len() {
            if !rs.flows[f].active || sc.flow_epoch[f] == epoch {
                continue;
            }
            sc.affected_links.clear();
            sc.affected_flows.clear();
            sc.flow_epoch[f] = epoch;
            sc.affected_flows.push(f);
            let (a, b) = rs.flows[f].route;
            for i in a..b {
                let l = rs.arena.links[usize_of_u32(i)].0;
                if sc.link_epoch[l] != epoch {
                    sc.link_epoch[l] = epoch;
                    sc.affected_links.push(l);
                }
            }
            self.collect_component(rs, sc, 0);
            self.waterfill(rs, sc);
            components += 1;
            rerated += u64_of_usize(sc.affected_flows.len());
        }
        rs.clear_dirty();
        (components, rerated)
    }

    /// Simulate the workloads to completion and report per-job results.
    ///
    /// Jobs start at their submit times (there is no queue here — queueing
    /// is `commsched-slurmsim`'s business) and run their iterations back to
    /// back. Completed jobs are reported in workload order.
    pub fn run(&self, workloads: Vec<Workload>) -> Vec<JobResult> {
        self.run_impl(workloads, &[], &[], None, None, &mut Tracer::off())
    }

    /// Like [`FlowSim::run`], emitting solver records (`net_solve`,
    /// `net_rates`, `net_links` events) to `recorder` after every rate
    /// re-solve. Timestamps are the simulation clock in microseconds, so a
    /// netsim trace interleaves cleanly with a scheduler trace. With a
    /// masked-out sink the per-event cost is one integer test; the
    /// link-occupancy scan behind `net_links` runs only when the `net`
    /// class is recorded.
    pub fn run_traced(
        &self,
        workloads: Vec<Workload>,
        recorder: &mut dyn Recorder,
    ) -> Vec<JobResult> {
        self.run_impl(workloads, &[], &[], None, None, &mut Tracer::new(recorder))
    }

    /// Like [`FlowSim::run`], with externally imposed job teardowns.
    ///
    /// Each [`KillEvent`] removes every flow of the named job at its time
    /// and re-solves max–min rates, so contention on the surviving jobs is
    /// recomputed exactly as if the killed job had drained. With an empty
    /// `kills` slice this is identical to [`FlowSim::run`], event for
    /// event.
    pub fn run_with_kills(&self, workloads: Vec<Workload>, kills: &[KillEvent]) -> Vec<JobResult> {
        self.run_impl(workloads, kills, &[], None, None, &mut Tracer::off())
    }

    /// Like [`FlowSim::run_with_kills`], additionally applying mid-run
    /// link-capacity changes. Each [`LinkEvent`] rewrites one link's
    /// per-run capacity at its time and marks the link dirty, so the
    /// incremental solver re-converges exactly as the naive fixpoint
    /// would. With empty `kills` and `link_events` this is identical to
    /// [`FlowSim::run`], event for event.
    pub fn run_with_events(
        &self,
        workloads: Vec<Workload>,
        kills: &[KillEvent],
        link_events: &[LinkEvent],
    ) -> Vec<JobResult> {
        self.run_impl(
            workloads,
            kills,
            link_events,
            None,
            None,
            &mut Tracer::off(),
        )
    }

    /// Like [`FlowSim::run`], additionally accounting bytes per link class.
    pub fn run_with_stats(&self, workloads: Vec<Workload>) -> (Vec<JobResult>, LinkStats) {
        let mut bytes = vec![0.0f64; self.capacity.len()];
        let results = self.run_impl(
            workloads,
            &[],
            &[],
            Some(&mut bytes),
            None,
            &mut Tracer::off(),
        );
        let span = results.iter().map(|r| r.end).fold(0.0f64, f64::max)
            - results
                .iter()
                .map(|r| r.submit)
                .fold(f64::INFINITY, f64::min)
                .min(0.0);
        let span = span.max(1e-12);

        let mut stats = LinkStats {
            node_bytes: 0.0,
            trunk_bytes_per_level: vec![0.0; usize_of_u32(self.tree.height())],
            backplane_bytes: 0.0,
            busiest_utilization: 0.0,
            span,
        };
        for (l, &b) in bytes.iter().enumerate() {
            if l < self.switch_base {
                stats.node_bytes += b;
            } else if self.backplane_base != usize::MAX && l >= self.backplane_base {
                stats.backplane_bytes += b;
            } else {
                let sw = (l - self.switch_base) / 2;
                let level = usize_of_u32(self.tree.switch(SwitchId(sw)).level);
                if level <= stats.trunk_bytes_per_level.len() {
                    stats.trunk_bytes_per_level[level - 1] += b;
                }
            }
            let u = b / (self.capacity[l] * span);
            if u > stats.busiest_utilization {
                stats.busiest_utilization = u;
            }
        }
        (results, stats)
    }

    /// Run and record the full per-flow rate vector after every solve — the
    /// observable the solver-equivalence property tests compare.
    #[cfg(test)]
    pub(crate) fn run_tracing_rates(
        &self,
        workloads: Vec<Workload>,
    ) -> (Vec<JobResult>, Vec<Vec<f64>>) {
        self.run_tracing_rates_events(workloads, &[])
    }

    /// Like [`FlowSim::run_tracing_rates`], with a link-degradation
    /// schedule — the harness of the degradation-equivalence properties.
    #[cfg(test)]
    pub(crate) fn run_tracing_rates_events(
        &self,
        workloads: Vec<Workload>,
        link_events: &[LinkEvent],
    ) -> (Vec<JobResult>, Vec<Vec<f64>>) {
        let mut trace = Vec::new();
        let results = self.run_impl(
            workloads,
            &[],
            link_events,
            None,
            Some(&mut trace),
            &mut Tracer::off(),
        );
        (results, trace)
    }

    /// The effective capacity factor of a link degraded to `permille`,
    /// after blending across [`NetConfig::rails`].
    fn effective_factor(&self, permille: u32) -> f64 {
        let p = f64::from(permille.clamp(1, 1000)) / 1000.0;
        let r = f64::from(self.cfg.rails.max(1));
        ((r - 1.0) + p) / r
    }

    fn run_impl(
        &self,
        workloads: Vec<Workload>,
        kills: &[KillEvent],
        link_events: &[LinkEvent],
        mut link_bytes: Option<&mut Vec<f64>>,
        mut rate_trace: Option<&mut Vec<Vec<f64>>>,
        tracer: &mut Tracer<'_>,
    ) -> Vec<JobResult> {
        let mut jobs: Vec<ActiveJob> = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| {
                assert!(w.iterations >= 1, "iterations must be >= 1");
                let mut ranked = w.nodes.clone();
                ranked.sort_unstable();
                ranked.dedup();
                ActiveJob {
                    workload_idx: i,
                    steps: w.spec.steps(ranked.len()),
                    ranked,
                    step_idx: 0,
                    iter_idx: 0,
                    iter_start: w.submit,
                    gate: 0.0,
                    flows_left: 0,
                    samples: Vec::new(),
                    done: false,
                    killed_at: None,
                }
            })
            .collect();

        // Arrival order.
        let mut arrivals: Vec<usize> = (0..jobs.len()).collect();
        arrivals.sort_by(|&a, &b| workloads[a].submit.total_cmp(&workloads[b].submit));
        let mut next_arrival = 0usize;

        // Kill schedule, resolved to job indices and sorted by time. Kills
        // naming unknown ids or non-finite times are dropped; repeats for
        // one job are harmless (the first to fire wins).
        let mut kill_times: Vec<(f64, usize)> = kills
            .iter()
            .filter(|k| k.t.is_finite())
            .filter_map(|k| {
                workloads
                    .iter()
                    .position(|w| w.id == k.job)
                    .map(|j| (k.t, j))
            })
            .collect();
        kill_times.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut next_kill = 0usize;

        // Link-degradation schedule, sorted by (time, link) — a total,
        // deterministic order even when several cables change at once.
        // Non-finite times are dropped like non-finite kills.
        let mut degrades: Vec<LinkEvent> = link_events
            .iter()
            .filter(|e| e.t.is_finite() && e.link < self.capacity.len())
            .copied()
            .collect();
        degrades.sort_by(|a, b| a.t.total_cmp(&b.t).then(a.link.cmp(&b.link)));
        let mut next_degrade = 0usize;

        let mut rs = RunState::new(&self.capacity);
        let mut sc = SolverScratch::new(self.capacity.len());
        let mut now = 0.0f64;

        // Start a job's current step: write its flows into the arena, set
        // the overhead gate. RD/RHVD/ring/stencil pairs exchange in both
        // directions; binomial sends one way (lower rank holds the data in
        // every step of the schedule).
        fn start_step(
            sim: &FlowSim<'_>,
            jobs: &mut [ActiveJob],
            rs: &mut RunState,
            workloads: &[Workload],
            j: usize,
            now: f64,
        ) {
            loop {
                let job = &mut jobs[j];
                if job.done {
                    return;
                }
                if job.step_idx >= job.steps.len() {
                    // Iteration finished.
                    job.samples.push(IterationSample {
                        start: job.iter_start,
                        duration: now - job.iter_start,
                    });
                    job.iter_idx += 1;
                    if job.iter_idx >= workloads[job.workload_idx].iterations {
                        job.done = true;
                        return;
                    }
                    job.step_idx = 0;
                    job.iter_start = now;
                }
                let step = &job.steps[job.step_idx];
                let pattern = workloads[job.workload_idx].spec.pattern;
                let bidirectional = !matches!(pattern, Pattern::Binomial);
                job.gate = now + sim.cfg.step_overhead;
                let active_now = now + EPS >= job.gate;
                let mut created = 0usize;
                for &(a, b) in &step.pairs {
                    let (na, nb) = (job.ranked[a], job.ranked[b]);
                    if na == nb {
                        continue;
                    }
                    let route = sim.route_into(na, nb, &mut rs.arena.links);
                    rs.flows.push(Flow {
                        route,
                        remaining: f64_of_u64(step.msize),
                        rate: 0.0,
                        job_idx: j,
                        active: false,
                    });
                    if active_now {
                        rs.activate(rs.flows.len() - 1);
                    }
                    created += 1;
                    if bidirectional {
                        let route = sim.route_into(nb, na, &mut rs.arena.links);
                        rs.flows.push(Flow {
                            route,
                            remaining: f64_of_u64(step.msize),
                            rate: 0.0,
                            job_idx: j,
                            active: false,
                        });
                        if active_now {
                            rs.activate(rs.flows.len() - 1);
                        }
                        created += 1;
                    }
                }
                job.flows_left = created;
                if created == 0 {
                    // Degenerate step (no pairs, e.g. single-node job):
                    // consume the overhead and move on immediately. The
                    // overhead gate is modelled as instantaneous here to
                    // keep the loop simple; empty steps are rare.
                    job.step_idx += 1;
                    continue;
                }
                return;
            }
        }

        loop {
            // Admit arrivals that are due.
            while next_arrival < arrivals.len()
                && workloads[arrivals[next_arrival]].submit <= now + EPS
            {
                let j = arrivals[next_arrival];
                if jobs[j].done {
                    // Killed before it ever arrived: stillborn.
                    next_arrival += 1;
                    continue;
                }
                jobs[j].iter_start = workloads[j].submit.max(now);
                if jobs[j].steps.is_empty() || jobs[j].ranked.len() <= 1 {
                    // Nothing to communicate: all iterations are instant.
                    for _ in 0..workloads[j].iterations {
                        jobs[j].samples.push(IterationSample {
                            start: now,
                            duration: 0.0,
                        });
                    }
                    jobs[j].done = true;
                } else {
                    start_step(self, &mut jobs, &mut rs, &workloads, j, now);
                }
                next_arrival += 1;
            }

            // Tear down killed jobs that are due. A job finishing at
            // exactly the kill instant completes normally: its last flow
            // drained (and `done` was set) at the end of the previous loop
            // body, before this point. Removing the victim's flows marks
            // their links dirty, so the next solve recomputes the rates of
            // every surviving flow that shared a link with it.
            while next_kill < kill_times.len() && kill_times[next_kill].0 <= now + EPS {
                let (kt, j) = kill_times[next_kill];
                next_kill += 1;
                if jobs[j].done {
                    continue;
                }
                let mut f = 0;
                while f < rs.flows.len() {
                    if rs.flows[f].job_idx == j {
                        rs.remove_flow(f);
                    } else {
                        f += 1;
                    }
                }
                jobs[j].flows_left = 0;
                jobs[j].done = true;
                jobs[j].killed_at = Some(kt.max(workloads[j].submit));
            }

            // Apply link-capacity changes that are due. Rewriting the
            // per-run capacity and marking the link dirty is all the
            // incremental solver needs: the next solve re-waterfills every
            // component touching the link, and untouched components keep
            // rates that the capacity change cannot have affected.
            while next_degrade < degrades.len() && degrades[next_degrade].t <= now + EPS {
                let e = degrades[next_degrade];
                next_degrade += 1;
                rs.cap[e.link] = self.capacity[e.link] * self.effective_factor(e.permille);
                rs.mark_dirty(e.link);
            }

            if rs.flows.is_empty() && next_arrival >= arrivals.len() {
                break;
            }

            // Open the gates that have expired; rates for newly active
            // flows (and anything sharing links with them) are solved next.
            for f in 0..rs.flows.len() {
                if !rs.flows[f].active && now + EPS >= jobs[rs.flows[f].job_idx].gate {
                    rs.activate(f);
                }
            }

            let dirty = rs.dirty_links.len();
            let (components, rerated) = match self.solver {
                SolverKind::Incremental => self.solve_incremental(&mut rs, &mut sc),
                SolverKind::Naive => self.solve_naive(&mut rs, &mut sc),
            };
            if let Some(trace) = rate_trace.as_deref_mut() {
                trace.push(rs.flows.iter().map(|f| f.rate).collect());
            }
            if dirty > 0 && tracer.enabled(EventClass::Net) {
                // Simulation seconds → whole microseconds; the trace clock
                // shared with the scheduling engine.
                let t_us = u64_of_f64((now * 1e6).round());
                tracer.emit(
                    t_us,
                    TK::NetSolve {
                        components,
                        flows: rerated,
                        dirty_links: u64_of_usize(dirty),
                    },
                );
                let mut active = 0u64;
                let mut min_rate = f64::INFINITY;
                let mut max_rate = 0.0f64;
                for flow in &rs.flows {
                    if flow.active {
                        active += 1;
                        min_rate = min_rate.min(flow.rate);
                        max_rate = max_rate.max(flow.rate);
                    }
                }
                if active > 0 {
                    tracer.emit(
                        t_us,
                        TK::NetRates {
                            flows: active,
                            min_rate,
                            max_rate,
                        },
                    );
                }
                // Link occupancy: a tracing-only scan, gated above.
                let mut live = 0u64;
                let mut saturated = 0u64;
                for (l, on_link) in rs.link_flows.iter().enumerate() {
                    if on_link.is_empty() {
                        continue;
                    }
                    live += 1;
                    let allocated: f64 = on_link
                        .iter()
                        .map(|&fi| rs.flows[usize_of_u32(fi)].rate)
                        .sum();
                    if allocated >= rs.cap[l] * (1.0 - 1e-9) {
                        saturated += 1;
                    }
                }
                tracer.emit(
                    t_us,
                    TK::NetLinks {
                        active: live,
                        saturated,
                    },
                );
            }

            // Next event: flow completion, gate opening, or arrival.
            let mut dt = f64::INFINITY;
            for flow in &rs.flows {
                if flow.active && flow.rate > 0.0 {
                    dt = dt.min(flow.remaining / flow.rate);
                } else if !flow.active {
                    dt = dt.min(jobs[flow.job_idx].gate - now);
                }
            }
            if next_arrival < arrivals.len() {
                dt = dt.min(workloads[arrivals[next_arrival]].submit - now);
            }
            if next_kill < kill_times.len() {
                dt = dt.min(kill_times[next_kill].0 - now);
            }
            if next_degrade < degrades.len() {
                dt = dt.min(degrades[next_degrade].t - now);
            }
            assert!(
                dt.is_finite() && dt >= -EPS,
                "simulator stuck at t={now} (dt={dt})"
            );
            let dt = dt.max(0.0);
            now += dt;

            // Drain and retire flows.
            let mut finished_jobs: Vec<usize> = Vec::new();
            let mut f = 0;
            while f < rs.flows.len() {
                if rs.flows[f].active && rs.flows[f].rate > 0.0 {
                    if let Some(bytes) = link_bytes.as_deref_mut() {
                        let moved = rs.flows[f].rate * dt;
                        for l in rs.arena.slice(rs.flows[f].route) {
                            bytes[l.0] += moved;
                        }
                    }
                    rs.flows[f].remaining -= rs.flows[f].rate * dt;
                    if rs.flows[f].remaining <= EPS {
                        let j = rs.flows[f].job_idx;
                        jobs[j].flows_left -= 1;
                        if jobs[j].flows_left == 0 {
                            finished_jobs.push(j);
                        }
                        rs.remove_flow(f);
                        continue;
                    }
                }
                f += 1;
            }
            for j in finished_jobs {
                jobs[j].step_idx += 1;
                start_step(self, &mut jobs, &mut rs, &workloads, j, now);
            }
        }

        let mut results: Vec<JobResult> = jobs
            .into_iter()
            .map(|j| {
                assert!(j.done, "job {} never completed", j.workload_idx);
                let w = &workloads[j.workload_idx];
                JobResult {
                    id: w.id,
                    submit: w.submit,
                    end: j.killed_at.unwrap_or_else(|| {
                        j.samples
                            .last()
                            .map(|s| s.start + s.duration)
                            .unwrap_or(w.submit)
                    }),
                    killed: j.killed_at.is_some(),
                    iterations: j.samples,
                }
            })
            .collect();
        results.sort_by_key(|r| {
            workloads
                .iter()
                .position(|w| w.id == r.id)
                .unwrap_or(usize::MAX)
        });
        results
    }

    /// Convenience: time one collective run over `nodes`, alone on the
    /// network.
    pub fn solo_time(&self, nodes: &[NodeId], spec: CollectiveSpec) -> f64 {
        let res = self.run(vec![Workload {
            id: 0,
            nodes: nodes.to_vec(),
            spec,
            submit: 0.0,
            iterations: 1,
        }]);
        res[0].end
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }
}
