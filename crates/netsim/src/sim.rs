//! The fluid flow simulator: routing, max–min rate allocation, event loop.

use commsched_collectives::{CollectiveSpec, Pattern, Step};
use commsched_topology::{NodeId, SwitchId, Tree};
use serde::{Deserialize, Serialize};

/// Link capacities and protocol overheads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Capacity of a node↔leaf link, bytes/second per direction.
    pub node_bandwidth: f64,
    /// Capacity multiplier for a switch↔parent link at level `l` (the
    /// leaf's uplink is level 1): `node_bandwidth * trunk_factor^l`.
    /// `1.0` models the paper's department cluster (1G everywhere, heavy
    /// contention on uplinks); `2.0` models a fat-tree that doubles upward.
    pub trunk_factor: f64,
    /// Fixed per-step synchronization overhead in seconds (MPI call and
    /// switch latency); keeps tiny-message steps from completing in 0 time.
    pub step_overhead: f64,
    /// Aggregate switching fabric of each *leaf* switch, as a multiple of
    /// `node_bandwidth`: every flow entering or leaving a leaf consumes a
    /// share of its backplane. `None` models a non-blocking switch (the
    /// default). Cheap department-cluster switches are oversubscribed —
    /// the effect behind the paper's same-leaf contention term (Eq. 2).
    #[serde(default)]
    pub backplane_factor: Option<f64>,
}

impl NetConfig {
    /// 1 Gbit/s Ethernet everywhere — the IIT Kanpur department cluster of
    /// the Figure 1 study.
    pub fn gigabit_ethernet() -> Self {
        NetConfig {
            node_bandwidth: 125.0e6, // 1 Gb/s in bytes/s
            trunk_factor: 1.0,
            step_overhead: 100.0e-6,
            backplane_factor: None,
        }
    }

    /// A department cluster with oversubscribed leaf switches: 1 Gb/s
    /// links but only 6 line-rates of fabric per leaf. Same-leaf traffic
    /// now contends, as Eq. 2 assumes.
    pub fn cheap_ethernet() -> Self {
        NetConfig {
            backplane_factor: Some(6.0),
            ..Self::gigabit_ethernet()
        }
    }

    /// A fat-tree whose aggregate uplink capacity doubles per level, the
    /// topology of Figure 2.
    pub fn fat_tree() -> Self {
        NetConfig {
            node_bandwidth: 125.0e6,
            trunk_factor: 2.0,
            step_overhead: 100.0e-6,
            backplane_factor: None,
        }
    }
}

/// One collective job to simulate: a node set, the collective it runs, when
/// it is submitted, and how many back-to-back iterations it performs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Caller-chosen id, reported back in [`JobResult`].
    pub id: u64,
    /// Nodes the job occupies; rank `r` runs on `nodes[r]` after sorting.
    pub nodes: Vec<NodeId>,
    /// The collective and its message size.
    pub spec: CollectiveSpec,
    /// Submission time in seconds.
    pub submit: f64,
    /// Back-to-back iterations of the collective (≥ 1).
    pub iterations: usize,
}

/// Timing of one iteration of a job's collective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationSample {
    /// Wall-clock second the iteration started.
    pub start: f64,
    /// Seconds the iteration took.
    pub duration: f64,
}

/// Completed-job report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Id from the [`Workload`].
    pub id: u64,
    /// Submission time (the job starts immediately; netsim has no queue).
    pub submit: f64,
    /// Completion time of the last iteration.
    pub end: f64,
    /// Per-iteration timings — the Figure 1 series.
    pub iterations: Vec<IterationSample>,
}

/// Where the bytes went: per-class link accounting for one simulation run.
///
/// Produced by [`FlowSim::run_with_stats`]; useful for spotting which part
/// of the fabric bottlenecked a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Bytes through node↔leaf links (both directions).
    pub node_bytes: f64,
    /// Bytes through switch↔parent trunks, indexed by switch level − 1
    /// (entry 0 = leaf uplinks).
    pub trunk_bytes_per_level: Vec<f64>,
    /// Bytes through leaf backplanes (0 when backplanes are disabled).
    pub backplane_bytes: f64,
    /// Peak time-average utilization over all links:
    /// `bytes / (capacity × span)` of the busiest link.
    pub busiest_utilization: f64,
    /// Wall-clock span of the run in seconds.
    pub span: f64,
}

/// Directed-link id space: `2*n`/`2*n+1` are node `n`'s up/down links;
/// switch `s`'s up/down links to its parent follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LinkId(usize);

#[derive(Debug, Clone)]
struct Flow {
    route: Vec<LinkId>,
    remaining: f64,
    rate: f64,
    job_idx: usize,
}

#[derive(Debug)]
struct ActiveJob {
    workload_idx: usize,
    steps: Vec<Step>,
    /// Sorted node list; rank r -> ranked[r].
    ranked: Vec<NodeId>,
    step_idx: usize,
    iter_idx: usize,
    iter_start: f64,
    /// When the current step's overhead gate opens (flows start draining).
    gate: f64,
    flows_left: usize,
    samples: Vec<IterationSample>,
    done: bool,
}

/// Fluid-flow simulator over a [`Tree`].
///
/// Construct once per topology; [`FlowSim::run`] is `&self` and can be
/// called repeatedly with different workloads.
pub struct FlowSim<'t> {
    tree: &'t Tree,
    cfg: NetConfig,
    /// Capacity per directed link.
    capacity: Vec<f64>,
    /// Switch-up-link base index.
    switch_base: usize,
    /// Leaf-backplane link base index (`usize::MAX` when disabled).
    backplane_base: usize,
}

impl<'t> FlowSim<'t> {
    /// Build the link table for `tree` under `cfg`.
    pub fn new(tree: &'t Tree, cfg: NetConfig) -> Self {
        assert!(cfg.node_bandwidth > 0.0 && cfg.trunk_factor > 0.0);
        let switch_base = 2 * tree.num_nodes();
        let mut capacity = vec![cfg.node_bandwidth; switch_base + 2 * tree.num_switches()];
        for s in 0..tree.num_switches() {
            let level = tree.switch(SwitchId(s)).level;
            let cap = cfg.node_bandwidth * cfg.trunk_factor.powi(level as i32);
            capacity[switch_base + 2 * s] = cap;
            capacity[switch_base + 2 * s + 1] = cap;
        }
        let backplane_base = if let Some(factor) = cfg.backplane_factor {
            assert!(factor > 0.0, "backplane factor must be positive");
            let base = capacity.len();
            capacity.extend(std::iter::repeat_n(
                cfg.node_bandwidth * factor,
                tree.num_leaves(),
            ));
            base
        } else {
            usize::MAX
        };
        FlowSim {
            tree,
            cfg,
            capacity,
            switch_base,
            backplane_base,
        }
    }

    #[inline]
    fn node_up(&self, n: NodeId) -> LinkId {
        LinkId(2 * n.0)
    }

    #[inline]
    fn node_down(&self, n: NodeId) -> LinkId {
        LinkId(2 * n.0 + 1)
    }

    #[inline]
    fn switch_up(&self, s: SwitchId) -> LinkId {
        LinkId(self.switch_base + 2 * s.0)
    }

    #[inline]
    fn switch_down(&self, s: SwitchId) -> LinkId {
        LinkId(self.switch_base + 2 * s.0 + 1)
    }

    /// Route from `src` to `dst`: up-links to the LCA, then down-links.
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        let mut links = vec![self.node_up(src)];
        let lca = self.tree.lca(src, dst);
        let mut s = self.tree.leaf_of(src);
        while s != lca {
            links.push(self.switch_up(s));
            s = self.tree.switch(s).parent.expect("LCA above leaf");
        }
        let mut down = Vec::new();
        let mut d = self.tree.leaf_of(dst);
        while d != lca {
            down.push(self.switch_down(d));
            d = self.tree.switch(d).parent.expect("LCA above leaf");
        }
        links.extend(down.into_iter().rev());
        links.push(self.node_down(dst));
        if self.backplane_base != usize::MAX {
            let a = self.tree.leaf_ordinal_of(src);
            let b = self.tree.leaf_ordinal_of(dst);
            links.push(LinkId(self.backplane_base + a));
            if b != a {
                links.push(LinkId(self.backplane_base + b));
            }
        }
        links
    }

    /// Flows for one collective step over ranked nodes. RD/RHVD/ring/stencil
    /// pairs exchange in both directions; binomial sends one way (lower rank
    /// holds the data in every step of the schedule).
    fn step_flows(
        &self,
        job_idx: usize,
        ranked: &[NodeId],
        step: &Step,
        pattern: Pattern,
    ) -> Vec<Flow> {
        let bidirectional = !matches!(pattern, Pattern::Binomial);
        let mut flows = Vec::with_capacity(step.pairs.len() * 2);
        for &(a, b) in &step.pairs {
            let (na, nb) = (ranked[a], ranked[b]);
            if na == nb {
                continue;
            }
            flows.push(Flow {
                route: self.route(na, nb),
                remaining: step.msize as f64,
                rate: 0.0,
                job_idx,
            });
            if bidirectional {
                flows.push(Flow {
                    route: self.route(nb, na),
                    remaining: step.msize as f64,
                    rate: 0.0,
                    job_idx,
                });
            }
        }
        flows
    }

    /// Max–min fair rates by progressive filling. `active[f]` gates which
    /// flows currently drain (a step still inside its overhead gate has
    /// inactive flows).
    fn assign_rates(&self, flows: &mut [Flow], active: &[bool]) {
        let nlinks = self.capacity.len();
        let mut residual = self.capacity.clone();
        let mut load = vec![0u32; nlinks];
        for (f, flow) in flows.iter().enumerate() {
            if active[f] {
                for l in &flow.route {
                    load[l.0] += 1;
                }
            }
        }
        let mut frozen: Vec<bool> = flows.iter().enumerate().map(|(f, _)| !active[f]).collect();
        for (f, flow) in flows.iter_mut().enumerate() {
            if !active[f] {
                flow.rate = 0.0;
            }
        }
        let mut left = active.iter().filter(|a| **a).count();
        while left > 0 {
            // Bottleneck link: minimal residual share among loaded links.
            let mut share = f64::INFINITY;
            for l in 0..nlinks {
                if load[l] > 0 {
                    let s = residual[l] / f64::from(load[l]);
                    if s < share {
                        share = s;
                    }
                }
            }
            debug_assert!(share.is_finite());
            // Freeze every unfrozen flow that crosses a bottleneck link.
            let mut froze_any = false;
            for f in 0..flows.len() {
                if frozen[f] {
                    continue;
                }
                let bottlenecked = flows[f].route.iter().any(|l| {
                    load[l.0] > 0 && residual[l.0] / f64::from(load[l.0]) <= share * (1.0 + 1e-12)
                });
                if bottlenecked {
                    flows[f].rate = share;
                    frozen[f] = true;
                    froze_any = true;
                    left -= 1;
                    for l in &flows[f].route {
                        residual[l.0] = (residual[l.0] - share).max(0.0);
                        load[l.0] -= 1;
                    }
                }
            }
            debug_assert!(froze_any, "progressive filling made no progress");
            if !froze_any {
                break;
            }
        }
    }

    /// Simulate the workloads to completion and report per-job results.
    ///
    /// Jobs start at their submit times (there is no queue here — queueing
    /// is `commsched-slurmsim`'s business) and run their iterations back to
    /// back. Completed jobs are reported in workload order.
    pub fn run(&self, workloads: Vec<Workload>) -> Vec<JobResult> {
        self.run_impl(workloads, None)
    }

    /// Like [`FlowSim::run`], additionally accounting bytes per link class.
    pub fn run_with_stats(&self, workloads: Vec<Workload>) -> (Vec<JobResult>, LinkStats) {
        let mut bytes = vec![0.0f64; self.capacity.len()];
        let results = self.run_impl(workloads, Some(&mut bytes));
        let span = results.iter().map(|r| r.end).fold(0.0f64, f64::max)
            - results
                .iter()
                .map(|r| r.submit)
                .fold(f64::INFINITY, f64::min)
                .min(0.0);
        let span = span.max(1e-12);

        let mut stats = LinkStats {
            node_bytes: 0.0,
            trunk_bytes_per_level: vec![0.0; self.tree.height() as usize],
            backplane_bytes: 0.0,
            busiest_utilization: 0.0,
            span,
        };
        for (l, &b) in bytes.iter().enumerate() {
            if l < self.switch_base {
                stats.node_bytes += b;
            } else if self.backplane_base != usize::MAX && l >= self.backplane_base {
                stats.backplane_bytes += b;
            } else {
                let sw = (l - self.switch_base) / 2;
                let level = self.tree.switch(SwitchId(sw)).level as usize;
                if level <= stats.trunk_bytes_per_level.len() {
                    stats.trunk_bytes_per_level[level - 1] += b;
                }
            }
            let u = b / (self.capacity[l] * span);
            if u > stats.busiest_utilization {
                stats.busiest_utilization = u;
            }
        }
        (results, stats)
    }

    fn run_impl(
        &self,
        workloads: Vec<Workload>,
        mut link_bytes: Option<&mut Vec<f64>>,
    ) -> Vec<JobResult> {
        let mut jobs: Vec<ActiveJob> = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| {
                assert!(w.iterations >= 1, "iterations must be >= 1");
                let mut ranked = w.nodes.clone();
                ranked.sort_unstable();
                ranked.dedup();
                ActiveJob {
                    workload_idx: i,
                    steps: w.spec.steps(ranked.len()),
                    ranked,
                    step_idx: 0,
                    iter_idx: 0,
                    iter_start: w.submit,
                    gate: 0.0,
                    flows_left: 0,
                    samples: Vec::new(),
                    done: false,
                }
            })
            .collect();

        // Arrival order.
        let mut arrivals: Vec<usize> = (0..jobs.len()).collect();
        arrivals.sort_by(|&a, &b| workloads[a].submit.total_cmp(&workloads[b].submit));
        let mut next_arrival = 0usize;

        let mut flows: Vec<Flow> = Vec::new();
        let mut now = 0.0f64;
        const EPS: f64 = 1e-9;

        // Start a job's current step: push its flows, set the overhead gate.
        fn start_step(
            sim: &FlowSim<'_>,
            jobs: &mut [ActiveJob],
            flows: &mut Vec<Flow>,
            workloads: &[Workload],
            j: usize,
            now: f64,
        ) {
            loop {
                let job = &mut jobs[j];
                if job.done {
                    return;
                }
                if job.step_idx >= job.steps.len() {
                    // Iteration finished.
                    job.samples.push(IterationSample {
                        start: job.iter_start,
                        duration: now - job.iter_start,
                    });
                    job.iter_idx += 1;
                    if job.iter_idx >= workloads[job.workload_idx].iterations {
                        job.done = true;
                        return;
                    }
                    job.step_idx = 0;
                    job.iter_start = now;
                }
                let step = &job.steps[job.step_idx];
                let pattern = workloads[job.workload_idx].spec.pattern;
                let new_flows = sim.step_flows(j, &job.ranked, step, pattern);
                job.gate = now + sim.cfg.step_overhead;
                job.flows_left = new_flows.len();
                if new_flows.is_empty() {
                    // Degenerate step (no pairs, e.g. single-node job):
                    // consume the overhead and move on immediately. The
                    // overhead gate is modelled as instantaneous here to
                    // keep the loop simple; empty steps are rare.
                    job.step_idx += 1;
                    continue;
                }
                flows.extend(new_flows);
                return;
            }
        }

        loop {
            // Admit arrivals that are due.
            while next_arrival < arrivals.len()
                && workloads[arrivals[next_arrival]].submit <= now + EPS
            {
                let j = arrivals[next_arrival];
                jobs[j].iter_start = workloads[j].submit.max(now);
                if jobs[j].steps.is_empty() || jobs[j].ranked.len() <= 1 {
                    // Nothing to communicate: all iterations are instant.
                    for _ in 0..workloads[j].iterations {
                        jobs[j].samples.push(IterationSample {
                            start: now,
                            duration: 0.0,
                        });
                    }
                    jobs[j].done = true;
                } else {
                    start_step(self, &mut jobs, &mut flows, &workloads, j, now);
                }
                next_arrival += 1;
            }

            if flows.is_empty() && next_arrival >= arrivals.len() {
                break;
            }

            // Rates for flows whose step gate has opened.
            let active: Vec<bool> = flows
                .iter()
                .map(|f| now + EPS >= jobs[f.job_idx].gate)
                .collect();
            self.assign_rates(&mut flows, &active);

            // Next event: flow completion, gate opening, or arrival.
            let mut dt = f64::INFINITY;
            for (f, flow) in flows.iter().enumerate() {
                if active[f] && flow.rate > 0.0 {
                    dt = dt.min(flow.remaining / flow.rate);
                } else if !active[f] {
                    dt = dt.min(jobs[flow.job_idx].gate - now);
                }
            }
            if next_arrival < arrivals.len() {
                dt = dt.min(workloads[arrivals[next_arrival]].submit - now);
            }
            assert!(
                dt.is_finite() && dt >= -EPS,
                "simulator stuck at t={now} (dt={dt})"
            );
            let dt = dt.max(0.0);
            now += dt;

            // Drain and retire flows.
            let mut finished_jobs: Vec<usize> = Vec::new();
            let mut f = 0;
            while f < flows.len() {
                let is_active = now + EPS >= jobs[flows[f].job_idx].gate;
                if is_active && flows[f].rate > 0.0 {
                    if let Some(bytes) = link_bytes.as_deref_mut() {
                        let moved = flows[f].rate * dt;
                        for l in &flows[f].route {
                            bytes[l.0] += moved;
                        }
                    }
                    flows[f].remaining -= flows[f].rate * dt;
                    if flows[f].remaining <= EPS {
                        let j = flows[f].job_idx;
                        jobs[j].flows_left -= 1;
                        if jobs[j].flows_left == 0 {
                            finished_jobs.push(j);
                        }
                        flows.swap_remove(f);
                        continue;
                    }
                }
                f += 1;
            }
            for j in finished_jobs {
                jobs[j].step_idx += 1;
                start_step(self, &mut jobs, &mut flows, &workloads, j, now);
            }
        }

        let mut results: Vec<JobResult> = jobs
            .into_iter()
            .map(|j| {
                assert!(j.done, "job {} never completed", j.workload_idx);
                let w = &workloads[j.workload_idx];
                JobResult {
                    id: w.id,
                    submit: w.submit,
                    end: j
                        .samples
                        .last()
                        .map(|s| s.start + s.duration)
                        .unwrap_or(w.submit),
                    iterations: j.samples,
                }
            })
            .collect();
        results.sort_by_key(|r| {
            workloads
                .iter()
                .position(|w| w.id == r.id)
                .unwrap_or(usize::MAX)
        });
        results
    }

    /// Convenience: time one collective run over `nodes`, alone on the
    /// network.
    pub fn solo_time(&self, nodes: &[NodeId], spec: CollectiveSpec) -> f64 {
        let res = self.run(vec![Workload {
            id: 0,
            nodes: nodes.to_vec(),
            spec,
            submit: 0.0,
            iterations: 1,
        }]);
        res[0].end
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }
}
