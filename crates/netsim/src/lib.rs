//! Flow-level network simulation on tree topologies.
//!
//! The paper's motivation study (Figure 1) runs two real `MPI_Allgather`
//! jobs on a 50-node Ethernet cluster and watches one job's iteration time
//! spike whenever the other is active on shared switches. We cannot ship
//! that cluster, so this crate substitutes the standard flow-level
//! abstraction of it:
//!
//! * every tree edge (node↔leaf, switch↔parent) is a pair of directed links
//!   with fixed capacity;
//! * each step of a collective schedule becomes a set of flows routed up to
//!   the lowest common ancestor and back down;
//! * concurrent flows share links **max–min fairly** (progressive filling),
//!   the usual fluid model of per-flow TCP fairness on Ethernet;
//! * a step completes when its slowest flow drains; jobs advance step by
//!   step, possibly for many iterations.
//!
//! The observable — iteration time of a job versus wall-clock time, under
//! interference — reproduces the spike-when-overlapping shape of Figure 1
//! and gives the correlation target for the paper's contention factor
//! (§5.3 reports r ≈ 0.83 between Eqs. 2–3 and measured times).
//!
//! # Example
//!
//! ```
//! use commsched_collectives::{CollectiveSpec, Pattern};
//! use commsched_netsim::{FlowSim, NetConfig, Workload};
//! use commsched_topology::{NodeId, Tree};
//!
//! let tree = Tree::regular_two_level(2, 4);
//! let sim = FlowSim::new(&tree, NetConfig::gigabit_ethernet());
//! let alone = sim.run(vec![Workload {
//!     id: 1,
//!     nodes: (0..4).map(NodeId).collect(),
//!     spec: CollectiveSpec::new(Pattern::Rhvd, 1 << 20),
//!     submit: 0.0,
//!     iterations: 1,
//! }]);
//! assert_eq!(alone.len(), 1);
//! assert!(alone[0].end > 0.0);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
mod sim;

pub use sim::{
    FlowSim, IterationSample, JobResult, KillEvent, LinkEvent, LinkStats, NetConfig, SolverKind,
    Workload,
};

#[cfg(test)]
mod tests;
