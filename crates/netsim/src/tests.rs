use crate::{FlowSim, NetConfig, SolverKind, Workload};
use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_topology::{NodeId, Tree};

/// 1 MB/s links and no per-step overhead: times come out in round numbers.
fn unit_config() -> NetConfig {
    NetConfig {
        node_bandwidth: 1.0e6,
        trunk_factor: 1.0,
        step_overhead: 0.0,
        backplane_factor: None,
        rails: 1,
    }
}

fn wl(id: u64, nodes: &[usize], spec: CollectiveSpec, submit: f64, iters: usize) -> Workload {
    Workload {
        id,
        nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
        spec,
        submit,
        iterations: iters,
    }
}

#[test]
fn single_pair_exchange_timing() {
    // Two nodes on one leaf, recursive doubling, 1 MB at 1 MB/s per
    // direction: the full-duplex exchange takes exactly 1 second.
    let tree = Tree::regular_two_level(2, 4);
    let sim = FlowSim::new(&tree, unit_config());
    let t = sim.solo_time(
        &[NodeId(0), NodeId(1)],
        CollectiveSpec::new(Pattern::Rd, 1_000_000),
    );
    assert!((t - 1.0).abs() < 1e-6, "t = {t}");
}

#[test]
fn binomial_is_one_directional() {
    // A 2-rank binomial send moves msize one way only — same 1 second
    // (rates don't halve because the reverse direction is idle).
    let tree = Tree::regular_two_level(2, 4);
    let sim = FlowSim::new(&tree, unit_config());
    let t = sim.solo_time(
        &[NodeId(0), NodeId(1)],
        CollectiveSpec::new(Pattern::Binomial, 1_000_000),
    );
    assert!((t - 1.0).abs() < 1e-6, "t = {t}");
}

#[test]
fn shared_uplink_halves_rates() {
    // Two cross-switch sends sharing the s0->root->s1 trunk: each gets half
    // the trunk, so both finish in 2 seconds instead of 1.
    let tree = Tree::regular_two_level(2, 4);
    let sim = FlowSim::new(&tree, unit_config());
    let spec = CollectiveSpec::new(Pattern::Binomial, 1_000_000);
    let res = sim.run(vec![
        wl(1, &[0, 4], spec, 0.0, 1),
        wl(2, &[1, 5], spec, 0.0, 1),
    ]);
    assert!((res[0].end - 2.0).abs() < 1e-6, "end = {}", res[0].end);
    assert!((res[1].end - 2.0).abs() < 1e-6, "end = {}", res[1].end);

    // Alone, the same send takes 1 second.
    let t = sim.solo_time(&[NodeId(0), NodeId(4)], spec);
    assert!((t - 1.0).abs() < 1e-6, "t = {t}");
}

#[test]
fn disjoint_leaves_do_not_interfere() {
    // Intra-leaf jobs on different leaves never share a link, so running
    // together costs the same as running alone.
    let tree = Tree::regular_two_level(2, 4);
    let sim = FlowSim::new(&tree, unit_config());
    let spec = CollectiveSpec::new(Pattern::Rd, 500_000);
    let alone = sim.solo_time(&[NodeId(0), NodeId(1)], spec);
    let res = sim.run(vec![
        wl(1, &[0, 1], spec, 0.0, 1),
        wl(2, &[4, 5], spec, 0.0, 1),
    ]);
    assert!((res[0].end - alone).abs() < 1e-6);
    assert!((res[1].end - alone).abs() < 1e-6);
}

#[test]
fn fat_trunk_removes_uplink_bottleneck() {
    // With trunk_factor 2 the two cross-switch sends of
    // `shared_uplink_halves_rates` no longer contend on the trunk.
    let tree = Tree::regular_two_level(2, 4);
    let mut cfg = unit_config();
    cfg.trunk_factor = 2.0;
    let sim = FlowSim::new(&tree, cfg);
    let spec = CollectiveSpec::new(Pattern::Binomial, 1_000_000);
    let res = sim.run(vec![
        wl(1, &[0, 4], spec, 0.0, 1),
        wl(2, &[1, 5], spec, 0.0, 1),
    ]);
    // Bottleneck is now each node's own 1 MB/s link.
    assert!((res[0].end - 1.0).abs() < 1e-6, "end = {}", res[0].end);
}

#[test]
fn step_overhead_accumulates() {
    let tree = Tree::regular_two_level(2, 4);
    let mut cfg = unit_config();
    cfg.step_overhead = 0.5;
    let sim = FlowSim::new(&tree, cfg);
    // 4-rank RD = 2 steps; each step pays the 0.5 s gate.
    let t = sim.solo_time(
        &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        CollectiveSpec::new(Pattern::Rd, 1_000_000),
    );
    assert!((t - 3.0).abs() < 1e-6, "t = {t}"); // 2 * (0.5 + 1.0)
}

#[test]
fn iteration_samples_cover_run() {
    let tree = Tree::regular_two_level(2, 4);
    let sim = FlowSim::new(&tree, unit_config());
    let spec = CollectiveSpec::new(Pattern::Rd, 100_000);
    let res = sim.run(vec![wl(1, &[0, 1], spec, 3.0, 5)]);
    let r = &res[0];
    assert_eq!(r.iterations.len(), 5);
    assert_eq!(r.submit, 3.0);
    assert!((r.iterations[0].start - 3.0).abs() < 1e-9);
    // Back-to-back iterations: each starts where the previous ended.
    for w in r.iterations.windows(2) {
        assert!((w[1].start - (w[0].start + w[0].duration)).abs() < 1e-6);
    }
    assert!((r.end - (3.0 + 5.0 * 0.1)).abs() < 1e-6, "end = {}", r.end);
}

#[test]
fn figure1_interference_shape() {
    // The headline motivation experiment: J1 iterates an allgather on 8
    // nodes (4 + 4 across two leaves); J2 (12 nodes, 6 + 6 on the same
    // leaves) arrives later. J1's iteration time must spike while J2 is
    // active and recover afterwards.
    let tree = Tree::irregular_two_level(&[13, 13, 12, 12]);
    let sim = FlowSim::new(&tree, NetConfig::gigabit_ethernet());
    let j1_nodes: Vec<usize> = (0..4).chain(13..17).collect();
    let j2_nodes: Vec<usize> = (4..10).chain(17..23).collect();
    // 1 MB per rank gathered over 8 ranks = an 8 MB vector.
    let spec = CollectiveSpec::new(Pattern::Rhvd, 8 << 20);

    let res = sim.run(vec![
        wl(1, &j1_nodes, spec, 0.0, 120),
        wl(2, &j2_nodes, spec, 1.0, 40),
    ]);
    let j1 = &res[0];
    let j2 = &res[1];
    let quiet: Vec<f64> = j1
        .iterations
        .iter()
        .filter(|s| s.start + s.duration < j2.submit || s.start > j2.end)
        .map(|s| s.duration)
        .collect();
    let busy: Vec<f64> = j1
        .iterations
        .iter()
        .filter(|s| s.start < j2.end && s.start + s.duration > j2.submit)
        .map(|s| s.duration)
        .collect();
    assert!(!quiet.is_empty() && !busy.is_empty());
    let quiet_avg = quiet.iter().sum::<f64>() / quiet.len() as f64;
    let busy_max = busy.iter().cloned().fold(0.0, f64::max);
    assert!(
        busy_max > 1.2 * quiet_avg,
        "no interference spike: quiet avg {quiet_avg}, busy max {busy_max}"
    );
}

#[test]
fn backplane_limits_intra_leaf_aggregate() {
    // 4 concurrent intra-leaf exchanges = 8 flows. Non-blocking: each flow
    // runs at line rate (1 s). With a 4x backplane the 8 flows share
    // 4 MB/s of fabric -> 0.5 MB/s each -> 2 s.
    let mut cfg = unit_config();
    let tree = Tree::regular_two_level(2, 8);
    let spec = CollectiveSpec::new(Pattern::Rd, 1_000_000);
    let jobs = |_: ()| {
        (0..4)
            .map(|k| wl(k as u64 + 1, &[2 * k, 2 * k + 1], spec, 0.0, 1))
            .collect::<Vec<_>>()
    };

    let open = FlowSim::new(&tree, cfg).run(jobs(()));
    assert!((open[0].end - 1.0).abs() < 1e-6, "end = {}", open[0].end);

    cfg.backplane_factor = Some(4.0);
    let limited = FlowSim::new(&tree, cfg).run(jobs(()));
    assert!(
        (limited[0].end - 2.0).abs() < 1e-6,
        "end = {}",
        limited[0].end
    );
}

#[test]
fn backplane_charges_cross_leaf_flows_on_both_leaves() {
    // One cross-leaf send with an ample backplane: unchanged timing.
    let mut cfg = unit_config();
    cfg.backplane_factor = Some(16.0);
    let tree = Tree::regular_two_level(2, 8);
    let sim = FlowSim::new(&tree, cfg);
    let t = sim.solo_time(
        &[NodeId(0), NodeId(8)],
        CollectiveSpec::new(Pattern::Binomial, 1_000_000),
    );
    assert!((t - 1.0).abs() < 1e-6, "t = {t}");

    // A starved backplane (0.5x) becomes the bottleneck: 2 s.
    let mut cfg = unit_config();
    cfg.backplane_factor = Some(0.5);
    let sim = FlowSim::new(&tree, cfg);
    let t = sim.solo_time(
        &[NodeId(0), NodeId(8)],
        CollectiveSpec::new(Pattern::Binomial, 1_000_000),
    );
    assert!((t - 2.0).abs() < 1e-6, "t = {t}");
}

#[test]
fn cheap_ethernet_preset_contends_same_leaf() {
    // Under the oversubscribed preset, same-leaf neighbours slow each
    // other down — the premise of the paper's Eq. 2.
    let tree = Tree::regular_two_level(2, 13);
    let spec = CollectiveSpec::new(Pattern::Rhvd, 8 << 20);
    let alone = FlowSim::new(&tree, NetConfig::cheap_ethernet())
        .solo_time(&(0..8).map(NodeId).collect::<Vec<_>>(), spec);
    let crowded = {
        let sim = FlowSim::new(&tree, NetConfig::cheap_ethernet());
        let res = sim.run(vec![
            wl(1, &(0..8).collect::<Vec<_>>(), spec, 0.0, 1),
            wl(2, &(8..13).collect::<Vec<_>>(), spec, 0.0, 4),
        ]);
        res[0].end
    };
    assert!(
        crowded > alone * 1.05,
        "no same-leaf contention: alone {alone}, crowded {crowded}"
    );
}

#[test]
fn single_node_job_is_instant() {
    let tree = Tree::regular_two_level(2, 4);
    let sim = FlowSim::new(&tree, unit_config());
    let res = sim.run(vec![wl(
        1,
        &[0],
        CollectiveSpec::new(Pattern::Rd, 1 << 20),
        2.0,
        3,
    )]);
    assert_eq!(res[0].end, 2.0);
    assert_eq!(res[0].iterations.len(), 3);
}

#[test]
fn deterministic_across_runs() {
    let tree = Tree::regular_two_level(4, 8);
    let sim = FlowSim::new(&tree, NetConfig::gigabit_ethernet());
    let mk = || {
        vec![
            wl(
                1,
                &[0, 1, 8, 9],
                CollectiveSpec::new(Pattern::Rhvd, 1 << 18),
                0.0,
                4,
            ),
            wl(
                2,
                &[2, 3, 10, 11],
                CollectiveSpec::new(Pattern::Rd, 1 << 19),
                0.5,
                3,
            ),
            wl(
                3,
                &[16, 17, 24, 25],
                CollectiveSpec::new(Pattern::Binomial, 1 << 20),
                1.0,
                2,
            ),
        ]
    };
    let a = sim.run(mk());
    let b = sim.run(mk());
    assert_eq!(a, b);
}

#[test]
fn larger_messages_take_proportionally_longer() {
    let tree = Tree::regular_two_level(2, 4);
    let sim = FlowSim::new(&tree, unit_config());
    let nodes = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
    let t1 = sim.solo_time(&nodes, CollectiveSpec::new(Pattern::Rd, 250_000));
    let t2 = sim.solo_time(&nodes, CollectiveSpec::new(Pattern::Rd, 500_000));
    assert!((t2 / t1 - 2.0).abs() < 1e-6, "t1={t1} t2={t2}");
}

#[test]
fn three_level_routing() {
    // Cross-group flows traverse the level-2 trunk; three jobs sharing it
    // split the bandwidth three ways.
    let tree = Tree::regular_three_level(2, 2, 4);
    let sim = FlowSim::new(&tree, unit_config());
    let spec = CollectiveSpec::new(Pattern::Binomial, 900_000);
    // Group 0 nodes: 0-7, group 1 nodes: 8-15. All three flows cross g0->g1.
    let res = sim.run(vec![
        wl(1, &[0, 8], spec, 0.0, 1),
        wl(2, &[1, 9], spec, 0.0, 1),
        wl(3, &[4, 12], spec, 0.0, 1),
    ]);
    for r in &res {
        assert!((r.end - 2.7).abs() < 1e-6, "end = {}", r.end);
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Conservation: a solo collective can never beat the time needed
        /// to push its largest step through one node link, and never exceed
        /// serialized total bytes over one link (plus overheads).
        #[test]
        fn solo_time_within_physical_bounds(
            logp in 1u32..5,
            msize in 10_000u64..2_000_000,
            pat in prop::sample::select(Pattern::PAPER.to_vec()),
        ) {
            let p = 1usize << logp;
            let tree = Tree::regular_two_level(4, 8);
            let cfg = unit_config();
            let sim = FlowSim::new(&tree, cfg);
            let nodes: Vec<NodeId> = (0..p).map(NodeId).collect();
            let spec = CollectiveSpec::new(pat, msize);
            let t = sim.solo_time(&nodes, spec);
            let steps = spec.steps(p);
            let lower: f64 = steps
                .iter()
                .filter(|s| !s.pairs.is_empty())
                .map(|s| s.msize as f64 / cfg.node_bandwidth)
                .sum();
            let upper: f64 = steps
                .iter()
                .map(|s| 2.0 * (s.pairs.len() as f64) * s.msize as f64 / cfg.node_bandwidth)
                .sum::<f64>()
                + 1e-6;
            prop_assert!(t >= lower - 1e-6, "t={t} < lower bound {lower}");
            prop_assert!(t <= upper, "t={t} > upper bound {upper}");
        }

        /// Interference monotonicity: adding a competing job never makes
        /// the first job finish earlier.
        #[test]
        fn competition_never_helps(
            seed in 0usize..4,
            msize in 100_000u64..1_000_000,
        ) {
            let tree = Tree::regular_two_level(2, 8);
            let sim = FlowSim::new(&tree, unit_config());
            let spec = CollectiveSpec::new(Pattern::Rhvd, msize);
            let j1: Vec<usize> = vec![0, 1, 8, 9];
            let competitors: Vec<Vec<usize>> = vec![
                vec![2, 3, 10, 11],
                vec![4, 5, 12, 13],
                vec![2, 10],
                vec![6, 7, 14, 15],
            ];
            let alone = sim.run(vec![wl(1, &j1, spec, 0.0, 2)]);
            let both = sim.run(vec![
                wl(1, &j1, spec, 0.0, 2),
                wl(2, &competitors[seed], spec, 0.0, 2),
            ]);
            prop_assert!(both[0].end >= alone[0].end - 1e-9,
                "competition sped the job up: {} < {}", both[0].end, alone[0].end);
        }
    }
}

/// The incremental (dirty-link frontier) solver must be *observationally
/// identical* to the retained naive fixpoint: same per-flow rate vector
/// after every solve, same `JobResult`s, same link statistics — bit for
/// bit, not approximately.
mod solver_equivalence {
    use super::*;
    use proptest::prelude::*;

    fn assert_solvers_agree(tree: &Tree, cfg: NetConfig, workloads: Vec<Workload>) {
        assert_solvers_agree_events(tree, cfg, workloads, &[]);
    }

    /// The same bit-for-bit comparison under a mid-run link-degradation
    /// schedule: every capacity rewrite flows through the incremental
    /// solver's dirty-link frontier, and the result must still match the
    /// retained naive fixpoint exactly.
    fn assert_solvers_agree_events(
        tree: &Tree,
        cfg: NetConfig,
        workloads: Vec<Workload>,
        events: &[crate::LinkEvent],
    ) {
        let fast = FlowSim::new(tree, cfg); // Incremental is the default
        assert_eq!(fast.solver(), SolverKind::Incremental);
        let naive = FlowSim::new(tree, cfg).with_solver(SolverKind::Naive);

        let (res_f, trace_f) = fast.run_tracing_rates_events(workloads.clone(), events);
        let (res_n, trace_n) = naive.run_tracing_rates_events(workloads.clone(), events);
        assert_eq!(trace_f.len(), trace_n.len(), "event counts diverged");
        for (ev, (a, b)) in trace_f.iter().zip(&trace_n).enumerate() {
            assert_eq!(a.len(), b.len(), "flow counts diverged at event {ev}");
            for (f, (ra, rb)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    ra.to_bits(),
                    rb.to_bits(),
                    "rate of flow {f} diverged at event {ev}: {ra} vs {rb}"
                );
            }
        }
        assert_eq!(res_f, res_n, "job results diverged");

        let (sres_f, stats_f) = fast.run_with_stats(workloads.clone());
        let (sres_n, stats_n) = naive.run_with_stats(workloads);
        assert_eq!(sres_f, sres_n);
        assert_eq!(stats_f, stats_n);
    }

    #[test]
    #[ignore = "diagnostic"]
    fn diag_first_divergence() {
        let tree = Tree::regular_two_level(8, 32);
        let n = tree.num_nodes();
        let workloads: Vec<Workload> = (0..4u64)
            .map(|k| {
                let nodes: Vec<NodeId> = (0..32)
                    .map(|i| NodeId(((k as usize) + 4 * i + (i / 8) * 37) % n))
                    .collect();
                Workload {
                    id: k + 1,
                    nodes,
                    spec: CollectiveSpec::new(Pattern::Rhvd, 1 << 19),
                    submit: 0.002 * k as f64,
                    iterations: 6,
                }
            })
            .collect();
        let cfg = NetConfig::gigabit_ethernet();
        let fast = FlowSim::new(&tree, cfg);
        let naive = FlowSim::new(&tree, cfg).with_solver(SolverKind::Naive);
        let (_, tf) = fast.run_tracing_rates(workloads.clone());
        let (_, tn) = naive.run_tracing_rates(workloads);
        assert_eq!(
            tf.len(),
            tn.len(),
            "event counts: {} vs {}",
            tf.len(),
            tn.len()
        );
        for (ev, (a, b)) in tf.iter().zip(&tn).enumerate() {
            assert_eq!(a.len(), b.len(), "flow count at event {ev}");
            for (f, (ra, rb)) in a.iter().zip(b).enumerate() {
                assert!(
                    ra.to_bits() == rb.to_bits(),
                    "event {ev} flow {f}/{}: fast {ra:.17e} ({:#x}) vs naive {rb:.17e} ({:#x}), rel {:.3e}",
                    a.len(),
                    ra.to_bits(),
                    rb.to_bits(),
                    (ra - rb).abs() / rb.abs().max(1e-300)
                );
            }
        }
    }

    #[test]
    fn identical_on_staggered_churn() {
        // Many small jobs arriving and finishing at different times — the
        // scenario the incremental solver accelerates — must produce the
        // exact event-by-event rates of the full fixpoint.
        let tree = Tree::regular_two_level(4, 8);
        let workloads: Vec<Workload> = (0..12)
            .map(|k| {
                let a = (k * 2) % 32;
                let b = (k * 2 + 9) % 32;
                wl(
                    k as u64 + 1,
                    &[a, b],
                    CollectiveSpec::new(Pattern::Rd, 200_000 + 37_000 * k as u64),
                    0.07 * k as f64,
                    3,
                )
            })
            .collect();
        assert_solvers_agree(&tree, NetConfig::gigabit_ethernet(), workloads);
    }

    #[test]
    fn identical_through_arena_compaction() {
        // Enough iterations that retired routes exceed the compaction
        // threshold mid-run: surviving flows' routes are rewritten and the
        // rates must not notice.
        let tree = Tree::regular_two_level(2, 8);
        let long = wl(
            1,
            &(0..16).collect::<Vec<_>>(),
            CollectiveSpec::new(Pattern::Rhvd, 1 << 16),
            0.0,
            60,
        );
        let mut workloads = vec![long];
        for k in 0..6 {
            workloads.push(wl(
                k + 2,
                &[(k as usize) % 16, (k as usize + 5) % 16],
                CollectiveSpec::new(Pattern::Binomial, 1 << 18),
                0.01 * k as f64,
                40,
            ));
        }
        assert_solvers_agree(&tree, NetConfig::cheap_ethernet(), workloads);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random trees, random flow sets, optional oversubscribed leaf
        /// backplanes: the two solvers agree on every rate at every event.
        #[test]
        fn incremental_matches_naive(
            leaves in 2usize..5,
            per_leaf in 2usize..7,
            backplane in prop::option::of(0.5f64..8.0),
            overhead in prop::sample::select(vec![0.0, 100.0e-6, 0.01]),
            jobs in prop::collection::vec(
                (
                    prop::sample::select(Pattern::ALL.to_vec()),
                    prop::collection::vec(0usize..24, 2..6),
                    10_000u64..2_000_000,
                    0.0f64..0.5,
                    1usize..4,
                ),
                1..6,
            ),
        ) {
            let tree = Tree::regular_two_level(leaves, per_leaf);
            let n = tree.num_nodes();
            let cfg = NetConfig {
                node_bandwidth: 1.0e6,
                trunk_factor: 1.0,
                step_overhead: overhead,
                backplane_factor: backplane,
                rails: 1,
            };
            let workloads: Vec<Workload> = jobs
                .into_iter()
                .enumerate()
                .map(|(i, (pat, nodes, msize, submit, iters))| {
                    let nodes: Vec<usize> = nodes.into_iter().map(|x| x % n).collect();
                    wl(i as u64 + 1, &nodes, CollectiveSpec::new(pat, msize), submit, iters)
                })
                .collect();
            assert_solvers_agree(&tree, cfg, workloads);
        }

        /// Mid-run link degradations and repairs flow through the
        /// dirty-link frontier: the incremental solver stays bit-identical
        /// to the naive fixpoint under arbitrary capacity-rewrite
        /// schedules, including out-of-range link ids (ignored), repeated
        /// rewrites of the same link, and multirail blending.
        #[test]
        fn incremental_matches_naive_under_degradation(
            leaves in 2usize..5,
            per_leaf in 2usize..7,
            rails in 1u32..4,
            jobs in prop::collection::vec(
                (
                    prop::sample::select(Pattern::ALL.to_vec()),
                    prop::collection::vec(0usize..24, 2..6),
                    10_000u64..2_000_000,
                    0.0f64..0.5,
                    1usize..4,
                ),
                1..5,
            ),
            events in prop::collection::vec(
                (0.0f64..2.0, 0usize..80, 1u32..=1000),
                1..8,
            ),
        ) {
            let tree = Tree::regular_two_level(leaves, per_leaf);
            let n = tree.num_nodes();
            let cfg = NetConfig {
                node_bandwidth: 1.0e6,
                trunk_factor: 1.0,
                step_overhead: 100.0e-6,
                backplane_factor: None,
                rails,
            };
            let workloads: Vec<Workload> = jobs
                .into_iter()
                .enumerate()
                .map(|(i, (pat, nodes, msize, submit, iters))| {
                    let nodes: Vec<usize> = nodes.into_iter().map(|x| x % n).collect();
                    wl(i as u64 + 1, &nodes, CollectiveSpec::new(pat, msize), submit, iters)
                })
                .collect();
            let events: Vec<crate::LinkEvent> = events
                .into_iter()
                .map(|(t, link, permille)| crate::LinkEvent { t, link, permille })
                .collect();
            assert_solvers_agree_events(&tree, cfg, workloads, &events);
        }

        /// Same property on three-level trees (deeper routes, level-2
        /// trunks).
        #[test]
        fn incremental_matches_naive_three_level(
            trunk in prop::sample::select(vec![1.0f64, 2.0]),
            jobs in prop::collection::vec(
                (
                    prop::sample::select(Pattern::PAPER.to_vec()),
                    prop::collection::vec(0usize..16, 2..5),
                    50_000u64..1_000_000,
                    0.0f64..0.3,
                    1usize..3,
                ),
                1..5,
            ),
        ) {
            let tree = Tree::regular_three_level(2, 2, 4);
            let cfg = NetConfig {
                node_bandwidth: 1.0e6,
                trunk_factor: trunk,
                step_overhead: 100.0e-6,
                backplane_factor: None,
                rails: 1,
            };
            let workloads: Vec<Workload> = jobs
                .into_iter()
                .enumerate()
                .map(|(i, (pat, nodes, msize, submit, iters))| {
                    wl(i as u64 + 1, &nodes, CollectiveSpec::new(pat, msize), submit, iters)
                })
                .collect();
            assert_solvers_agree(&tree, cfg, workloads);
        }
    }
}

mod link_stats {
    use super::*;

    #[test]
    fn accounts_every_byte_once_per_link() {
        // One cross-leaf binomial send of 1 MB: 1 MB through each of the
        // four links on its route (node up, s0 up, s1 down, node down).
        let tree = Tree::regular_two_level(2, 4);
        let sim = FlowSim::new(&tree, unit_config());
        let (res, stats) = sim.run_with_stats(vec![wl(
            1,
            &[0, 4],
            CollectiveSpec::new(Pattern::Binomial, 1_000_000),
            0.0,
            1,
        )]);
        assert!((res[0].end - 1.0).abs() < 1e-6);
        assert!(
            (stats.node_bytes - 2.0e6).abs() < 1.0,
            "{}",
            stats.node_bytes
        );
        assert_eq!(stats.trunk_bytes_per_level.len(), 2);
        assert!((stats.trunk_bytes_per_level[0] - 2.0e6).abs() < 1.0);
        assert_eq!(stats.trunk_bytes_per_level[1], 0.0); // root has no parent
        assert_eq!(stats.backplane_bytes, 0.0);
        // The four route links each ran at full rate the whole second.
        assert!((stats.busiest_utilization - 1.0).abs() < 1e-6);
        assert!((stats.span - 1.0).abs() < 1e-6);
    }

    #[test]
    fn intra_leaf_traffic_never_touches_trunks() {
        let tree = Tree::regular_two_level(2, 4);
        let sim = FlowSim::new(&tree, unit_config());
        let (_, stats) = sim.run_with_stats(vec![wl(
            1,
            &[0, 1, 2, 3],
            CollectiveSpec::new(Pattern::Rd, 500_000),
            0.0,
            2,
        )]);
        assert!(stats.node_bytes > 0.0);
        assert!(stats.trunk_bytes_per_level.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn backplane_bytes_counted_when_enabled() {
        let mut cfg = unit_config();
        cfg.backplane_factor = Some(4.0);
        let tree = Tree::regular_two_level(2, 4);
        let sim = FlowSim::new(&tree, cfg);
        let (_, stats) = sim.run_with_stats(vec![wl(
            1,
            &[0, 1],
            CollectiveSpec::new(Pattern::Rd, 1_000_000),
            0.0,
            1,
        )]);
        // The pair's two directed flows each cross leaf 0's backplane once.
        assert!((stats.backplane_bytes - 2.0e6).abs() < 1.0);
    }

    #[test]
    fn stats_match_plain_run() {
        let tree = Tree::regular_two_level(2, 8);
        let sim = FlowSim::new(&tree, NetConfig::gigabit_ethernet());
        let mk = || {
            vec![
                wl(
                    1,
                    &[0, 1, 8, 9],
                    CollectiveSpec::new(Pattern::Rhvd, 1 << 20),
                    0.0,
                    3,
                ),
                wl(
                    2,
                    &[2, 10],
                    CollectiveSpec::new(Pattern::Rd, 1 << 19),
                    0.5,
                    2,
                ),
            ]
        };
        let plain = sim.run(mk());
        let (with_stats, _) = sim.run_with_stats(mk());
        assert_eq!(plain, with_stats);
    }
}

mod kills {
    use super::*;
    use crate::KillEvent;
    use proptest::prelude::*;

    #[test]
    fn empty_kill_list_is_identical_to_plain_run() {
        let tree = Tree::regular_two_level(2, 8);
        let sim = FlowSim::new(&tree, unit_config());
        let spec = CollectiveSpec::new(Pattern::Rhvd, 700_000);
        let workloads = vec![
            wl(1, &[0, 1, 8, 9], spec, 0.0, 3),
            wl(2, &[2, 3, 10, 11], spec, 0.5, 2),
            wl(
                3,
                &[4, 12],
                CollectiveSpec::new(Pattern::Binomial, 300_000),
                1.0,
                4,
            ),
        ];
        let plain = sim.run(workloads.clone());
        let with = sim.run_with_kills(workloads, &[]);
        assert_eq!(plain, with);
        assert!(with.iter().all(|r| !r.killed));
    }

    #[test]
    fn killing_a_contender_restores_the_survivor_rate() {
        // Two one-directional sends share the s0->root->s1 trunk, so each
        // holds half the 1 MB/s trunk. Killing job 2 at t=1 leaves job 1
        // with 0.5 MB to go at full rate: done at t=1.5 instead of t=2.
        let tree = Tree::regular_two_level(2, 4);
        let sim = FlowSim::new(&tree, unit_config());
        let spec = CollectiveSpec::new(Pattern::Binomial, 1_000_000);
        let res = sim.run_with_kills(
            vec![wl(1, &[0, 4], spec, 0.0, 1), wl(2, &[1, 5], spec, 0.0, 1)],
            &[KillEvent { t: 1.0, job: 2 }],
        );
        assert!(!res[0].killed);
        assert!(
            (res[0].end - 1.5).abs() < 1e-6,
            "survivor end = {}",
            res[0].end
        );
        assert!(res[1].killed);
        assert!(
            (res[1].end - 1.0).abs() < 1e-9,
            "victim end = {}",
            res[1].end
        );
        assert!(res[1].iterations.is_empty(), "no completed iterations");
    }

    #[test]
    fn kill_before_submit_is_stillborn() {
        let tree = Tree::regular_two_level(2, 4);
        let sim = FlowSim::new(&tree, unit_config());
        let spec = CollectiveSpec::new(Pattern::Rd, 1_000_000);
        let res = sim.run_with_kills(
            vec![wl(1, &[0, 1], spec, 0.0, 1), wl(2, &[2, 3], spec, 5.0, 1)],
            &[KillEvent { t: 2.0, job: 2 }],
        );
        assert!(res[1].killed);
        assert!((res[1].end - 5.0).abs() < 1e-9, "end clamps to submit");
        assert!(res[1].iterations.is_empty());
        // The unrelated job is untouched.
        assert!(!res[0].killed);
        assert!((res[0].end - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kill_at_the_finish_instant_lets_the_job_complete() {
        // The exchange drains at exactly t=1; a kill scheduled for the same
        // instant loses the tie and the job completes normally.
        let tree = Tree::regular_two_level(2, 4);
        let sim = FlowSim::new(&tree, unit_config());
        let spec = CollectiveSpec::new(Pattern::Rd, 1_000_000);
        let res = sim.run_with_kills(
            vec![wl(1, &[0, 1], spec, 0.0, 1)],
            &[KillEvent { t: 1.0, job: 1 }],
        );
        assert!(!res[0].killed);
        assert_eq!(res[0].iterations.len(), 1);
        assert!((res[0].end - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_ids_and_garbage_times_are_ignored() {
        let tree = Tree::regular_two_level(2, 4);
        let sim = FlowSim::new(&tree, unit_config());
        let spec = CollectiveSpec::new(Pattern::Rd, 1_000_000);
        let workloads = vec![wl(1, &[0, 1], spec, 0.0, 2)];
        let res = sim.run_with_kills(
            workloads.clone(),
            &[
                KillEvent { t: 0.5, job: 999 },
                KillEvent {
                    t: f64::NAN,
                    job: 1,
                },
                KillEvent {
                    t: f64::INFINITY,
                    job: 1,
                },
            ],
        );
        assert_eq!(res, sim.run(workloads));
    }

    #[test]
    fn repeated_kills_for_one_job_are_harmless() {
        let tree = Tree::regular_two_level(2, 4);
        let sim = FlowSim::new(&tree, unit_config());
        let spec = CollectiveSpec::new(Pattern::Rd, 1_000_000);
        let res = sim.run_with_kills(
            vec![wl(1, &[0, 1], spec, 0.0, 4)],
            &[
                KillEvent { t: 0.25, job: 1 },
                KillEvent { t: 0.5, job: 1 },
                KillEvent { t: 3.0, job: 1 },
            ],
        );
        assert!(res[0].killed);
        assert!(
            (res[0].end - 0.25).abs() < 1e-9,
            "first kill wins: {}",
            res[0].end
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Tearing a competitor down can only help the survivor: its end
        /// time with the kill lies between its solo time and its fully
        /// contended time.
        #[test]
        fn teardown_only_helps_survivors(
            seed in 0usize..4,
            msize in 100_000u64..1_000_000,
            kill_t in 0.0f64..4.0,
        ) {
            let tree = Tree::regular_two_level(2, 8);
            let sim = FlowSim::new(&tree, unit_config());
            let spec = CollectiveSpec::new(Pattern::Rhvd, msize);
            let j1: Vec<usize> = vec![0, 1, 8, 9];
            let competitors: Vec<Vec<usize>> = vec![
                vec![2, 3, 10, 11],
                vec![4, 5, 12, 13],
                vec![2, 10],
                vec![6, 7, 14, 15],
            ];
            let mk =
                |k: usize| vec![wl(1, &j1, spec, 0.0, 2), wl(2, &competitors[k], spec, 0.0, 2)];
            let alone = sim.run(vec![wl(1, &j1, spec, 0.0, 2)]);
            let contended = sim.run(mk(seed));
            let culled = sim.run_with_kills(mk(seed), &[KillEvent { t: kill_t, job: 2 }]);
            prop_assert!(!culled[0].killed);
            prop_assert!(culled[0].end >= alone[0].end - 1e-9,
                "kill beat the solo bound: {} < {}", culled[0].end, alone[0].end);
            prop_assert!(culled[0].end <= contended[0].end + 1e-9,
                "kill slowed the survivor: {} > {}", culled[0].end, contended[0].end);
        }

        /// A killed job's report is well-formed whenever the kill lands:
        /// end within [submit, kill time], only whole iterations reported.
        #[test]
        fn killed_job_reports_are_well_formed(
            msize in 100_000u64..1_000_000,
            kill_t in 0.0f64..3.0,
            submit in 0.0f64..2.0,
        ) {
            let tree = Tree::regular_two_level(2, 8);
            let sim = FlowSim::new(&tree, unit_config());
            let spec = CollectiveSpec::new(Pattern::Rhvd, msize);
            let res = sim.run_with_kills(
                vec![wl(1, &[0, 1, 8, 9], spec, submit, 3)],
                &[KillEvent { t: kill_t, job: 1 }],
            );
            let r = &res[0];
            if r.killed {
                prop_assert!(r.end >= submit - 1e-9);
                prop_assert!(r.end >= kill_t - 1e-9);
                prop_assert!(r.iterations.len() < 3);
                for s in &r.iterations {
                    prop_assert!(s.start + s.duration <= r.end + 1e-9);
                }
            } else {
                prop_assert_eq!(r.iterations.len(), 3);
            }
        }
    }
}

mod traced {
    use super::*;
    use commsched_trace::{Capture, ClassMask, EventKind as TK, NullRecorder};

    fn overlapping_workloads() -> Vec<Workload> {
        vec![
            wl(
                1,
                &[0, 1, 2, 3],
                CollectiveSpec::new(Pattern::Rhvd, 1 << 20),
                0.0,
                2,
            ),
            wl(
                2,
                &[2, 3, 4, 5],
                CollectiveSpec::new(Pattern::Rd, 1 << 19),
                0.5,
                2,
            ),
            wl(
                3,
                &[6, 7],
                CollectiveSpec::new(Pattern::Ring, 1 << 18),
                1.0,
                1,
            ),
        ]
    }

    #[test]
    fn traced_run_matches_untraced() {
        let tree = Tree::regular_two_level(2, 4);
        let sim = FlowSim::new(&tree, unit_config());
        let plain = sim.run(overlapping_workloads());
        let mut cap = Capture::new();
        let traced = sim.run_traced(overlapping_workloads(), &mut cap);
        assert_eq!(plain, traced);
        assert!(!cap.events.is_empty());

        // Every solve record is internally consistent and time-ordered.
        let mut last_t = 0;
        for (i, ev) in cap.events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert!(ev.t_us >= last_t);
            last_t = ev.t_us;
            match ev.kind {
                TK::NetSolve {
                    components,
                    flows,
                    dirty_links,
                } => {
                    assert!(dirty_links > 0, "solves are only recorded when dirty");
                    assert!(components <= flows, "each component has >= 1 flow");
                }
                TK::NetRates {
                    flows,
                    min_rate,
                    max_rate,
                } => {
                    assert!(flows > 0);
                    assert!(min_rate <= max_rate);
                    assert!(max_rate <= 1.0e6 + 1.0, "rates bounded by link capacity");
                }
                TK::NetLinks { active, saturated } => {
                    assert!(saturated <= active);
                }
                other => panic!("unexpected event class in a netsim trace: {other:?}"),
            }
        }
    }

    #[test]
    fn traced_run_is_deterministic() {
        let tree = Tree::regular_two_level(2, 4);
        let sim = FlowSim::new(&tree, unit_config());
        let mut a = Capture::new();
        let mut b = Capture::new();
        sim.run_traced(overlapping_workloads(), &mut a);
        sim.run_traced(overlapping_workloads(), &mut b);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn masked_sink_skips_net_events() {
        let tree = Tree::regular_two_level(2, 4);
        let sim = FlowSim::new(&tree, unit_config());
        // A job-only sink records nothing from netsim...
        let mut cap = Capture::with_mask(ClassMask::JOB);
        let with_mask = sim.run_traced(overlapping_workloads(), &mut cap);
        assert!(cap.events.is_empty());
        // ...and a null sink changes nothing about the results.
        let with_null = sim.run_traced(overlapping_workloads(), &mut NullRecorder);
        assert_eq!(with_mask, with_null);
        assert_eq!(with_null, sim.run(overlapping_workloads()));
    }
}
