//! Schedule generation for each supported communication pattern.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Communication pattern families considered by the scheduler.
///
/// `Rd`, `Rhvd` and `Binomial` are the three patterns evaluated in the paper;
/// `Ring` and `Stencil2D` are the extensions named in its future work (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Recursive doubling/halving (the paper's "RD"): `MPI_Allreduce`.
    Rd,
    /// Recursive halving with vector doubling: `MPI_Allgather`,
    /// Rabenseifner-style `MPI_Allreduce`.
    Rhvd,
    /// Binomial tree: `MPI_Bcast`, `MPI_Reduce`, `MPI_Gather`.
    Binomial,
    /// Ring allgather: `p - 1` steps of neighbour exchange.
    Ring,
    /// Five-point 2-D halo exchange on a near-square process grid.
    Stencil2D,
    /// Pairwise-exchange all-to-all (`MPI_Alltoall`, the FFTW/CPMD
    /// workhorse named in the paper's introduction): `p - 1` steps, rank
    /// `i` exchanging its block with `i XOR k` (power-of-two ranks) or
    /// with `(i ± k) mod p` otherwise.
    Alltoall,
}

impl Pattern {
    /// All patterns the paper evaluates (RD, RHVD, binomial).
    pub const PAPER: [Pattern; 3] = [Pattern::Rd, Pattern::Rhvd, Pattern::Binomial];

    /// Every supported pattern including future-work extensions.
    pub const ALL: [Pattern; 6] = [
        Pattern::Rd,
        Pattern::Rhvd,
        Pattern::Binomial,
        Pattern::Ring,
        Pattern::Stencil2D,
        Pattern::Alltoall,
    ];
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pattern::Rd => "RD",
            Pattern::Rhvd => "RHVD",
            Pattern::Binomial => "Binomial",
            Pattern::Ring => "Ring",
            Pattern::Stencil2D => "Stencil2D",
            Pattern::Alltoall => "Alltoall",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Pattern {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "rd" => Ok(Pattern::Rd),
            "rhvd" => Ok(Pattern::Rhvd),
            "binomial" | "bin" => Ok(Pattern::Binomial),
            "ring" => Ok(Pattern::Ring),
            "stencil2d" | "stencil" => Ok(Pattern::Stencil2D),
            "alltoall" | "a2a" => Ok(Pattern::Alltoall),
            other => Err(format!("unknown pattern {other:?}")),
        }
    }
}

/// One step of a collective: the rank pairs that communicate concurrently
/// and the bytes each pair exchanges.
///
/// Pairs are normalized to `(lo, hi)` with `lo < hi`; each pair denotes a
/// bidirectional exchange (or a send for one-directional algorithms such as
/// binomial broadcast — the cost model and the flow simulator treat both the
/// same way, as the paper's hop model does).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// Concurrently communicating rank pairs, `(lo, hi)`, sorted.
    pub pairs: Vec<(usize, usize)>,
    /// Bytes exchanged per pair in this step.
    pub msize: u64,
}

impl Step {
    fn new(mut pairs: Vec<(usize, usize)>, msize: u64) -> Self {
        for p in &mut pairs {
            if p.0 > p.1 {
                *p = (p.1, p.0);
            }
        }
        pairs.sort_unstable();
        pairs.dedup(); // e.g. a 2-rank ring yields (0,1) and (1,0)
        Step { pairs, msize }
    }
}

/// A collective operation: the algorithm family plus the base message size.
///
/// `msize` follows the convention of each algorithm's standard description:
/// for RD (allreduce) it is the full vector exchanged every step; for RHVD
/// and Ring it is the *total* vector being assembled (per-step payloads are
/// derived fractions); for Binomial it is the broadcast payload; for
/// Stencil2D it is the per-neighbour halo size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectiveSpec {
    /// Algorithm family.
    pub pattern: Pattern,
    /// Base message size in bytes (see type-level docs for the convention).
    pub msize: u64,
}

impl CollectiveSpec {
    /// Create a spec. `msize` must be positive.
    pub fn new(pattern: Pattern, msize: u64) -> Self {
        assert!(msize > 0, "message size must be positive");
        CollectiveSpec { pattern, msize }
    }

    /// Number of steps this collective takes over `ranks` processes, without
    /// materializing the schedule.
    pub fn num_steps(&self, ranks: usize) -> usize {
        if ranks <= 1 {
            return 0;
        }
        let log = floor_log2(ranks);
        let pow2 = ranks.is_power_of_two();
        let extra = usize::from(!pow2);
        match self.pattern {
            // pre-step + log2 core steps + post-step
            Pattern::Rd => log + 2 * extra,
            Pattern::Rhvd => log + 2 * extra,
            Pattern::Binomial => log + extra,
            Pattern::Ring => ranks - 1,
            Pattern::Stencil2D => 4,
            Pattern::Alltoall => ranks - 1,
        }
    }

    /// Generate the full schedule for `ranks` processes.
    ///
    /// Returns an empty schedule for fewer than two ranks.
    pub fn steps(&self, ranks: usize) -> Vec<Step> {
        if ranks <= 1 {
            return Vec::new();
        }
        let steps = match self.pattern {
            Pattern::Rd => rd_steps(ranks, self.msize),
            Pattern::Rhvd => rhvd_steps(ranks, self.msize),
            Pattern::Binomial => binomial_steps(ranks, self.msize),
            Pattern::Ring => ring_steps(ranks, self.msize),
            Pattern::Stencil2D => stencil2d_steps(ranks, self.msize),
            Pattern::Alltoall => alltoall_steps(ranks, self.msize),
        };
        debug_assert_eq!(steps.len(), self.num_steps(ranks));
        steps
    }

    /// Total bytes moved by the whole collective (all pairs, all steps).
    pub fn total_bytes(&self, ranks: usize) -> u64 {
        self.steps(ranks)
            .iter()
            .map(|s| s.msize * s.pairs.len() as u64)
            .sum()
    }
}

fn floor_log2(p: usize) -> usize {
    debug_assert!(p >= 1);
    (usize::BITS - 1 - p.leading_zeros()) as usize
}

/// The MPICH fold of `p` ranks onto a `2^⌊log2 p⌋` core: the first
/// `2r` ranks pair up `(even, even+1)`; evens drop out of the core phase.
///
/// Returns `(pre_pairs, core)`, where `core[c]` is the original rank playing
/// core rank `c`.
fn fold_to_pow2(p: usize) -> (Vec<(usize, usize)>, Vec<usize>) {
    let pow2 = 1usize << floor_log2(p);
    let r = p - pow2;
    let pre: Vec<(usize, usize)> = (0..r).map(|k| (2 * k, 2 * k + 1)).collect();
    // Odd ranks among the first 2r survive; ranks >= 2r map directly.
    let mut core = Vec::with_capacity(pow2);
    core.extend((0..r).map(|k| 2 * k + 1));
    core.extend(2 * r..p);
    debug_assert_eq!(core.len(), pow2);
    (pre, core)
}

/// Recursive doubling: pre/post fold for non-powers of two, then `log2`
/// XOR-partner steps over the core, full vector (`msize`) every step.
fn rd_steps(p: usize, msize: u64) -> Vec<Step> {
    let (pre, core) = fold_to_pow2(p);
    let pow2 = core.len();
    let mut steps = Vec::new();
    if !pre.is_empty() {
        steps.push(Step::new(pre.clone(), msize));
    }
    for k in 0..floor_log2(pow2) {
        let dist = 1usize << k;
        let pairs = (0..pow2)
            .filter(|i| i & dist == 0)
            .map(|i| (core[i], core[i ^ dist]))
            .collect();
        steps.push(Step::new(pairs, msize));
    }
    if !pre.is_empty() {
        steps.push(Step::new(pre, msize));
    }
    steps
}

/// Recursive halving with vector doubling — the allgather formulation the
/// paper's name describes literally: step `k` exchanges with the partner at
/// distance `pow2 / 2^(k+1)` (distances *halve*), carrying `msize/pow2 ·
/// 2^k` bytes (payloads *double* as the gathered vector grows).
///
/// This is the schedule behind the paper's §6.1 observation that "the first
/// half of the nodes do not communicate with the second half after the
/// first step": only step 0 crosses the halves, and it carries the
/// *smallest* payload — which is precisely why power-of-two balanced
/// allocations keep the heavy traffic intra-switch.
///
/// Non-powers of two fold the excess ranks in with a pre-step (their block
/// moves into the core) and a post-step (the fully gathered vector moves
/// back out).
fn rhvd_steps(p: usize, msize: u64) -> Vec<Step> {
    let (pre, core) = fold_to_pow2(p);
    let pow2 = core.len();
    let log = floor_log2(pow2);
    let block = (msize / pow2 as u64).max(1);
    let mut steps = Vec::new();
    if !pre.is_empty() {
        steps.push(Step::new(pre.clone(), block));
    }
    for k in 0..log {
        let dist = pow2 >> (k + 1);
        let bytes = (block << k).max(1);
        let pairs = (0..pow2)
            .filter(|i| i & dist == 0)
            .map(|i| (core[i], core[i ^ dist]))
            .collect();
        steps.push(Step::new(pairs, bytes));
    }
    if !pre.is_empty() {
        steps.push(Step::new(pre, msize));
    }
    steps
}

/// Binomial tree broadcast: in step `k`, ranks `i < 2^k` send the full
/// payload to `i + 2^k` (when that rank exists). Non-powers of two need no
/// fold — the tree just has a ragged last level.
fn binomial_steps(p: usize, msize: u64) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut k = 0usize;
    while (1usize << k) < p {
        let dist = 1usize << k;
        let pairs = (0..dist)
            .filter(|i| i + dist < p)
            .map(|i| (i, i + dist))
            .collect();
        steps.push(Step::new(pairs, msize));
        k += 1;
    }
    steps
}

/// Ring allgather: `p - 1` steps; every rank sends `msize / p` to its right
/// neighbour each step.
fn ring_steps(p: usize, msize: u64) -> Vec<Step> {
    let bytes = (msize / p as u64).max(1);
    let pairs: Vec<(usize, usize)> = (0..p).map(|i| (i, (i + 1) % p)).collect();
    (0..p - 1)
        .map(|_| Step::new(pairs.clone(), bytes))
        .collect()
}

/// Pairwise-exchange all-to-all: `p - 1` steps; in step `k`, rank `i`
/// swaps one `msize / p` block with partner `i XOR k` when `p` is a power
/// of two (a perfect pairing), or sends to `(i + k) mod p` otherwise (the
/// classic non-power-of-two fallback, where send and receive partners
/// differ).
fn alltoall_steps(p: usize, msize: u64) -> Vec<Step> {
    let block = (msize / p as u64).max(1);
    let mut steps = Vec::with_capacity(p - 1);
    for k in 1..p {
        let pairs: Vec<(usize, usize)> = if p.is_power_of_two() {
            (0..p).filter(|i| i ^ k > *i).map(|i| (i, i ^ k)).collect()
        } else {
            (0..p).map(|i| (i, (i + k) % p)).collect()
        };
        steps.push(Step::new(pairs, block));
    }
    steps
}

/// Five-point stencil halo exchange on a near-square `rows x cols` grid
/// (row-major ranks): one step per direction (E, W, S, N neighbour waves),
/// each pair exchanging the halo payload.
fn stencil2d_steps(p: usize, msize: u64) -> Vec<Step> {
    let (rows, cols) = near_square_grid(p);
    let rank = |r: usize, c: usize| r * cols + c;
    let mut steps = Vec::new();
    // Horizontal exchanges in two waves so a rank talks to one partner per
    // step (even-odd column pairing), then vertical likewise.
    for parity in 0..2usize {
        let mut pairs = Vec::new();
        for r in 0..rows {
            let mut c = parity;
            while c + 1 < cols {
                if rank(r, c + 1) < p && rank(r, c) < p {
                    pairs.push((rank(r, c), rank(r, c + 1)));
                }
                c += 2;
            }
        }
        steps.push(Step::new(pairs, msize));
    }
    for parity in 0..2usize {
        let mut pairs = Vec::new();
        for c in 0..cols {
            let mut r = parity;
            while r + 1 < rows {
                if rank(r + 1, c) < p && rank(r, c) < p {
                    pairs.push((rank(r, c), rank(r + 1, c)));
                }
                r += 2;
            }
        }
        steps.push(Step::new(pairs, msize));
    }
    steps
}

/// Factor `p` into the most square `rows x cols >= p` grid with
/// `rows <= cols` and `rows * cols` minimal-ish (exact factor when possible).
fn near_square_grid(p: usize) -> (usize, usize) {
    let mut best = (1, p);
    let mut r = (p as f64).sqrt() as usize;
    while r >= 1 {
        if p.is_multiple_of(r) {
            best = (r, p / r);
            break;
        }
        r -= 1;
    }
    best
}
