//! Step-wise communication schedules of MPI collective algorithms.
//!
//! The paper (§3.3) keys its allocator on the *parallel algorithm* underneath
//! the application's most time-consuming MPI collective rather than on a
//! profiled communication matrix. Three algorithm families cover the MPICH
//! collectives (Thakur et al., 2005):
//!
//! * **Recursive doubling (RD)** — `MPI_Allreduce` & friends: `log2 p` steps,
//!   rank `i` pairs with `i XOR 2^k`, full vector each step.
//! * **Recursive halving with vector doubling (RHVD)** — the
//!   `MPI_Allgather` schedule the paper's name describes literally:
//!   `log2 p` steps in which the partner *distance halves* while the
//!   gathered *vector doubles*. Only the first step crosses the two halves
//!   of the rank space (the paper's §6.1 observation), and it carries the
//!   smallest payload.
//! * **Binomial tree** — `MPI_Bcast`/`MPI_Reduce`/`MPI_Gather`: `log2 p`
//!   steps, rank `i < 2^k` pairs with `i + 2^k`.
//!
//! Each schedule is a sequence of [`Step`]s: the set of rank pairs that
//! communicate *concurrently* in that step and the per-pair message size.
//! The cost model (Eq. 6) takes the per-step `max` of effective hops over
//! these pairs and sums across steps; the network simulator turns the same
//! steps into bandwidth-sharing flows.
//!
//! Non-power-of-two rank counts use the standard MPICH reduction: the
//! `r = p - 2^⌊log2 p⌋` excess ranks fold into a power-of-two core with a
//! pre-step (and a mirror post-step for RD/RHVD), exactly the mechanism that
//! makes the paper's power-of-two *node* allocations profitable.
//!
//! The paper's future-work patterns, **ring** and **2-D stencil**, are also
//! provided ([`Pattern::Ring`], [`Pattern::Stencil2D`]).
//!
//! # Example
//!
//! ```
//! use commsched_collectives::{CollectiveSpec, Pattern};
//!
//! // 1 MiB MPI_Allgather over 8 ranks, as in the paper's Figure 1 study.
//! let spec = CollectiveSpec::new(Pattern::Rhvd, 1 << 20);
//! let steps = spec.steps(8);
//! assert_eq!(steps.len(), 3); // log2(8)
//! // First step: ranks exchange their single block with distance-4
//! // partners; later steps stay within each half with doubled payloads.
//! assert!(steps[0].pairs.contains(&(0, 4)));
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
mod schedule;

pub use schedule::{CollectiveSpec, Pattern, Step};

#[cfg(test)]
mod tests;
