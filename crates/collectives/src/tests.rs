use crate::{CollectiveSpec, Pattern, Step};

fn pairs_of(steps: &[Step]) -> Vec<Vec<(usize, usize)>> {
    steps.iter().map(|s| s.pairs.clone()).collect()
}

#[test]
fn rd_eight_ranks_matches_figure3() {
    // Figure 3 of the paper: recursive doubling over 8 ranks.
    // Step 1: distance 1; Step 2: distance 2; Step 3: distance 4.
    let steps = CollectiveSpec::new(Pattern::Rd, 1024).steps(8);
    assert_eq!(
        pairs_of(&steps),
        vec![
            vec![(0, 1), (2, 3), (4, 5), (6, 7)],
            vec![(0, 2), (1, 3), (4, 6), (5, 7)],
            vec![(0, 4), (1, 5), (2, 6), (3, 7)],
        ]
    );
    // Allreduce RD moves the full vector every step.
    assert!(steps.iter().all(|s| s.msize == 1024));
}

#[test]
fn rd_two_ranks() {
    let steps = CollectiveSpec::new(Pattern::Rd, 8).steps(2);
    assert_eq!(pairs_of(&steps), vec![vec![(0, 1)]]);
}

#[test]
fn rd_single_rank_is_empty() {
    assert!(CollectiveSpec::new(Pattern::Rd, 8).steps(1).is_empty());
    assert!(CollectiveSpec::new(Pattern::Rd, 8).steps(0).is_empty());
}

#[test]
fn rd_non_power_of_two_folds() {
    // p = 6 -> pow2 = 4, r = 2: pre pairs (0,1), (2,3); core = {1, 3, 4, 5}.
    let steps = CollectiveSpec::new(Pattern::Rd, 64).steps(6);
    assert_eq!(steps.len(), 4); // pre + 2 core + post
    assert_eq!(steps[0].pairs, vec![(0, 1), (2, 3)]);
    assert_eq!(steps[1].pairs, vec![(1, 3), (4, 5)]); // core distance 1
    assert_eq!(steps[2].pairs, vec![(1, 4), (3, 5)]); // core distance 2
    assert_eq!(steps[3].pairs, steps[0].pairs); // mirror post-step
}

#[test]
fn rhvd_eight_ranks_structure() {
    // Distances halve (4, 2, 1) while payloads double (m/8, m/4, m/2).
    let m = 1u64 << 20;
    let steps = CollectiveSpec::new(Pattern::Rhvd, m).steps(8);
    assert_eq!(steps.len(), 3);
    assert_eq!(steps[0].pairs, vec![(0, 4), (1, 5), (2, 6), (3, 7)]);
    assert_eq!(steps[0].msize, m / 8);
    assert_eq!(steps[1].pairs, vec![(0, 2), (1, 3), (4, 6), (5, 7)]);
    assert_eq!(steps[1].msize, m / 4);
    assert_eq!(steps[2].pairs, vec![(0, 1), (2, 3), (4, 5), (6, 7)]);
    assert_eq!(steps[2].msize, m / 2);
}

#[test]
fn rhvd_conserves_the_gathered_vector() {
    // An allgather assembles msize bytes on each rank: per-rank received
    // bytes over all steps must total msize * (p-1)/p.
    for logp in 1u32..8 {
        let p = 1u64 << logp;
        let m = 1u64 << 20;
        let steps = CollectiveSpec::new(Pattern::Rhvd, m).steps(p as usize);
        let per_rank: u64 = steps.iter().map(|s| s.msize).sum();
        assert_eq!(per_rank, m - m / p, "p = {p}");
    }
}

#[test]
fn rhvd_first_half_stops_talking_to_second_half() {
    // Section 6.1: "in the recursive halving communication pattern, the
    // first half of the nodes do not communicate with the second half after
    // the first step" — the property that makes power-of-two splits good.
    let steps = CollectiveSpec::new(Pattern::Rhvd, 1 << 20).steps(16);
    for (k, step) in steps.iter().enumerate().skip(1) {
        for &(a, b) in &step.pairs {
            assert_eq!(
                (a < 8),
                (b < 8),
                "step {k} crosses the halves with pair ({a}, {b})"
            );
        }
    }
    // And the one crossing step carries the smallest payload.
    assert!(steps[0].msize <= steps.iter().map(|s| s.msize).min().unwrap());
}

#[test]
fn rhvd_tiny_message_never_zero() {
    let steps = CollectiveSpec::new(Pattern::Rhvd, 1).steps(1024);
    assert!(steps.iter().all(|s| s.msize >= 1));
}

#[test]
fn binomial_eight_ranks() {
    let steps = CollectiveSpec::new(Pattern::Binomial, 4096).steps(8);
    assert_eq!(
        pairs_of(&steps),
        vec![
            vec![(0, 1)],
            vec![(0, 2), (1, 3)],
            vec![(0, 4), (1, 5), (2, 6), (3, 7)],
        ]
    );
    assert!(steps.iter().all(|s| s.msize == 4096));
}

#[test]
fn binomial_ragged_tree() {
    // p = 6: last step only sends where the target exists.
    let steps = CollectiveSpec::new(Pattern::Binomial, 1).steps(6);
    assert_eq!(
        pairs_of(&steps),
        vec![vec![(0, 1)], vec![(0, 2), (1, 3)], vec![(0, 4), (1, 5)],]
    );
}

#[test]
fn binomial_reaches_every_rank() {
    // Broadcast correctness: simulate receipt from root 0.
    for p in [2usize, 3, 5, 8, 17, 64, 100] {
        let steps = CollectiveSpec::new(Pattern::Binomial, 1).steps(p);
        let mut has = vec![false; p];
        has[0] = true;
        for step in &steps {
            let mut next = has.clone();
            for &(a, b) in &step.pairs {
                if has[a] || has[b] {
                    next[a] = true;
                    next[b] = true;
                }
            }
            has = next;
        }
        assert!(has.into_iter().all(|h| h), "p={p} left ranks without data");
    }
}

#[test]
fn ring_structure() {
    let steps = CollectiveSpec::new(Pattern::Ring, 1000).steps(5);
    assert_eq!(steps.len(), 4);
    for s in &steps {
        assert_eq!(s.pairs, vec![(0, 1), (0, 4), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(s.msize, 200);
    }
}

#[test]
fn ring_two_ranks_dedups() {
    let steps = CollectiveSpec::new(Pattern::Ring, 10).steps(2);
    assert_eq!(steps.len(), 1);
    assert_eq!(steps[0].pairs, vec![(0, 1)]);
}

#[test]
fn stencil_square_grid() {
    // p = 9 -> 3x3 grid; 4 direction waves.
    let steps = CollectiveSpec::new(Pattern::Stencil2D, 512).steps(9);
    assert_eq!(steps.len(), 4);
    let all: Vec<(usize, usize)> = steps.iter().flat_map(|s| s.pairs.clone()).collect();
    // 3x3 five-point stencil has 6 horizontal + 6 vertical undirected edges.
    assert_eq!(all.len(), 12);
    assert!(all.contains(&(0, 1)));
    assert!(all.contains(&(0, 3)));
    assert!(all.contains(&(4, 5)));
    assert!(all.contains(&(5, 8)));
}

#[test]
fn alltoall_pow2_pairs_every_rank_each_step() {
    let steps = CollectiveSpec::new(Pattern::Alltoall, 8000).steps(8);
    assert_eq!(steps.len(), 7);
    for (k, step) in steps.iter().enumerate() {
        assert_eq!(step.pairs.len(), 4, "step {k}");
        assert_eq!(step.msize, 1000);
        let mut seen = [false; 8];
        for &(a, b) in &step.pairs {
            assert_eq!(b, a ^ (k + 1));
            assert!(!seen[a] && !seen[b]);
            seen[a] = true;
            seen[b] = true;
        }
    }
}

#[test]
fn alltoall_every_rank_pair_communicates_exactly_once() {
    // All-to-all semantics: over the whole schedule each unordered pair
    // appears exactly once (power-of-two ranks).
    let steps = CollectiveSpec::new(Pattern::Alltoall, 1 << 20).steps(16);
    let mut count = std::collections::HashMap::new();
    for s in &steps {
        for &pr in &s.pairs {
            *count.entry(pr).or_insert(0usize) += 1;
        }
    }
    assert_eq!(count.len(), 16 * 15 / 2);
    assert!(count.values().all(|&c| c == 1));
}

#[test]
fn alltoall_non_pow2_covers_all_pairs() {
    let steps = CollectiveSpec::new(Pattern::Alltoall, 700).steps(7);
    assert_eq!(steps.len(), 6);
    let mut seen = std::collections::HashSet::new();
    for s in &steps {
        for &pr in &s.pairs {
            seen.insert(pr);
        }
    }
    assert_eq!(seen.len(), 7 * 6 / 2);
}

#[test]
fn pattern_parsing_and_display() {
    for p in Pattern::ALL {
        let s = p.to_string();
        assert_eq!(s.parse::<Pattern>().unwrap(), p);
    }
    assert_eq!("rhvd".parse::<Pattern>().unwrap(), Pattern::Rhvd);
    assert!("bogus".parse::<Pattern>().is_err());
}

#[test]
fn total_bytes_rd() {
    // 8 ranks, 3 steps, 4 pairs each, msize 10 -> 120.
    let spec = CollectiveSpec::new(Pattern::Rd, 10);
    assert_eq!(spec.total_bytes(8), 120);
}

/// Simulate data propagation: every rank starts with its own block; each
/// step's pairs merge their sets (bidirectional exchange). Returns true if
/// all ranks end holding all blocks — the correctness invariant of any
/// allgather/allreduce schedule.
fn full_coverage(pattern: Pattern, p: usize) -> bool {
    let steps = CollectiveSpec::new(pattern, 1 << 20).steps(p);
    let mut sets: Vec<std::collections::HashSet<usize>> = (0..p)
        .map(|i| std::collections::HashSet::from([i]))
        .collect();
    for step in &steps {
        let mut next = sets.clone();
        for &(a, b) in &step.pairs {
            next[a].extend(sets[b].iter().copied());
            next[b].extend(sets[a].iter().copied());
        }
        sets = next;
    }
    sets.iter().all(|s| s.len() == p)
}

#[test]
fn allgather_style_schedules_reach_everyone() {
    // RD and RHVD are all-to-all-knowledge algorithms: their schedules
    // must fully disseminate every rank's block, for powers of two AND the
    // folded non-power-of-two cases.
    for p in [2usize, 3, 4, 6, 8, 12, 16, 31, 32, 100, 128] {
        assert!(full_coverage(Pattern::Rd, p), "RD failed at p={p}");
        assert!(full_coverage(Pattern::Rhvd, p), "RHVD failed at p={p}");
    }
    // Ring disseminates too (p-1 neighbour exchanges).
    for p in [2usize, 3, 5, 9, 16] {
        assert!(full_coverage(Pattern::Ring, p), "Ring failed at p={p}");
    }
    // (Binomial is a broadcast tree — only the root's block must reach
    // everyone, which `binomial_reaches_every_rank` already checks.)
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn paper_pattern() -> impl Strategy<Value = Pattern> {
        prop::sample::select(Pattern::PAPER.to_vec())
    }

    fn any_pattern() -> impl Strategy<Value = Pattern> {
        prop::sample::select(Pattern::ALL.to_vec())
    }

    proptest! {
        /// num_steps always equals the materialized schedule length.
        #[test]
        fn num_steps_consistent(pat in any_pattern(), p in 0usize..200, m in 1u64..1_000_000) {
            let spec = CollectiveSpec::new(pat, m);
            prop_assert_eq!(spec.num_steps(p), spec.steps(p).len());
        }

        /// Every rank talks to at most one partner per step (the schedules
        /// are phase-synchronous pairwise exchanges).
        #[test]
        fn at_most_one_partner_per_step(pat in paper_pattern(), p in 2usize..130, m in 1u64..1_000_000) {
            let spec = CollectiveSpec::new(pat, m);
            for (k, step) in spec.steps(p).into_iter().enumerate() {
                let mut seen = vec![false; p];
                for (a, b) in step.pairs {
                    prop_assert!(a < p && b < p, "rank out of range in step {k}");
                    prop_assert!(a != b, "self pair in step {k}");
                    prop_assert!(!seen[a], "rank {a} has two partners in step {k}");
                    prop_assert!(!seen[b], "rank {b} has two partners in step {k}");
                    seen[a] = true;
                    seen[b] = true;
                }
            }
        }

        /// Pairs are normalized, sorted and unique; msize positive.
        #[test]
        fn steps_are_normalized(pat in any_pattern(), p in 2usize..100, m in 1u64..1_000_000) {
            for step in CollectiveSpec::new(pat, m).steps(p) {
                prop_assert!(step.msize >= 1);
                for w in step.pairs.windows(2) {
                    prop_assert!(w[0] < w[1], "unsorted or duplicate pairs");
                }
                for (a, b) in step.pairs {
                    prop_assert!(a < b);
                }
            }
        }

        /// For powers of two, RD touches every rank every step.
        #[test]
        fn rd_pow2_all_ranks_active(logp in 1u32..9, m in 1u64..1_000_000) {
            let p = 1usize << logp;
            for step in CollectiveSpec::new(Pattern::Rd, m).steps(p) {
                prop_assert_eq!(step.pairs.len(), p / 2);
            }
        }

        /// RHVD payloads strictly double step over step (for vectors large
        /// enough not to hit the 1-byte floor).
        #[test]
        fn rhvd_payloads_double(logp in 1u32..9, logm in 12u32..24) {
            let p = 1usize << logp;
            let m = 1u64 << logm;
            prop_assume!(logm >= logp); // avoid the 1-byte floor
            let steps = CollectiveSpec::new(Pattern::Rhvd, m).steps(p);
            for w in steps.windows(2) {
                prop_assert_eq!(w[1].msize, 2 * w[0].msize);
            }
        }
    }
}
