//! P1 chain fixture: public entry points reaching panics transitively.
//! Scanned with detlint_chain.toml, which puts "detlint" in `reach`
//! (not `crates`), so only call-chain findings fire.

pub fn entry(v: Option<u32>) -> u32 {
    helper(v)
}

fn helper(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn entry_allowed(v: Option<u32>) -> u32 {
    justified(v)
}

fn justified(v: Option<u32>) -> u32 {
    // detlint: allow(P1) — fixture: reasoned allow at the panic site
    v.unwrap()
}

pub fn safe(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}
