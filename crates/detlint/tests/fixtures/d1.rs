//! D1 fixture: iteration over unordered hash containers.
//!
//! `flagged` must produce one D1 diagnostic; `allowed` carries an inline
//! justification; `ordered` uses a BTreeMap and stays silent.

use std::collections::{BTreeMap, HashMap};

pub fn flagged(map: &HashMap<u32, u64>) -> u64 {
    map.values().sum()
}

pub fn allowed(counts: &HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    // detlint: allow(D1) — addition over u64 is commutative and exact,
    // so the visit order cannot change the result.
    for (_k, v) in counts.iter() {
        total += *v;
    }
    total
}

pub fn ordered(sorted: &BTreeMap<u32, u64>) -> u64 {
    sorted.values().sum()
}
