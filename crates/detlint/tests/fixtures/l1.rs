//! L1 fixture: lock acquisitions against the declared order
//! (a_lock < b_lock).

use std::sync::Mutex;

pub struct Locks {
    pub a_lock: Mutex<u32>,
    pub b_lock: Mutex<u32>,
    pub c_lock: Mutex<u32>,
    // detlint: allow(L1) — fixture: scratch lock outside the global order
    pub d_lock: Mutex<u32>,
}

pub fn clean(l: &Locks) {
    let a = l.a_lock.lock();
    let b = l.b_lock.lock();
    drop(b);
    drop(a);
}

pub fn flagged(l: &Locks) {
    let b = l.b_lock.lock();
    let a = l.a_lock.lock();
    drop(a);
    drop(b);
}
