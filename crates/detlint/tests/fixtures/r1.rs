//! R1 fixture: panic-capable calls in a panic-free crate.

pub fn flagged(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn allowed(v: Option<u32>) -> u32 {
    // detlint: allow(R1) — every fixture value is Some in this corpus
    v.expect("always present")
}

pub fn clean(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}
