//! X1 fixture: wildcard arms on workspace enums in an exhaustive-match
//! path. Matches on foreign types (Option) are invisible to the rule.

pub enum Kind {
    Alpha,
    Beta,
    Gamma,
}

pub fn flagged(k: &Kind) -> u32 {
    match k {
        Kind::Alpha => 1,
        _ => 0,
    }
}

pub fn allowed(k: &Kind) -> u32 {
    match k {
        Kind::Alpha => 1,
        // detlint: allow(X1) — fixture: wildcard justified for the test
        _ => 0,
    }
}

pub fn clean(k: &Kind) -> u32 {
    match k {
        Kind::Alpha => 1,
        Kind::Beta => 2,
        Kind::Gamma => 3,
    }
}

pub fn foreign(o: Option<u32>) -> u32 {
    match o {
        Some(x) => x,
        _ => 0,
    }
}
