//! D2 fixture: wall-clock and ambient state in library code.

pub fn flagged_clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn flagged_env() -> Option<String> {
    std::env::var("COMMSCHED_HOME").ok()
}

pub fn allowed_env() -> Option<String> {
    // detlint: allow(D2) — trace destination only; never affects results
    std::env::var("COMMSCHED_TRACE").ok()
}

pub fn clean_time(seconds: f64) -> f64 {
    seconds * 2.0
}
