//! Fixture for the committed-allowlist path: the D1 hit below is
//! suppressed by a `[[allow]]` entry in `fixtures/detlint.toml`.

use std::collections::HashMap;

pub fn lookup_order(map: &HashMap<u32, u64>) -> usize {
    map.iter().count()
}
