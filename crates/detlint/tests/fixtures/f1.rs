//! F1 fixture: float accumulation over unordered iterators.

pub fn flagged(v: &[f64]) -> f64 {
    v.par_iter().sum::<f64>()
}

pub fn allowed(v: &[f64]) -> f64 {
    // detlint: allow(F1) — inputs are small integers; addition is exact
    v.par_iter().sum::<f64>()
}

pub fn clean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>()
}
