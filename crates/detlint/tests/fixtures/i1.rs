//! I1 fixture: public `&mut self` methods on the protocol type must
//! reach the flush helper through the call graph.

pub struct FixtureState {
    dirty: u32,
}

impl FixtureState {
    pub fn flush_index(&mut self) {
        self.dirty = 0;
    }

    pub fn flagged(&mut self) {
        self.dirty += 1;
    }

    pub fn clean_direct(&mut self) {
        self.dirty += 1;
        self.flush_index();
    }

    pub fn clean_via_helper(&mut self) {
        self.helper();
    }

    // detlint: allow(I1) — fixture: mutation has no index impact
    pub fn allowed(&mut self) {
        self.dirty += 1;
    }

    fn helper(&mut self) {
        self.flush_index();
    }

    pub fn read(&self) -> u32 {
        self.dirty
    }
}
