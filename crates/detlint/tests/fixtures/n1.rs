//! N1 fixture: raw numeric `as` casts in a hot file.

pub fn flagged(x: u64) -> f64 {
    x as f64
}

pub fn allowed(x: u32) -> u64 {
    // detlint: allow(N1) — widening u32→u64 can never lose information
    x as u64
}

pub fn clean(x: u32) -> u64 {
    u64::from(x)
}
