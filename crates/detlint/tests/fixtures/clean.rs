//! Clean fixture: no rule fires anywhere in this file.

use std::collections::BTreeMap;

pub fn total(map: &BTreeMap<u32, u64>) -> u64 {
    map.values().sum()
}

pub fn safe_get(v: Option<u32>) -> u32 {
    v.unwrap_or_default()
}
