//! Property tests: the lexer → tokenizer → item-parser pipeline must
//! never panic, whatever nesting of comments, strings, braces, and
//! attributes the source throws at it — detlint scans arbitrary
//! workspace files and a malformed one must produce (at worst) an empty
//! parse, not a crash.

use proptest::prelude::*;

/// Fragments that stress the scrubber and parser: comment openers and
/// closers, string/char/lifetime quotes, raw strings, braces, and item
/// keywords — deliberately combinable into unbalanced nonsense.
fn fragment() -> impl Strategy<Value = String> {
    let fixed = proptest::sample::select(vec![
        "/*",
        "*/",
        "//",
        "\n",
        "\"",
        "\\\"",
        "r#\"",
        "\"#",
        "'a",
        "'x'",
        "{",
        "}",
        "(",
        ")",
        "fn f",
        "impl T",
        "enum E",
        "match x",
        "=>",
        "_",
        "mod m",
        "#[test]",
        "#[cfg(test)]",
        "let g = x.lock();",
        "self.call()",
        "a::b",
        "pub ",
        "unwrap()",
        ".",
        "1.5",
        "0..10",
        "",
    ]);
    // Glue a short random identifier-ish tail onto each fixed fragment so
    // boundaries between fragments vary too.
    (fixed, "[a-zA-Z0-9_ ]{0,4}").prop_map(|(f, tail)| format!("{f}{tail}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lex_tokenize_parse_never_panics(frags in prop::collection::vec(fragment(), 0..40)) {
        let src = frags.concat();
        let lexed = detlint::lexer::strip(&src);
        let toks = detlint::lexer::tokenize(&lexed.cleaned);
        let parsed = detlint::parse::parse(&toks, &["lock".to_string()]);
        // Token lines must stay within the cleaned text's line count, so
        // every diagnostic the rules derive points at a real line.
        let nlines = lexed.cleaned.lines().count() + 1;
        for t in &toks {
            prop_assert!(t.line < nlines, "token line {} out of range {nlines}", t.line);
        }
        for f in &parsed.fns {
            prop_assert!(f.line < nlines);
        }
    }

    #[test]
    fn well_formed_fn_bodies_always_parse(name in "[a-z][a-z0-9_]{0,8}", panics in any::<bool>()) {
        let body = if panics { "x.unwrap()" } else { "x" };
        let src = format!("pub fn {name}(x: u32) -> u32 {{ {body} }}\n");
        let lexed = detlint::lexer::strip(&src);
        let toks = detlint::lexer::tokenize(&lexed.cleaned);
        let parsed = detlint::parse::parse(&toks, &["lock".to_string()]);
        prop_assert_eq!(parsed.fns.len(), 1);
        prop_assert_eq!(parsed.fns[0].name.clone(), name);
        prop_assert_eq!(!parsed.fns[0].body.panics.is_empty(), panics);
    }
}
