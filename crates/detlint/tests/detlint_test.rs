//! End-to-end tests over the committed fixture corpus: exact diagnostics
//! per rule, allow handling (inline and config), JSON shape, and the
//! binary's exit codes.

use detlint::config::Config;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(format!("crates/detlint/tests/fixtures/{name}"))
}

fn fixture_config() -> Config {
    let text =
        std::fs::read_to_string(repo_root().join(fixture("detlint.toml"))).expect("fixture config");
    detlint::config::parse(&text).expect("fixture config parses")
}

/// (file, line, rule) triples of a report, in output order.
fn triples(report: &detlint::Report) -> Vec<(String, usize, String)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule.to_string()))
        .collect()
}

fn scan(names: &[&str]) -> detlint::Report {
    let files: Vec<PathBuf> = names.iter().map(|n| fixture(n)).collect();
    detlint::run(&repo_root(), &fixture_config(), &files).expect("scan fixtures")
}

fn scan_with(config_name: &str, names: &[&str]) -> detlint::Report {
    let text =
        std::fs::read_to_string(repo_root().join(fixture(config_name))).expect("fixture config");
    let cfg = detlint::config::parse(&text).expect("fixture config parses");
    let files: Vec<PathBuf> = names.iter().map(|n| fixture(n)).collect();
    detlint::run(&repo_root(), &cfg, &files).expect("scan fixtures")
}

#[test]
fn each_rule_fixture_yields_exactly_its_expected_diagnostics() {
    let expected: &[(&str, &[(usize, &str)])] = &[
        ("d1.rs", &[(9, "D1")]),
        ("d2.rs", &[(4, "D2"), (8, "D2")]),
        ("r1.rs", &[(4, "P1")]),
        ("n1.rs", &[(4, "N1")]),
        ("f1.rs", &[(4, "F1")]),
        ("x1.rs", &[(13, "X1")]),
        ("i1.rs", &[(13, "I1")]),
        ("l1.rs", &[(9, "L1"), (23, "L1")]),
    ];
    for (name, wanted) in expected {
        let report = scan(&[name]);
        let got = triples(&report);
        let want: Vec<(String, usize, String)> = wanted
            .iter()
            .map(|&(line, rule)| {
                (
                    format!("crates/detlint/tests/fixtures/{name}"),
                    line,
                    rule.to_string(),
                )
            })
            .collect();
        assert_eq!(got, want, "unexpected diagnostics for {name}");
    }
}

#[test]
fn clean_and_config_allowlisted_fixtures_are_silent() {
    let report = scan(&["clean.rs", "allowed.rs"]);
    assert!(report.is_clean(), "{:?}", triples(&report));
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn p1_chain_fixture_flags_public_entry_with_full_call_chain() {
    let report = scan_with("detlint_chain.toml", &["p1_chain.rs"]);
    assert_eq!(
        triples(&report),
        [(
            "crates/detlint/tests/fixtures/p1_chain.rs".to_string(),
            5,
            "P1".to_string()
        )],
        "{:?}",
        report.diagnostics
    );
    let msg = &report.diagnostics[0].message;
    assert!(msg.contains("call chain: entry -> helper"), "{msg}");
    assert!(
        msg.contains("crates/detlint/tests/fixtures/p1_chain.rs:10"),
        "{msg}"
    );
    // `entry_allowed`'s chain is silenced by the reasoned allow at the
    // panic site inside `justified`, and `safe` never panics.
    assert!(!msg.contains("entry_allowed"));
}

#[test]
fn text_rendering_matches_the_documented_format() {
    let report = scan(&["r1.rs"]);
    let text = detlint::render_text(&report);
    let first = text.lines().next().expect("one diagnostic line");
    assert!(
        first.starts_with("crates/detlint/tests/fixtures/r1.rs:4: P1: "),
        "{first}"
    );
    assert!(text.contains("detlint: 1 violation(s) in 1 files scanned"));
}

#[test]
fn json_rendering_has_the_documented_shape() {
    let report = scan(&[
        "d1.rs",
        "d2.rs",
        "f1.rs",
        "n1.rs",
        "r1.rs",
        "clean.rs",
        "allowed.rs",
    ]);
    let json = detlint::render_json(&report);
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(v["files_scanned"].as_u64(), Some(7));
    assert_eq!(v["clean"].as_bool(), Some(false));
    let diags = v["diagnostics"].as_array().expect("diagnostics array");
    assert_eq!(diags.len(), 6);
    for d in diags {
        assert!(d["file"].is_string());
        assert!(d["line"].is_u64());
        assert!(d["rule"].is_string());
        assert!(d["message"].is_string());
    }
    // Sorted by (file, line, rule): d1, d2×2, f1, n1, r1.
    let rules: Vec<&str> = diags.iter().map(|d| d["rule"].as_str().unwrap()).collect();
    assert_eq!(rules, ["D1", "D2", "D2", "F1", "N1", "P1"]);
}

#[test]
fn json_rendering_is_byte_stable() {
    let report = scan(&["r1.rs"]);
    let json = detlint::render_json(&report);
    let expected = "{\n  \"files_scanned\": 1,\n  \"clean\": false,\n  \"diagnostics\": [\n    \
        {\"file\": \"crates/detlint/tests/fixtures/r1.rs\", \"line\": 4, \"rule\": \"P1\", \
        \"message\": \"`.unwrap()` in non-test code of a panic-free crate — return a typed \
        error or justify with `detlint: allow(P1)`\"}\n  ]\n}\n";
    assert_eq!(json, expected);
}

#[test]
fn sarif_rendering_has_the_documented_shape() {
    let report = scan(&["r1.rs", "clean.rs"]);
    let sarif = detlint::render_sarif(&report);
    let v: serde_json::Value = serde_json::from_str(&sarif).expect("valid JSON");
    assert_eq!(v["version"].as_str(), Some("2.1.0"));
    let run = &v["runs"][0];
    assert_eq!(run["tool"]["driver"]["name"].as_str(), Some("detlint"));
    let rule_ids: Vec<&str> = run["tool"]["driver"]["rules"]
        .as_array()
        .expect("rules array")
        .iter()
        .map(|r| r["id"].as_str().expect("rule id"))
        .collect();
    for id in ["A0", "D1", "D2", "F1", "I1", "L1", "N1", "P1", "X1"] {
        assert!(rule_ids.contains(&id), "missing rule {id} in {rule_ids:?}");
    }
    let results = run["results"].as_array().expect("results array");
    assert_eq!(results.len(), 1);
    let r = &results[0];
    assert_eq!(r["ruleId"].as_str(), Some("P1"));
    assert_eq!(r["level"].as_str(), Some("error"));
    let loc = &r["locations"][0]["physicalLocation"];
    assert_eq!(
        loc["artifactLocation"]["uri"].as_str(),
        Some("crates/detlint/tests/fixtures/r1.rs")
    );
    assert_eq!(loc["region"]["startLine"].as_u64(), Some(4));
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let json = pool.install(|| {
            let report = scan(&[
                "d1.rs",
                "d2.rs",
                "f1.rs",
                "n1.rs",
                "r1.rs",
                "x1.rs",
                "i1.rs",
                "l1.rs",
                "clean.rs",
                "allowed.rs",
            ]);
            detlint::render_json(&report)
        });
        outputs.push(json);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}

#[test]
fn allow_without_reason_is_reported_as_a0_and_does_not_suppress() {
    let root = repo_root();
    let dir = root.join("target/detlint-test");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("no_reason.rs");
    std::fs::write(
        &path,
        "pub fn f(m: &std::collections::HashMap<u32, u32>) -> usize {\n\
         // detlint: allow(D1)\n\
         m.iter().count()\n}\n",
    )
    .expect("write scratch fixture");
    let report = detlint::run(&root, &Config::default(), &[path]).expect("scan");
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"A0"), "{rules:?}");
    assert!(rules.contains(&"D1"), "{rules:?}");
}

#[test]
fn binary_exits_nonzero_on_violations_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_detlint");
    let root = repo_root();
    let cfg = fixture("detlint.toml");

    let dirty = Command::new(bin)
        .current_dir(&root)
        .args(["--config"])
        .arg(&cfg)
        .arg(fixture("r1.rs"))
        .output()
        .expect("run detlint on dirty fixture");
    assert_eq!(dirty.status.code(), Some(1), "{dirty:?}");
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(stdout.contains("r1.rs:4: P1:"), "{stdout}");

    let clean = Command::new(bin)
        .current_dir(&root)
        .args(["--config"])
        .arg(&cfg)
        .arg(fixture("clean.rs"))
        .output()
        .expect("run detlint on clean fixture");
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");

    let missing = Command::new(bin)
        .current_dir(&root)
        .args(["--config", "does-not-exist.toml"])
        .arg(fixture("clean.rs"))
        .output()
        .expect("run detlint with missing config");
    assert_eq!(missing.status.code(), Some(2), "{missing:?}");
}

#[test]
fn vendor_crates_are_scanned_and_subject_to_p1() {
    let root = repo_root();
    // `vendor/rayon` is in the real workspace config's P1 list, so the
    // default scan set must include its sources …
    let text = std::fs::read_to_string(root.join("detlint.toml")).expect("workspace config");
    let cfg = detlint::config::parse(&text).expect("workspace config parses");
    assert!(
        cfg.p1_crates.iter().any(|c| c == "vendor/rayon"),
        "{:?}",
        cfg.p1_crates
    );
    let vendor: Vec<String> = cfg
        .p1_crates
        .iter()
        .filter(|c| c.starts_with("vendor/"))
        .cloned()
        .collect();
    let targets = detlint::default_targets(&root, &vendor).expect("walk workspace");
    assert!(
        targets
            .iter()
            .any(|p| p.ends_with("vendor/rayon/src/pool.rs")),
        "vendor/rayon missing from default targets"
    );
    // … and an unwrap in vendored non-test code must be flagged as P1
    // against the `vendor/rayon` crate name.
    let dir = std::env::temp_dir().join(format!("detlint-vendor-{}", std::process::id()));
    let src = dir.join("vendor/rayon/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("bad.rs"),
        "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n",
    )
    .expect("write fixture");
    let report =
        detlint::run(&dir, &cfg, &[PathBuf::from("vendor/rayon/src/bad.rs")]).expect("scan");
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"P1"), "{rules:?}");
    std::fs::remove_dir_all(&dir).ok();
}
