//! A lightweight item parser over the token stream.
//!
//! This is not a Rust parser; it is a structure recoverer tuned for what
//! the semantic rules need: which functions exist (module path, impl
//! receiver, visibility, `self` mode), which enums exist (names and
//! variants), which struct fields are `Mutex`es, and — per function body —
//! the call sites, panic sites, `match` arms and lock acquisitions.
//!
//! Bodies are analyzed with flat token walks, not expression trees. The
//! known approximations (closures attributed to the enclosing function,
//! struct-literal braces treated as block scopes, tuple-struct patterns
//! surfacing as call-shaped tokens) are all conservative for the rules
//! built on top: they can add call-graph edges, never hide a panic site
//! or an acquisition. See DESIGN.md §4.9 for the soundness discussion.

use crate::lexer::{Tok, TokKind};

/// Everything recovered from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub enums: Vec<EnumItem>,
    pub mutex_fields: Vec<MutexField>,
}

/// A workspace-defined enum and its variant names.
#[derive(Debug)]
pub struct EnumItem {
    pub name: String,
    pub variants: Vec<String>,
    pub line: usize,
}

/// A struct field whose type mentions `Mutex` (the L1 lock universe).
#[derive(Debug)]
pub struct MutexField {
    pub name: String,
    pub line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Scoped,
    Priv,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    None,
    ByRef,
    ByRefMut,
    ByValue,
}

/// One `fn` item (free function, inherent/trait method, or trait default).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Inline `mod` path within the file (file-level path is added by the
    /// symbol table).
    pub module: Vec<String>,
    /// Surrounding `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    pub vis: Vis,
    pub receiver: Receiver,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Under `#[cfg(test)]` / `#[test]` — invisible to every rule.
    pub is_test: bool,
    pub body: BodyFacts,
}

/// Flat facts recovered from a function body.
#[derive(Debug, Default)]
pub struct BodyFacts {
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
    pub matches: Vec<MatchExpr>,
    pub acquires: Vec<Acquire>,
}

#[derive(Debug)]
pub struct CallSite {
    pub line: usize,
    pub target: CallTarget,
    /// Lock names held when the call is made (L1).
    pub held: Vec<String>,
}

#[derive(Debug)]
pub enum CallTarget {
    /// `a::b::f(…)` or bare `f(…)` — path segments including the name.
    Path(Vec<String>),
    /// `recv.m(…)`.
    Method { name: String, on_self: bool },
}

/// A lexical panic site: `panic!`/`unreachable!`/`todo!`/`unimplemented!`
/// or an `.unwrap()` / `.expect(…)` method call.
#[derive(Debug)]
pub struct PanicSite {
    pub line: usize,
    /// Display form matching the historical R1 wording, e.g. `.unwrap()`.
    pub what: &'static str,
}

#[derive(Debug)]
pub struct MatchExpr {
    pub line: usize,
    pub arms: Vec<MatchArm>,
}

#[derive(Debug)]
pub struct MatchArm {
    pub line: usize,
    /// Bare unguarded `_` pattern.
    pub wildcard: bool,
    /// `A::B` adjacencies seen in the pattern (guard excluded), for
    /// workspace-enum identification.
    pub enum_paths: Vec<(String, String)>,
}

/// One lock acquisition event (L1): a call to a configured acquire
/// function with a field-path argument, a `.lock()` on a field path, or a
/// condvar `.wait(guard)` re-acquire.
#[derive(Debug)]
pub struct Acquire {
    pub line: usize,
    /// Field name of the lock being acquired.
    pub lock: String,
    /// Lock names already held at this point (the waited/re-acquired lock
    /// itself excluded).
    pub held: Vec<String>,
    /// True for condvar `.wait(guard)` — a re-acquire of `lock`, not a
    /// fresh nesting edge against itself.
    pub wait: bool,
}

const PANIC_MACROS: &[(&str, &str)] = &[
    ("panic", "panic!"),
    ("unreachable", "unreachable!"),
    ("todo", "todo!"),
    ("unimplemented", "unimplemented!"),
];

struct Ctx {
    module: Vec<String>,
    impl_type: Option<String>,
    in_test: bool,
}

/// Parse one file's token stream (over the cleaned source).
pub fn parse(toks: &[Tok], acquire_fns: &[String]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut cur = Cursor { t: toks, i: 0 };
    parse_items(
        &mut cur,
        &Ctx {
            module: Vec::new(),
            impl_type: None,
            in_test: false,
        },
        acquire_fns,
        &mut out,
        false,
    );
    out
}

struct Cursor<'a> {
    t: &'a [Tok],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.t.get(self.i)
    }
    fn peek_at(&self, n: usize) -> Option<&'a Tok> {
        self.t.get(self.i + n)
    }
    fn at(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is(s))
    }
    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.t.get(self.i);
        self.i += 1;
        t
    }
    fn done(&self) -> bool {
        self.i >= self.t.len()
    }
    /// Consume one token; if it opens a `(`/`[`/`{` group, consume the
    /// whole balanced group.
    fn skip_one(&mut self) {
        let Some(t) = self.bump() else { return };
        let close = match t.text.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return,
        };
        let open = t.text.clone();
        let mut depth = 1usize;
        while depth > 0 && !self.done() {
            let Some(n) = self.bump() else { break };
            if n.is(&open) {
                depth += 1;
            } else if n.is(close) {
                depth -= 1;
            }
        }
    }
    /// At `<`: consume through the matching `>`. Sound in declaration
    /// position (generics), where comparison operators cannot appear.
    fn skip_angles(&mut self) {
        if !self.at("<") {
            return;
        }
        let mut depth = 0usize;
        while !self.done() {
            let Some(t) = self.bump() else { break };
            if t.is("<") {
                depth += 1;
            } else if t.is(">") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }
    /// Consume until one of `stops` at the current nesting depth;
    /// the stop token itself is not consumed.
    fn skip_until(&mut self, stops: &[&str]) {
        while let Some(t) = self.peek() {
            if stops.contains(&t.text.as_str()) {
                return;
            }
            self.skip_one();
        }
    }
}

/// Attribute token texts for a test-gating attribute.
fn is_test_attr(attr: &[String]) -> bool {
    let s: Vec<&str> = attr.iter().map(String::as_str).collect();
    s == ["test"] || s == ["cfg", "(", "test", ")"]
}

fn parse_items(
    cur: &mut Cursor<'_>,
    ctx: &Ctx,
    acquire_fns: &[String],
    out: &mut ParsedFile,
    inside_braces: bool,
) {
    let mut pending_test = false;
    let mut vis = Vis::Priv;
    while !cur.done() {
        if inside_braces && cur.at("}") {
            cur.bump();
            return;
        }
        let Some(tok) = cur.peek() else { return };
        if tok.is("#") {
            cur.bump();
            if cur.at("!") {
                cur.bump();
            }
            if cur.at("[") {
                let start = cur.i + 1;
                cur.skip_one();
                let attr: Vec<String> = cur.t[start..cur.i.saturating_sub(1)]
                    .iter()
                    .map(|t| t.text.clone())
                    .collect();
                if is_test_attr(&attr) {
                    pending_test = true;
                }
            }
            continue;
        }
        if tok.is_ident("pub") {
            cur.bump();
            if cur.at("(") {
                vis = Vis::Scoped;
                cur.skip_one();
            } else {
                vis = Vis::Pub;
            }
            continue;
        }
        if tok.kind == TokKind::Ident {
            match tok.text.as_str() {
                "fn" => {
                    parse_fn(cur, ctx, vis, pending_test, acquire_fns, out);
                    pending_test = false;
                    vis = Vis::Priv;
                    continue;
                }
                "mod" => {
                    cur.bump();
                    let name = cur
                        .peek()
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone());
                    if name.is_some() {
                        cur.bump();
                    }
                    if cur.at("{") {
                        cur.bump();
                        let mut module = ctx.module.clone();
                        if let Some(n) = name {
                            module.push(n);
                        }
                        parse_items(
                            cur,
                            &Ctx {
                                module,
                                impl_type: None,
                                in_test: ctx.in_test || pending_test,
                            },
                            acquire_fns,
                            out,
                            true,
                        );
                    } else if cur.at(";") {
                        cur.bump();
                    }
                    pending_test = false;
                    vis = Vis::Priv;
                    continue;
                }
                "enum" => {
                    parse_enum(cur, ctx.in_test || pending_test, out);
                    pending_test = false;
                    vis = Vis::Priv;
                    continue;
                }
                "struct" | "union" => {
                    parse_struct(cur, out);
                    pending_test = false;
                    vis = Vis::Priv;
                    continue;
                }
                "impl" | "trait" => {
                    let is_trait = tok.is_ident("trait");
                    cur.bump();
                    let ty = parse_impl_head(cur, is_trait);
                    if cur.at("{") {
                        cur.bump();
                        parse_items(
                            cur,
                            &Ctx {
                                module: ctx.module.clone(),
                                impl_type: ty,
                                in_test: ctx.in_test || pending_test,
                            },
                            acquire_fns,
                            out,
                            true,
                        );
                    } else if cur.at(";") {
                        cur.bump();
                    }
                    pending_test = false;
                    vis = Vis::Priv;
                    continue;
                }
                "macro_rules" => {
                    cur.bump();
                    if cur.at("!") {
                        cur.bump();
                    }
                    if cur.peek().is_some_and(|t| t.kind == TokKind::Ident) {
                        cur.bump();
                    }
                    cur.skip_one();
                    pending_test = false;
                    vis = Vis::Priv;
                    continue;
                }
                "use" | "type" | "static" | "extern" => {
                    // `extern "C" fn` / `const fn` style modifiers are
                    // handled below; these forms end at `;` or a block.
                    if tok.is_ident("extern") && cur.peek_at(2).is_some_and(|t| t.is_ident("fn")) {
                        cur.bump();
                        cur.bump();
                        continue;
                    }
                    cur.skip_until(&[";", "{", "}"]);
                    if cur.at(";") {
                        cur.bump();
                    } else if cur.at("{") {
                        cur.skip_one();
                    }
                    pending_test = false;
                    vis = Vis::Priv;
                    continue;
                }
                "const" | "async" | "unsafe" => {
                    // Modifier before `fn`, or a `const NAME: …;` item.
                    let next_is_fn = (1..=3)
                        .filter_map(|n| cur.peek_at(n))
                        .any(|t| t.is_ident("fn"))
                        && cur
                            .peek_at(1)
                            .is_some_and(|t| t.kind == TokKind::Ident || t.is_ident("fn"));
                    cur.bump();
                    if tok.is_ident("const") && !next_is_fn {
                        cur.skip_until(&[";", "}"]);
                        if cur.at(";") {
                            cur.bump();
                        }
                        pending_test = false;
                        vis = Vis::Priv;
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.skip_one();
    }
}

/// After `impl`/`trait`: skip generics, recover the type name, stop at
/// the opening `{` (or `;`). For `impl Trait for Type` the name is
/// `Type`; for `impl Type` / `trait Name` it is the head name.
fn parse_impl_head(cur: &mut Cursor<'_>, is_trait: bool) -> Option<String> {
    cur.skip_angles();
    let mut head: Vec<Tok> = Vec::new();
    let mut after_for: Option<usize> = None;
    while let Some(t) = cur.peek() {
        if t.is("{") || t.is(";") {
            break;
        }
        if t.is_ident("where") {
            cur.skip_until(&["{", ";"]);
            break;
        }
        if t.is("<") {
            cur.skip_angles();
            head.push(Tok {
                kind: TokKind::Punct,
                text: "<>".to_string(),
                line: 0,
            });
            continue;
        }
        if t.is_ident("for") {
            after_for = Some(head.len());
            cur.bump();
            continue;
        }
        head.push(t.clone());
        cur.bump();
        if is_trait {
            // Only the trait name matters; `trait X: Bound` bounds can
            // contain `for<'a>` which must not look like an impl-for.
            break;
        }
    }
    if is_trait {
        return head
            .first()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
    }
    let ty = &head[after_for.unwrap_or(0)..];
    // Last path-segment identifier: `a::b::Name` → `Name`; skip `&`,
    // `dyn`, `mut`, lifetimes.
    let mut name = None;
    let mut idx = 0usize;
    while idx < ty.len() {
        let t = &ty[idx];
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut" | "for") {
            name = Some(t.text.clone());
        }
        idx += 1;
    }
    name
}

fn parse_enum(cur: &mut Cursor<'_>, in_test: bool, out: &mut ParsedFile) {
    let kw = cur.bump();
    let line = kw.map_or(0, |t| t.line);
    let Some(name) = cur
        .peek()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
    else {
        return;
    };
    cur.bump();
    cur.skip_angles();
    cur.skip_until(&["{", ";"]);
    if !cur.at("{") {
        if cur.at(";") {
            cur.bump();
        }
        return;
    }
    cur.bump();
    let mut variants = Vec::new();
    let mut expect_variant = true;
    while let Some(t) = cur.peek() {
        if t.is("}") {
            cur.bump();
            break;
        }
        if t.is("#") {
            cur.bump();
            if cur.at("[") {
                cur.skip_one();
            }
            continue;
        }
        if t.is(",") {
            cur.bump();
            expect_variant = true;
            continue;
        }
        if expect_variant && t.kind == TokKind::Ident {
            variants.push(t.text.clone());
            expect_variant = false;
            cur.bump();
            continue;
        }
        // Variant payload `(…)` / `{…}` or discriminant `= expr`.
        cur.skip_one();
    }
    if !in_test {
        out.enums.push(EnumItem {
            name,
            variants,
            line,
        });
    }
}

fn parse_struct(cur: &mut Cursor<'_>, out: &mut ParsedFile) {
    cur.bump();
    if cur.peek().is_some_and(|t| t.kind == TokKind::Ident) {
        cur.bump();
    }
    cur.skip_angles();
    cur.skip_until(&["{", ";", "("]);
    if cur.at("(") {
        cur.skip_one();
        cur.skip_until(&[";", "}"]);
        if cur.at(";") {
            cur.bump();
        }
        return;
    }
    if !cur.at("{") {
        if cur.at(";") {
            cur.bump();
        }
        return;
    }
    cur.bump();
    // Field grammar: `[attrs] [pub[(…)]] name : type ,` at depth 0.
    loop {
        while cur.at("#") {
            cur.bump();
            if cur.at("[") {
                cur.skip_one();
            }
        }
        if cur.at("}") || cur.done() {
            cur.bump();
            return;
        }
        if cur.at("pub") {
            cur.bump();
            if cur.at("(") {
                cur.skip_one();
            }
        }
        let field = cur
            .peek()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.clone(), t.line));
        cur.bump();
        if !cur.at(":") {
            cur.skip_until(&[",", "}"]);
            if cur.at(",") {
                cur.bump();
            }
            continue;
        }
        cur.bump();
        let ty_start = cur.i;
        cur.skip_until(&[",", "}"]);
        let is_mutex = cur.t[ty_start..cur.i].iter().any(|t| t.is_ident("Mutex"));
        if is_mutex {
            if let Some((name, line)) = field {
                out.mutex_fields.push(MutexField { name, line });
            }
        }
        if cur.at(",") {
            cur.bump();
        }
    }
}

fn parse_fn(
    cur: &mut Cursor<'_>,
    ctx: &Ctx,
    vis: Vis,
    attr_test: bool,
    acquire_fns: &[String],
    out: &mut ParsedFile,
) {
    let kw = cur.bump();
    let line = kw.map_or(0, |t| t.line);
    let Some(name) = cur
        .peek()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
    else {
        return;
    };
    cur.bump();
    cur.skip_angles();
    if !cur.at("(") {
        return;
    }
    // Receiver: peek inside the parameter list before skipping it.
    let receiver = {
        let mut j = cur.i + 1;
        let mut amp = false;
        let mut is_mut = false;
        loop {
            let Some(t) = cur.t.get(j) else {
                break Receiver::None;
            };
            match t.text.as_str() {
                "&" => {
                    amp = true;
                    j += 1;
                }
                "mut" => {
                    is_mut = true;
                    j += 1;
                }
                "self" => {
                    break if amp {
                        if is_mut {
                            Receiver::ByRefMut
                        } else {
                            Receiver::ByRef
                        }
                    } else {
                        Receiver::ByValue
                    };
                }
                _ if t.kind == TokKind::Lifetime => j += 1,
                _ => break Receiver::None,
            }
        }
    };
    cur.skip_one(); // whole parameter list
                    // Return type / where clause: scan to the body `{` or a `;` (trait
                    // method declaration), skipping nested groups.
    loop {
        let Some(t) = cur.peek() else { return };
        if t.is("{") || t.is(";") {
            break;
        }
        if t.is("<") {
            cur.skip_angles();
        } else {
            cur.skip_one();
        }
    }
    let mut body = BodyFacts::default();
    if cur.at("{") {
        let start = cur.i;
        cur.skip_one();
        let toks = &cur.t[start + 1..cur.i.saturating_sub(1)];
        body = analyze_body(toks, acquire_fns);
    } else {
        cur.bump(); // `;`
    }
    out.fns.push(FnItem {
        name,
        module: ctx.module.clone(),
        impl_type: ctx.impl_type.clone(),
        vis,
        receiver,
        line,
        is_test: ctx.in_test || attr_test,
        body,
    });
}

/// One flat walk for calls/panics/acquisitions with lock-hold tracking,
/// plus a second walk for `match` expressions.
fn analyze_body(toks: &[Tok], acquire_fns: &[String]) -> BodyFacts {
    let mut facts = BodyFacts::default();
    walk_holds(toks, acquire_fns, &mut facts);
    walk_matches(toks, &mut facts);
    facts
}

#[derive(Debug)]
struct Hold {
    var: String,
    lock: String,
    scope: usize,
}

fn walk_holds(toks: &[Tok], acquire_fns: &[String], facts: &mut BodyFacts) {
    let mut holds: Vec<Hold> = Vec::new();
    // Every variable ever bound to a guard in this body: a re-assignment
    // to one re-establishes a hold even after an explicit `drop` (the
    // worker-loop `drop(shared); … shared = lock(&p.shared)` shape).
    let mut known_guards: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut scope = 0usize;
    // `let [mut] name [: …] = …` — guard binding target for the current
    // statement, with the scope it binds into.
    let mut pending_let: Option<(String, usize)> = None;
    // `name = …` where `name` is an existing guard: re-acquire target.
    let mut pending_assign: Option<String> = None;
    let held_locks = |holds: &[Hold], except: Option<&str>| -> Vec<String> {
        let mut v: Vec<String> = holds
            .iter()
            .filter(|h| except != Some(h.lock.as_str()))
            .map(|h| h.lock.clone())
            .collect();
        v.dedup();
        v
    };
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                scope += 1;
                i += 1;
                continue;
            }
            "}" => {
                holds.retain(|h| h.scope < scope);
                scope = scope.saturating_sub(1);
                pending_let = None;
                pending_assign = None;
                i += 1;
                continue;
            }
            ";" => {
                pending_let = None;
                pending_assign = None;
                i += 1;
                continue;
            }
            _ => {}
        }
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                if toks.get(j + 1).is_some_and(|t| t.is("=") || t.is(":")) {
                    pending_let = Some((name.text.clone(), scope));
                }
            }
            i += 1;
            continue;
        }
        // `drop(guard)` releases a hold early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is("("))
            && toks.get(i + 3).is_some_and(|t| t.is(")"))
        {
            if let Some(var) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                holds.retain(|h| h.var != var.text);
                i += 4;
                continue;
            }
        }
        // Guard reassignment: `g = …` (not `==`, `<=`, `!=`, …).
        if t.kind == TokKind::Ident
            && known_guards.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is("="))
            && !toks.get(i + 2).is_some_and(|n| n.is("="))
            && !toks
                .get(i.wrapping_sub(1))
                .is_some_and(|p| matches!(p.text.as_str(), "=" | "<" | ">" | "!" | "."))
        {
            pending_assign = Some(t.text.clone());
            i += 2;
            continue;
        }
        // Panic macros: `panic!(`, `unreachable!(`, …
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.is("!")) {
            if let Some((_, what)) = PANIC_MACROS.iter().find(|(m, _)| t.text == *m) {
                facts.panics.push(PanicSite { line: t.line, what });
                i += 2;
                continue;
            }
        }
        // Call shapes: Ident `(` — either a path call or a method call
        // (previous token `.`).
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.is("(")) {
            let is_method = i > 0 && toks[i - 1].is(".");
            if is_method {
                let name = t.text.as_str();
                if name == "unwrap" && toks.get(i + 2).is_some_and(|n| n.is(")")) {
                    facts.panics.push(PanicSite {
                        line: t.line,
                        what: ".unwrap()",
                    });
                    i += 3;
                    continue;
                }
                if name == "expect" {
                    facts.panics.push(PanicSite {
                        line: t.line,
                        what: ".expect",
                    });
                    i += 2;
                    continue;
                }
                // Condvar wait: `cv.wait(guard)` where `guard` is held —
                // a re-acquire of that guard's lock, not a method edge
                // (resolving it would fabricate a self-edge on the lock).
                if name == "wait" {
                    if let Some(arg) = toks.get(i + 2).filter(|a| a.kind == TokKind::Ident) {
                        if let Some(h) = holds.iter().find(|h| h.var == arg.text) {
                            let lock = h.lock.clone();
                            facts.acquires.push(Acquire {
                                line: t.line,
                                lock: lock.clone(),
                                held: held_locks(&holds, Some(&lock)),
                                wait: true,
                            });
                            if let Some((var, ps)) = pending_let.take() {
                                // `let g2 = cv.wait(g)` — the old guard
                                // was consumed; the new binding holds the
                                // same lock.
                                known_guards.insert(var.clone());
                                holds.retain(|h| h.lock != lock);
                                holds.push(Hold {
                                    var,
                                    lock,
                                    scope: ps,
                                });
                            }
                            pending_assign = None;
                            i += 2;
                            continue;
                        }
                    }
                }
                // `.lock()` on a field path: `self.f.lock()` / `x.f.lock()`.
                if acquire_fns.iter().any(|a| a == name) {
                    if let Some(lock) = field_before_dot(toks, i - 1) {
                        record_acquire(
                            &mut holds,
                            &mut known_guards,
                            scope,
                            &mut pending_let,
                            &mut pending_assign,
                            facts,
                            t.line,
                            lock,
                            &held_locks,
                        );
                        i += 2;
                        continue;
                    }
                }
                facts.calls.push(CallSite {
                    line: t.line,
                    target: CallTarget::Method {
                        name: t.text.clone(),
                        on_self: receiver_is_self(toks, i - 1),
                    },
                    held: held_locks(&holds, None),
                });
                i += 2;
                continue;
            }
            // Path call: gather `a::b::f` segments backwards.
            let mut segs = vec![t.text.clone()];
            let mut j = i;
            while j >= 2 && toks[j - 1].is("::") && toks[j - 2].kind == TokKind::Ident {
                segs.insert(0, toks[j - 2].text.clone());
                j -= 2;
            }
            if acquire_fns
                .iter()
                .any(|a| Some(a.as_str()) == segs.last().map(String::as_str))
            {
                if let Some(lock) = lock_arg_name(toks, i + 1) {
                    record_acquire(
                        &mut holds,
                        &mut known_guards,
                        scope,
                        &mut pending_let,
                        &mut pending_assign,
                        facts,
                        t.line,
                        lock,
                        &held_locks,
                    );
                    i += 2;
                    continue;
                }
            }
            facts.calls.push(CallSite {
                line: t.line,
                target: CallTarget::Path(segs),
                held: held_locks(&holds, None),
            });
            i += 2;
            continue;
        }
        i += 1;
    }
}

/// `held_locks(holds, skip_var)`: the ordered lock names currently held.
type HeldLocksFn = dyn Fn(&[Hold], Option<&str>) -> Vec<String>;

/// Register a non-wait acquisition, binding or rebinding a guard.
#[allow(clippy::too_many_arguments)]
fn record_acquire(
    holds: &mut Vec<Hold>,
    known_guards: &mut std::collections::BTreeSet<String>,
    scope: usize,
    pending_let: &mut Option<(String, usize)>,
    pending_assign: &mut Option<String>,
    facts: &mut BodyFacts,
    line: usize,
    lock: String,
    held_locks: &HeldLocksFn,
) {
    facts.acquires.push(Acquire {
        line,
        lock: lock.clone(),
        held: held_locks(holds, None),
        wait: false,
    });
    if let Some((var, let_scope)) = pending_let.take() {
        known_guards.insert(var.clone());
        holds.push(Hold {
            var,
            lock,
            scope: let_scope,
        });
    } else if let Some(var) = pending_assign.take() {
        if let Some(h) = holds.iter_mut().find(|h| h.var == var) {
            h.lock = lock;
        } else {
            // Re-established after an explicit `drop(var)`.
            holds.push(Hold { var, lock, scope });
        }
    }
    // Otherwise: a transient acquisition (guard dropped at end of
    // statement) — an event, but no ongoing hold.
}

/// For a method call whose `.` sits at `dot`: the field name of a
/// `self.field` / `recv.field` receiver chain, or `None` for bare
/// identifiers and complex receivers.
fn field_before_dot(toks: &[Tok], dot: usize) -> Option<String> {
    if dot < 1 {
        return None;
    }
    let field = toks.get(dot - 1)?;
    if field.kind != TokKind::Ident {
        return None;
    }
    // Require a `.` before the field so a bare `m.lock()` (local binding,
    // unnameable lock) is skipped.
    if dot >= 2 && toks[dot - 2].is(".") {
        return Some(field.text.clone());
    }
    None
}

/// True when the receiver chain of a method call bottoms out at `self`
/// with a single hop (`self.m(…)`).
fn receiver_is_self(toks: &[Tok], dot: usize) -> bool {
    dot >= 1 && toks[dot - 1].is_ident("self")
}

/// For `lock(&self.shared)` style calls with the `(` at `open`: the lock
/// field name — the last plain identifier of the first argument's field
/// path, with index expressions (`[i]`) skipped.
fn lock_arg_name(toks: &[Tok], open: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut i = open;
    let mut candidate: Option<String> = None;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "[" => {
                // Skip the whole index expression.
                let mut d = 1usize;
                i += 1;
                while i < toks.len() && d > 0 {
                    if toks[i].is("[") {
                        d += 1;
                    } else if toks[i].is("]") {
                        d -= 1;
                    }
                    i += 1;
                }
                continue;
            }
            "," if depth == 1 => break,
            _ => {}
        }
        if depth == 1 && t.kind == TokKind::Ident && !t.is_ident("self") && !t.is_ident("mut") {
            candidate = Some(t.text.clone());
        }
        i += 1;
    }
    candidate
}

/// Second walk: recover every `match` expression's arm structure.
fn walk_matches(toks: &[Tok], facts: &mut BodyFacts) {
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let prev_dot = i > 0 && toks[i - 1].is(".");
        if t.is_ident("match") && !prev_dot {
            if let Some(expr) = parse_match(toks, i) {
                facts.matches.push(expr);
            }
        }
        i += 1;
    }
}

/// Parse the match whose `match` keyword sits at `kw`. Nested matches in
/// arm bodies are found by the outer linear scan, not here.
fn parse_match(toks: &[Tok], kw: usize) -> Option<MatchExpr> {
    let line = toks[kw].line;
    // Scrutinee: to the `{` at group depth 0.
    let mut i = kw + 1;
    let mut depth = 0usize;
    loop {
        let t = toks.get(i)?;
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i += 1; // past `{`
    let mut arms = Vec::new();
    // Arm loop at relative depth 1 inside the match braces.
    loop {
        // Skip separators and attributes.
        while toks.get(i).is_some_and(|t| t.is(",") || t.is("|")) {
            i += 1;
        }
        while toks.get(i).is_some_and(|t| t.is("#")) {
            i += 1;
            if toks.get(i).is_some_and(|t| t.is("[")) {
                i = skip_group(toks, i);
            }
        }
        let t = toks.get(i)?;
        if t.is("}") {
            break;
        }
        // Pattern: to `=>` at relative depth 0.
        let pat_start = i;
        let mut d = 0usize;
        let mut guard_at: Option<usize> = None;
        loop {
            let t = toks.get(i)?;
            match t.text.as_str() {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => d = d.saturating_sub(1),
                "=>" if d == 0 => break,
                "if" if d == 0 && guard_at.is_none() => guard_at = Some(i),
                _ => {}
            }
            i += 1;
        }
        let pat_end = guard_at.unwrap_or(i);
        let pat = &toks[pat_start..pat_end];
        let wildcard = pat.len() == 1 && pat[0].is("_") && guard_at.is_none();
        let mut enum_paths = Vec::new();
        for w in 0..pat.len().saturating_sub(2) {
            if pat[w].kind == TokKind::Ident
                && pat[w + 1].is("::")
                && pat[w + 2].kind == TokKind::Ident
            {
                enum_paths.push((pat[w].text.clone(), pat[w + 2].text.clone()));
            }
        }
        arms.push(MatchArm {
            line: toks[pat_start].line,
            wildcard,
            enum_paths,
        });
        i += 1; // past `=>`
                // Arm body: a balanced block, or an expression to `,`/`}` at
                // relative depth 0.
        if toks.get(i).is_some_and(|t| t.is("{")) {
            i = skip_group(toks, i);
        } else {
            let mut d = 0usize;
            loop {
                let Some(t) = toks.get(i) else {
                    return Some(MatchExpr { line, arms });
                };
                match t.text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" => d = d.saturating_sub(1),
                    "}" => {
                        if d == 0 {
                            return Some(MatchExpr { line, arms });
                        }
                        d -= 1;
                    }
                    "," if d == 0 => break,
                    _ => {}
                }
                i += 1;
            }
        }
    }
    Some(MatchExpr { line, arms })
}

/// With `toks[at]` an opener, return the index just past its close.
fn skip_group(toks: &[Tok], at: usize) -> usize {
    let close = match toks[at].text.as_str() {
        "(" => ")",
        "[" => "]",
        "{" => "}",
        _ => return at + 1,
    };
    let open = toks[at].text.as_str();
    let mut depth = 1usize;
    let mut i = at + 1;
    while i < toks.len() && depth > 0 {
        if toks[i].text == open {
            depth += 1;
        } else if toks[i].text == close {
            depth -= 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse_src(src: &str) -> ParsedFile {
        let lexed = lexer::strip(src);
        let toks = lexer::tokenize(&lexed.cleaned);
        parse(&toks, &["lock".to_string()])
    }

    #[test]
    fn recovers_fns_mods_impls() {
        let src = "pub fn free() {}\n\
                   mod inner { pub(crate) fn nested() {} }\n\
                   struct S { x: u32 }\n\
                   impl S { pub fn m(&mut self) { self.x += 1; } fn p(&self) {} }\n";
        let p = parse_src(src);
        let names: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            [
                ("free", None),
                ("nested", None),
                ("m", Some("S")),
                ("p", Some("S"))
            ]
        );
        assert_eq!(p.fns[0].vis, Vis::Pub);
        assert_eq!(p.fns[1].vis, Vis::Scoped);
        assert_eq!(p.fns[1].module, ["inner"]);
        assert_eq!(p.fns[2].receiver, Receiver::ByRefMut);
        assert_eq!(p.fns[2].vis, Vis::Pub);
        assert_eq!(p.fns[3].receiver, Receiver::ByRef);
    }

    #[test]
    fn trait_impl_type_is_the_implementing_type() {
        let src = "impl std::fmt::Display for Thing {\n\
                   fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { write(f) }\n\
                   }\n";
        let p = parse_src(src);
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Thing"));
        assert_eq!(p.fns[0].name, "fmt");
    }

    #[test]
    fn enums_and_variants() {
        let src = "pub enum Kind { A, B(u32), C { x: u8 }, D = 4 }\n\
                   enum Empty {}\n";
        let p = parse_src(src);
        assert_eq!(p.enums[0].name, "Kind");
        assert_eq!(p.enums[0].variants, ["A", "B", "C", "D"]);
        assert_eq!(p.enums[1].name, "Empty");
        assert!(p.enums[1].variants.is_empty());
    }

    #[test]
    fn mutex_fields_found_condvars_ignored() {
        let src = "struct Shared { queue: Vec<u32> }\n\
                   struct Pool { shared: Mutex<Shared>, ready: Condvar, \
                   slots: Vec<std::sync::Mutex<Option<u8>>> }\n";
        let p = parse_src(src);
        let names: Vec<&str> = p.mutex_fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["shared", "slots"]);
    }

    #[test]
    fn panic_sites_and_calls() {
        let src = "fn f(o: Option<u32>) -> u32 {\n\
                   helper();\n\
                   crate::util::go(1);\n\
                   o.expect(\"msg\");\n\
                   if bad { panic!(\"no\") }\n\
                   o.unwrap()\n\
                   }\n";
        let p = parse_src(src);
        let f = &p.fns[0];
        let whats: Vec<&str> = f.body.panics.iter().map(|s| s.what).collect();
        assert_eq!(whats, [".expect", "panic!", ".unwrap()"]);
        assert_eq!(f.body.panics[0].line, 3);
        assert_eq!(f.body.panics[2].line, 5);
        let paths: Vec<Vec<String>> = f
            .body
            .calls
            .iter()
            .filter_map(|c| match &c.target {
                CallTarget::Path(p) => Some(p.clone()),
                CallTarget::Method { .. } => None,
            })
            .collect();
        assert!(paths.contains(&vec!["helper".to_string()]));
        assert!(paths.contains(&vec![
            "crate".to_string(),
            "util".to_string(),
            "go".to_string()
        ]));
    }

    #[test]
    fn unwrap_or_is_not_a_panic_site() {
        let p = parse_src("fn f(o: Option<u32>) -> u32 { o.unwrap_or(3) }\n");
        assert!(p.fns[0].body.panics.is_empty());
    }

    #[test]
    fn test_items_are_marked() {
        let src = "#[cfg(test)]\nmod tests {\n fn helper() { x.unwrap(); }\n\
                   #[test]\n fn t() {}\n}\n\
                   fn lib() {}\n";
        let p = parse_src(src);
        assert!(p
            .fns
            .iter()
            .find(|f| f.name == "helper")
            .is_some_and(|f| f.is_test));
        assert!(p
            .fns
            .iter()
            .find(|f| f.name == "t")
            .is_some_and(|f| f.is_test));
        assert!(p
            .fns
            .iter()
            .find(|f| f.name == "lib")
            .is_some_and(|f| !f.is_test));
    }

    #[test]
    fn match_arms_wildcards_and_enum_paths() {
        let src = "fn f(k: Kind) {\n\
                   match k {\n\
                   Kind::A => {}\n\
                   other::Kind::B(x) => use_it(x),\n\
                   _ if cond() => {}\n\
                   _ => {}\n\
                   }\n\
                   }\n";
        let p = parse_src(src);
        let m = &p.fns[0].body.matches[0];
        assert_eq!(m.arms.len(), 4);
        assert!(m.arms[0].enum_paths.contains(&("Kind".into(), "A".into())));
        assert!(m.arms[1].enum_paths.contains(&("Kind".into(), "B".into())));
        assert!(!m.arms[2].wildcard, "guarded wildcard is not bare");
        assert!(m.arms[3].wildcard);
        assert_eq!(m.arms[3].line, 5);
    }

    #[test]
    fn nested_match_is_found() {
        let src = "fn f(a: K, b: K) {\n\
                   match a { K::X => match b { K::Y => {}, _ => {} }, _ => {} }\n\
                   }\n";
        let p = parse_src(src);
        assert_eq!(p.fns[0].body.matches.len(), 2);
    }

    #[test]
    fn lock_holds_and_order_events() {
        let src = "impl P { fn f(&self) {\n\
                   let g = lock(&self.a);\n\
                   let h = lock(&self.b);\n\
                   drop(h);\n\
                   lock(&self.c);\n\
                   } }\n";
        let p = parse_src(src);
        let acq = &p.fns[0].body.acquires;
        assert_eq!(acq.len(), 3);
        assert_eq!(acq[0].lock, "a");
        assert!(acq[0].held.is_empty());
        assert_eq!(acq[1].lock, "b");
        assert_eq!(acq[1].held, ["a"]);
        // `h` was dropped: only `a` held at the transient acquire of `c`.
        assert_eq!(acq[2].lock, "c");
        assert_eq!(acq[2].held, ["a"]);
    }

    #[test]
    fn scoped_guard_released_at_block_end() {
        let src = "fn f(p: &P) {\n\
                   { let g = lock(&p.a); use_it(&g); }\n\
                   lock(&p.b);\n\
                   }\n";
        let p = parse_src(src);
        let acq = &p.fns[0].body.acquires;
        assert_eq!(acq[1].lock, "b");
        assert!(acq[1].held.is_empty());
    }

    #[test]
    fn condvar_wait_is_a_reacquire_not_a_method_edge() {
        let src = "fn f(p: &P) {\n\
                   let mut g = lock(&p.remaining);\n\
                   while *g > 0 { g = p.done.wait(g); }\n\
                   }\n";
        let p = parse_src(src);
        let acq = &p.fns[0].body.acquires;
        assert_eq!(acq.len(), 2);
        assert!(acq[1].wait);
        assert_eq!(acq[1].lock, "remaining");
        assert!(acq[1].held.is_empty(), "own lock excluded from held set");
        assert!(!p.fns[0]
            .body
            .calls
            .iter()
            .any(|c| matches!(&c.target, CallTarget::Method { name, .. } if name == "wait")));
    }

    #[test]
    fn indexed_mutex_slot_names_the_field() {
        let src =
            "impl R { fn f(&self, i: usize) { let g = lock(&self.inputs[i]); use_it(g); } }\n";
        let p = parse_src(src);
        assert_eq!(p.fns[0].body.acquires[0].lock, "inputs");
    }

    #[test]
    fn calls_record_held_locks() {
        let src = "impl P { fn f(&self) {\n\
                   let g = lock(&self.shared);\n\
                   self.notify();\n\
                   } }\n";
        let p = parse_src(src);
        let call = p.fns[0]
            .body
            .calls
            .iter()
            .find(|c| matches!(&c.target, CallTarget::Method { name, .. } if name == "notify"))
            .expect("call");
        assert_eq!(call.held, ["shared"]);
    }
}
