//! The suppression grammar, shared by every rule family.
//!
//! An inline `// detlint: allow(RULE[, RULE…]) — reason` directive on the
//! flagged line, or in the contiguous block of comment-only lines
//! directly above it, suppresses matching diagnostics. An allow without a
//! reason does not suppress — it raises **A0** instead, so every
//! suppression in the tree stays audited. The committed `[[allow]]`
//! entries in `detlint.toml` (which are reason-checked at parse time)
//! match by rule + file + optional line substring.
//!
//! `allow(R1)` is accepted wherever `allow(P1)` is: P1 subsumes the old
//! per-line R1 rule and historical allows keep working.

use crate::lexer::Lexed;

/// An inline `detlint: allow(R1, N1) — reason` directive.
#[derive(Debug, Clone)]
pub struct InlineAllow {
    pub rules: Vec<String>,
    pub has_reason: bool,
}

/// Does an allow naming `allowed` suppress a diagnostic of `rule`?
pub fn rule_matches(allowed: &str, rule: &str) -> bool {
    allowed == rule || (rule == "P1" && allowed == "R1")
}

pub fn parse_inline_allow(comment: &str) -> Option<InlineAllow> {
    let key = "detlint: allow(";
    let start = comment.find(key)?;
    let rest = &comment[start + key.len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = rest[close + 1..].trim_start();
    let has_reason = ["—", "-", ":", "–"]
        .iter()
        .any(|sep| tail.strip_prefix(sep).is_some_and(|t| !t.trim().is_empty()));
    Some(InlineAllow { rules, has_reason })
}

/// Per-file suppression state, built once from the lexed views.
pub struct FileAllows {
    allows: Vec<Option<InlineAllow>>,
    /// Lines that contain only comment text (an allow block can extend
    /// upward through these).
    comment_only: Vec<bool>,
}

/// Outcome of probing the allows around one diagnostic.
#[derive(Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No allow in range.
    None,
    /// Suppressed by a reasoned allow.
    Suppressed,
    /// A matching allow exists but carries no reason: the diagnostic
    /// stands AND the allow line (0-based) must be flagged A0.
    MissingReason(usize),
}

impl FileAllows {
    pub fn build(lexed: &Lexed) -> Self {
        let clean_lines: Vec<&str> = lexed.cleaned.lines().collect();
        let allows: Vec<Option<InlineAllow>> = lexed
            .comments
            .iter()
            .map(|c| parse_inline_allow(c))
            .collect();
        let comment_only: Vec<bool> = lexed
            .comments
            .iter()
            .enumerate()
            .map(|(i, c)| !c.is_empty() && clean_lines.get(i).is_none_or(|l| l.trim().is_empty()))
            .collect();
        FileAllows {
            allows,
            comment_only,
        }
    }

    /// Probe the allow on `line_idx` (0-based) and the comment-only block
    /// directly above it.
    pub fn lookup(&self, line_idx: usize, rule: &str) -> Verdict {
        let mut probes = vec![line_idx];
        let mut p = line_idx;
        while p > 0 {
            p -= 1;
            if !self.comment_only.get(p).copied().unwrap_or(false) {
                break;
            }
            probes.push(p);
        }
        let mut missing: Option<usize> = None;
        for probe in probes {
            if let Some(Some(a)) = self.allows.get(probe) {
                if a.rules.iter().any(|r| rule_matches(r, rule)) {
                    if a.has_reason {
                        return Verdict::Suppressed;
                    }
                    missing.get_or_insert(probe);
                }
            }
        }
        match missing {
            Some(l) => Verdict::MissingReason(l),
            None => Verdict::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn allows(src: &str) -> FileAllows {
        FileAllows::build(&lexer::strip(src))
    }

    #[test]
    fn reasoned_allow_suppresses_on_line_and_above() {
        let f = allows(
            "x.unwrap(); // detlint: allow(P1) — checked by caller\n\
             // detlint: allow(P1) — block form,\n\
             // wrapped across lines.\n\
             y.unwrap();\n",
        );
        assert_eq!(f.lookup(0, "P1"), Verdict::Suppressed);
        assert_eq!(f.lookup(3, "P1"), Verdict::Suppressed);
    }

    #[test]
    fn reasonless_allow_is_a0_not_suppression() {
        let f = allows("// detlint: allow(D1)\nm.iter();\n");
        assert_eq!(f.lookup(1, "D1"), Verdict::MissingReason(0));
        assert_eq!(f.lookup(1, "D2"), Verdict::None);
    }

    #[test]
    fn r1_alias_covers_p1() {
        assert!(rule_matches("R1", "P1"));
        assert!(rule_matches("P1", "P1"));
        assert!(!rule_matches("P1", "R1"));
        assert!(!rule_matches("R1", "X1"));
        let f = allows("o.unwrap(); // detlint: allow(R1) — legacy directive\n");
        assert_eq!(f.lookup(0, "P1"), Verdict::Suppressed);
    }

    #[test]
    fn allow_block_does_not_leak_past_code() {
        let f = allows(
            "// detlint: allow(P1) — only the next statement\n\
             let x = 1;\n\
             o.unwrap();\n",
        );
        assert_eq!(f.lookup(2, "P1"), Verdict::None);
    }
}
