//! The workspace symbol table: every parsed file's functions and enums,
//! flattened with crate keys and full module paths, plus the name indexes
//! the call-graph resolver needs.
//!
//! All indexes are `BTreeMap`s so iteration order — and therefore every
//! diagnostic order downstream — is deterministic.

use crate::parse::{ParsedFile, Receiver, Vis};
use std::collections::{BTreeMap, BTreeSet};

/// One file handed to the symbol table.
pub struct FileSource {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Crate key (`core`, `vendor/rayon`, …) per `crate_of`.
    pub crate_key: String,
    pub parsed: ParsedFile,
}

/// A function in workspace terms. `file`/`item` index back into the
/// [`FileSource`] list for body access.
#[derive(Debug)]
pub struct FnSym {
    pub file: usize,
    pub item: usize,
    pub crate_key: String,
    /// File-derived module path plus inline `mod` nesting.
    pub module: Vec<String>,
    pub name: String,
    pub impl_type: Option<String>,
    pub vis: Vis,
    pub receiver: Receiver,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    pub is_test: bool,
}

pub struct SymbolTable {
    pub fns: Vec<FnSym>,
    /// Every function index by bare name (free functions and methods).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Workspace enum name → variant set (same-named enums merged — the
    /// conservative direction for X1's membership test).
    pub enums: BTreeMap<String, BTreeSet<String>>,
    /// Extern-crate name → crate key (`commsched_core` → `core`,
    /// `rayon` → `vendor/rayon`).
    pub crate_alias: BTreeMap<String, String>,
}

/// The module path a file contributes: `crates/core/src/a/b.rs` →
/// `["a", "b"]`, with `lib.rs` / `main.rs` / `mod.rs` tails dropped.
pub fn file_module_path(rel: &str) -> Vec<String> {
    let after_src = rel.split_once("/src/").map(|(_, tail)| tail).unwrap_or(rel);
    let mut parts: Vec<String> = after_src
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_string)
        .collect();
    if matches!(
        parts.last().map(String::as_str),
        Some("lib") | Some("main") | Some("mod")
    ) {
        parts.pop();
    }
    parts
}

/// The extern-crate name a crate key is imported under: first-party
/// crates are `commsched-<key>` packages with `commsched_<key>` lib
/// names; vendored crates keep their own name.
fn extern_name(crate_key: &str) -> String {
    if let Some(v) = crate_key.strip_prefix("vendor/") {
        return v.replace('-', "_");
    }
    format!("commsched_{}", crate_key.replace('-', "_"))
}

/// Build the table from every scanned file.
pub fn build(files: &[FileSource]) -> SymbolTable {
    let mut fns = Vec::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut enums: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut crate_alias = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        if !f.crate_key.is_empty() {
            crate_alias.insert(extern_name(&f.crate_key), f.crate_key.clone());
        }
        let base = file_module_path(&f.rel);
        for (ii, item) in f.parsed.fns.iter().enumerate() {
            let mut module = base.clone();
            module.extend(item.module.iter().cloned());
            let idx = fns.len();
            fns.push(FnSym {
                file: fi,
                item: ii,
                crate_key: f.crate_key.clone(),
                module,
                name: item.name.clone(),
                impl_type: item.impl_type.clone(),
                vis: item.vis,
                receiver: item.receiver,
                line: item.line,
                is_test: item.is_test,
            });
            by_name.entry(item.name.clone()).or_default().push(idx);
        }
        for e in &f.parsed.enums {
            enums
                .entry(e.name.clone())
                .or_default()
                .extend(e.variants.iter().cloned());
        }
    }
    SymbolTable {
        fns,
        by_name,
        enums,
        crate_alias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parse;

    fn file(rel: &str, crate_key: &str, src: &str) -> FileSource {
        let lexed = lexer::strip(src);
        let toks = lexer::tokenize(&lexed.cleaned);
        FileSource {
            rel: rel.to_string(),
            crate_key: crate_key.to_string(),
            parsed: parse::parse(&toks, &["lock".to_string()]),
        }
    }

    #[test]
    fn module_paths_from_files_and_inline_mods() {
        assert_eq!(
            file_module_path("crates/core/src/lib.rs"),
            Vec::<String>::new()
        );
        assert_eq!(file_module_path("crates/core/src/state.rs"), ["state"]);
        assert_eq!(
            file_module_path("crates/bench/src/experiments/trace.rs"),
            ["experiments", "trace"]
        );
        let st = build(&[file(
            "crates/core/src/a.rs",
            "core",
            "mod deep { pub fn f() {} }\n",
        )]);
        assert_eq!(st.fns[0].module, ["a", "deep"]);
    }

    #[test]
    fn crate_aliases_cover_first_party_and_vendor() {
        let st = build(&[
            file("crates/core/src/lib.rs", "core", "pub fn a() {}\n"),
            file("vendor/rayon/src/lib.rs", "vendor/rayon", "pub fn b() {}\n"),
        ]);
        assert_eq!(
            st.crate_alias.get("commsched_core").map(String::as_str),
            Some("core")
        );
        assert_eq!(
            st.crate_alias.get("rayon").map(String::as_str),
            Some("vendor/rayon")
        );
    }

    #[test]
    fn enums_merge_variants_by_name() {
        let st = build(&[file(
            "crates/trace/src/event.rs",
            "trace",
            "pub enum EventKind { JobStart, JobFinish }\n",
        )]);
        let v = st.enums.get("EventKind").expect("enum");
        assert!(v.contains("JobStart") && v.contains("JobFinish"));
    }
}
