//! detlint — the workspace determinism-and-robustness analyzer.
//!
//! Walks every `crates/*/src` Rust file (skipping `tests.rs` files and
//! `tests/` module directories), scrubs comments and string literals, and
//! enforces the project's determinism contract statically:
//!
//! * **D1** — no iteration over unordered hash containers
//! * **D2** — no wall-clock / ambient state in library code
//! * **R1** — no panic-capable calls in the panic-free crates
//! * **N1** — no raw `as` numeric casts in hot files
//! * **F1** — no float accumulation over unordered iterators
//! * **A0** — every inline allow must carry a written reason
//!
//! Suppression is explicit and audited: either an inline
//! `// detlint: allow(RULE) — reason` on (or directly above) the line, or
//! a `[[allow]]` entry with a `reason` in the committed `detlint.toml`.
//!
//! See DESIGN.md §4.4 for the rationale behind each rule.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod lexer;
pub mod rules;

use config::Config;
use rules::{Diagnostic, FileInput};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Result of analyzing a file set.
pub struct Report {
    /// All surviving diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for a
/// deterministic walk order. Skips `tests/` directories and `tests.rs`
/// files — test code is exempt from every rule.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name != "tests" {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") && name != "tests.rs" {
            out.push(path);
        }
    }
    Ok(())
}

/// Enumerate the default scan set: every `crates/*/src` tree under `root`,
/// plus the `src` tree of each opted-in vendored crate (`vendor_crates`
/// entries are workspace-relative crate directories like `"vendor/rayon"`).
/// Vendored code is opt-in because most of `vendor/` is third-party code
/// the workspace's determinism rules were never written for — but crates
/// this workspace *maintains* under `vendor/` (the rayon runtime) are held
/// to the same standard as `crates/`.
pub fn default_targets(root: &Path, vendor_crates: &[String]) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut vendor_dirs: Vec<PathBuf> = vendor_crates
        .iter()
        .filter(|c| c.starts_with("vendor/"))
        .map(|c| root.join(c))
        .filter(|p| p.is_dir())
        .collect();
    vendor_dirs.sort();
    crate_dirs.extend(vendor_dirs);
    let mut files = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    Ok(files)
}

/// Workspace-relative path with forward slashes, for stable diagnostics.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// The crate a workspace-relative path belongs to: `crates/<name>/…` →
/// `<name>`, `vendor/<name>/…` → `vendor/<name>` (vendored crates keep the
/// prefix so config lists can't confuse them with first-party crates), or
/// empty for anything else.
fn crate_of(rel: &str) -> &str {
    if let Some(r) = rel.strip_prefix("crates/") {
        return r.split('/').next().unwrap_or("");
    }
    if let Some(r) = rel.strip_prefix("vendor/") {
        let name_len = r.split('/').next().map_or(0, str::len);
        return &rel[.."vendor/".len() + name_len];
    }
    ""
}

/// Analyze `files` (absolute or root-relative paths) against `cfg`.
pub fn run(root: &Path, cfg: &Config, files: &[PathBuf]) -> io::Result<Report> {
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;
    for path in files {
        let full = if path.is_absolute() {
            path.clone()
        } else {
            root.join(path)
        };
        let source = std::fs::read_to_string(&full)?;
        let rel = rel_path(root, &full);
        files_scanned += 1;
        diagnostics.extend(rules::check_file(
            &FileInput {
                rel_path: &rel,
                crate_name: crate_of(&rel),
                source: &source,
            },
            cfg,
        ));
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Report {
        diagnostics,
        files_scanned,
    })
}

/// Human-readable rendering: one `file:line: rule: message` per finding
/// plus a summary line.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{}:{}: {}: {}", d.file, d.line, d.rule, d.message);
    }
    if report.is_clean() {
        let _ = writeln!(
            out,
            "detlint: clean ({} files scanned)",
            report.files_scanned
        );
    } else {
        let _ = writeln!(
            out,
            "detlint: {} violation(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable rendering (`--format json`).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"clean\": {},", report.is_clean());
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            json_escape(d.rule),
            json_escape(&d.message)
        );
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}
