//! detlint — the workspace determinism-and-robustness analyzer.
//!
//! Walks every `crates/*/src` Rust file (skipping `tests.rs` files and
//! `tests/` module directories) and enforces the project's determinism
//! contract statically. Per-file line rules run over the scrubbed source
//! (comments and string literals can never trigger a rule); the semantic
//! families run over a workspace symbol table and an approximate
//! caller→callee graph built from a real token stream:
//!
//! * **D1** — no iteration over unordered hash containers
//! * **D2** — no wall-clock / ambient state in library code
//! * **N1** — no raw `as` numeric casts in hot files
//! * **F1** — no float accumulation over unordered iterators
//! * **P1** — no reachable panics in / from library code (subsumes the
//!   old per-line R1 rule; call chains are reported)
//! * **X1** — no wildcard `_` arms on workspace enums in
//!   serialization/exporter files
//! * **I1** — public `&mut self` protocol methods must flush the index
//! * **L1** — lock acquisitions must follow the declared order
//! * **A0** — every inline allow must carry a written reason
//!
//! Suppression is explicit and audited: either an inline
//! `// detlint: allow(RULE) — reason` on (or directly above) the line, or
//! a `[[allow]]` entry with a `reason` in the committed `detlint.toml`.
//! For P1 call-chain findings the allow is honored at the *panic site*,
//! so one justified panic silences every chain funnelling into it.
//!
//! Per-file analysis (lex → tokenize → parse → line rules) fans out over
//! the vendored deterministic rayon pool; results are stitched back in
//! path order, so output is byte-identical at any thread count.
//!
//! See DESIGN.md §4.4 (line rules) and §4.9 (semantic pipeline) for the
//! rationale behind each rule.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod allow;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sem;
pub mod symbols;

use config::Config;
use rayon::prelude::*;
use rules::{Diagnostic, FileInput};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use symbols::FileSource;

/// Result of analyzing a file set.
pub struct Report {
    /// All surviving diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for a
/// deterministic walk order. Skips `tests/` directories and `tests.rs`
/// files — test code is exempt from every rule.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name != "tests" {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") && name != "tests.rs" {
            out.push(path);
        }
    }
    Ok(())
}

/// Enumerate the default scan set: every `crates/*/src` tree under `root`,
/// plus the `src` tree of each opted-in vendored crate (`vendor_crates`
/// entries are workspace-relative crate directories like `"vendor/rayon"`).
/// Vendored code is opt-in because most of `vendor/` is third-party code
/// the workspace's determinism rules were never written for — but crates
/// this workspace *maintains* under `vendor/` (the rayon runtime) are held
/// to the same standard as `crates/`.
pub fn default_targets(root: &Path, vendor_crates: &[String]) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut vendor_dirs: Vec<PathBuf> = vendor_crates
        .iter()
        .filter(|c| c.starts_with("vendor/"))
        .map(|c| root.join(c))
        .filter(|p| p.is_dir())
        .collect();
    vendor_dirs.sort();
    crate_dirs.extend(vendor_dirs);
    let mut files = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    Ok(files)
}

/// Expand a directory argument into its `.rs` files, with the same walk
/// rules as the default scan (sorted; `tests/` dirs and `tests.rs`
/// skipped).
pub fn expand_dir(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    collect_rs(dir, out)
}

/// Workspace-relative path with forward slashes, for stable diagnostics.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// The crate a workspace-relative path belongs to: `crates/<name>/…` →
/// `<name>`, `vendor/<name>/…` → `vendor/<name>` (vendored crates keep the
/// prefix so config lists can't confuse them with first-party crates), or
/// empty for anything else.
fn crate_of(rel: &str) -> &str {
    if let Some(r) = rel.strip_prefix("crates/") {
        return r.split('/').next().unwrap_or("");
    }
    if let Some(r) = rel.strip_prefix("vendor/") {
        let name_len = r.split('/').next().map_or(0, str::len);
        return &rel[.."vendor/".len() + name_len];
    }
    ""
}

/// Everything the analysis keeps per file after the parallel pass.
struct PerFile {
    src: FileSource,
    /// Original source lines, for `[[allow]] contains` probing.
    lines: Vec<String>,
    allows: allow::FileAllows,
    /// Raw (unsuppressed) line-rule findings.
    raw: Vec<Diagnostic>,
}

/// Analyze `files` (absolute or root-relative paths) against `cfg`.
pub fn run(root: &Path, cfg: &Config, files: &[PathBuf]) -> io::Result<Report> {
    // Sequential IO so read errors keep their path attribution.
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in files {
        let full = if path.is_absolute() {
            path.clone()
        } else {
            root.join(path)
        };
        let source = std::fs::read_to_string(&full)?;
        sources.push((rel_path(root, &full), source));
    }

    // Per-file analysis is independent; fan it out over the deterministic
    // pool. `collect` stitches results back in input (path) order, so the
    // report is byte-identical at any thread count.
    let acquire = cfg.acquire_fns();
    let per: Vec<PerFile> = sources
        .par_iter()
        .map(|(rel, source)| {
            let lexed = lexer::strip(source);
            let toks = lexer::tokenize(&lexed.cleaned);
            let parsed = parse::parse(&toks, &acquire);
            let raw = rules::line_rules(
                &FileInput {
                    rel_path: rel,
                    crate_name: crate_of(rel),
                    source,
                },
                &lexed,
                cfg,
            );
            PerFile {
                src: FileSource {
                    rel: rel.clone(),
                    crate_key: crate_of(rel).to_string(),
                    parsed,
                },
                lines: source.lines().map(str::to_string).collect(),
                allows: allow::FileAllows::build(&lexed),
                raw,
            }
        })
        .collect();

    let mut fsrc: Vec<FileSource> = Vec::with_capacity(per.len());
    let mut lines_all: Vec<Vec<String>> = Vec::with_capacity(per.len());
    let mut allows_all: Vec<allow::FileAllows> = Vec::with_capacity(per.len());
    let mut pending: Vec<(Diagnostic, usize, usize)> = Vec::new();
    for (fi, p) in per.into_iter().enumerate() {
        for d in p.raw {
            let line0 = d.line - 1;
            pending.push((d, fi, line0));
        }
        fsrc.push(p.src);
        lines_all.push(p.lines);
        allows_all.push(p.allows);
    }

    // The semantic families see the whole workspace at once.
    let st = symbols::build(&fsrc);
    let cg = callgraph::build(&st, &fsrc);
    let rel_idx: BTreeMap<&str, usize> = fsrc
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel.as_str(), i))
        .collect();
    for sd in sem::check(cfg, &st, &cg, &fsrc) {
        let own = rel_idx
            .get(sd.diag.file.as_str())
            .copied()
            .unwrap_or(usize::MAX);
        let line0 = sd.diag.line - 1;
        let (af, al) = sd.allow_site.unwrap_or((own, line0));
        pending.push((sd.diag, af, al));
    }

    // Uniform suppression: inline allows (probed at each finding's allow
    // site, which for P1 chains is the panic site), then the committed
    // allowlist, then A0 for reasonless allows that matched something.
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut a0_sites: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (d, af, al) in pending {
        if af < fsrc.len() {
            match allows_all[af].lookup(al, d.rule) {
                allow::Verdict::Suppressed => continue,
                allow::Verdict::MissingReason(l) => {
                    a0_sites.insert((af, l));
                }
                allow::Verdict::None => {}
            }
            let src_line = lines_all[af].get(al).map(String::as_str).unwrap_or("");
            let allowed = cfg.allow.iter().any(|e| {
                allow::rule_matches(&e.rule, d.rule)
                    && e.file == fsrc[af].rel
                    && e.contains.as_deref().is_none_or(|c| src_line.contains(c))
            });
            if allowed {
                continue;
            }
        }
        diagnostics.push(d);
    }
    for (af, l) in a0_sites {
        diagnostics.push(Diagnostic {
            file: fsrc[af].rel.clone(),
            line: l + 1,
            rule: "A0",
            message: "allow comment has no reason — write \
                      `// detlint: allow(RULE) — <why this is sound>`"
                .to_string(),
        });
    }

    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    diagnostics.dedup();
    Ok(Report {
        diagnostics,
        files_scanned: fsrc.len(),
    })
}

/// Human-readable rendering: one `file:line: rule: message` per finding
/// plus a summary line.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{}:{}: {}: {}", d.file, d.line, d.rule, d.message);
    }
    if report.is_clean() {
        let _ = writeln!(
            out,
            "detlint: clean ({} files scanned)",
            report.files_scanned
        );
    } else {
        let _ = writeln!(
            out,
            "detlint: {} violation(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable rendering (`--format json`).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"clean\": {},", report.is_clean());
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            json_escape(d.rule),
            json_escape(&d.message)
        );
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Rule metadata for SARIF `tool.driver.rules`, sorted by id.
const RULE_INFO: &[(&str, &str)] = &[
    ("A0", "inline allow comment missing its reason"),
    ("D1", "iteration over an unordered hash container"),
    ("D2", "wall-clock or ambient state in library code"),
    ("F1", "float accumulation over an unordered iterator"),
    (
        "I1",
        "public `&mut self` protocol method missing its flush call",
    ),
    ("L1", "lock acquisition against the declared order"),
    ("N1", "raw `as` numeric cast in a hot file"),
    ("P1", "panic reachable in or from library code"),
    (
        "X1",
        "wildcard `_` arm on a workspace enum in an exhaustive-match file",
    ),
];

/// SARIF 2.1.0 rendering (`--format sarif`), for code-scanning upload.
/// Hand-rolled like [`render_json`] and just as byte-stable.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"detlint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/commsched/detlint\",\n");
    out.push_str("          \"rules\": [");
    for (i, (id, desc)) in RULE_INFO.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            json_escape(id),
            json_escape(desc)
        );
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"%SRCROOT%\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]\n        }}",
            json_escape(d.rule),
            json_escape(&d.message),
            json_escape(&d.file),
            d.line
        );
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}
