//! CLI for the workspace determinism analyzer.
//!
//! ```text
//! detlint [--root DIR] [--config PATH] [--format text|json] [PATHS…]
//! ```
//!
//! With no PATHS, scans every `crates/*/src` tree under the root.
//! Exit codes: 0 clean, 1 violations found, 2 usage/config/IO error.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: detlint [--root DIR] [--config PATH] [--format text|json] [PATHS...]"
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        config: None,
        json: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a value".to_string())?,
                );
            }
            "--config" => {
                cli.config = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--config needs a value".to_string())?,
                ));
            }
            "--format" => {
                match it
                    .next()
                    .ok_or_else(|| "--format needs a value".to_string())?
                    .as_str()
                {
                    "json" => cli.json = true,
                    "text" => cli.json = false,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => cli.paths.push(PathBuf::from(other)),
        }
    }
    Ok(cli)
}

fn real_main() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args)?;

    let config_path = cli
        .config
        .clone()
        .unwrap_or_else(|| cli.root.join("detlint.toml"));
    let cfg = if config_path.exists() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("{}: {e}", config_path.display()))?;
        detlint::config::parse(&text).map_err(|e| e.to_string())?
    } else if cli.config.is_some() {
        return Err(format!("config not found: {}", config_path.display()));
    } else {
        detlint::config::Config::default()
    };

    let files = if cli.paths.is_empty() {
        // Vendored crates opted into R1 are part of the default scan set:
        // a panic path in the parallel runtime is exactly as fatal to a
        // sweep as one in the engine.
        let vendor: Vec<String> = cfg
            .r1_crates
            .iter()
            .filter(|c| c.starts_with("vendor/"))
            .cloned()
            .collect();
        detlint::default_targets(&cli.root, &vendor)
            .map_err(|e| format!("walking {}: {e}", cli.root.display()))?
    } else {
        cli.paths.clone()
    };

    let report =
        detlint::run(&cli.root, &cfg, &files).map_err(|e| format!("reading sources: {e}"))?;
    if cli.json {
        print!("{}", detlint::render_json(&report));
    } else {
        print!("{}", detlint::render_text(&report));
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{}", usage());
                ExitCode::SUCCESS
            } else {
                eprintln!("detlint: error: {msg}");
                eprintln!("{}", usage());
                ExitCode::from(2)
            }
        }
    }
}
