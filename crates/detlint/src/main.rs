//! CLI for the workspace determinism analyzer.
//!
//! ```text
//! detlint [--root DIR] [--config PATH] [--format text|json|sarif] [PATHS…]
//! ```
//!
//! With no PATHS, scans every `crates/*/src` tree under the root. A PATH
//! that is a directory is expanded to every `.rs` file under it (same
//! walk as the default scan: `tests/` dirs and `tests.rs` skipped), so
//! `detlint crates/detlint` self-lints one crate.
//! Exit codes: 0 clean, 1 violations found, 2 usage/config/IO error.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Cli {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: detlint [--root DIR] [--config PATH] [--format text|json|sarif] [PATHS...]"
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        config: None,
        format: Format::Text,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a value".to_string())?,
                );
            }
            "--config" => {
                cli.config = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--config needs a value".to_string())?,
                ));
            }
            "--format" => {
                match it
                    .next()
                    .ok_or_else(|| "--format needs a value".to_string())?
                    .as_str()
                {
                    "json" => cli.format = Format::Json,
                    "sarif" => cli.format = Format::Sarif,
                    "text" => cli.format = Format::Text,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => cli.paths.push(PathBuf::from(other)),
        }
    }
    Ok(cli)
}

fn real_main() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args)?;

    let config_path = cli
        .config
        .clone()
        .unwrap_or_else(|| cli.root.join("detlint.toml"));
    let cfg = if config_path.exists() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("{}: {e}", config_path.display()))?;
        detlint::config::parse(&text).map_err(|e| e.to_string())?
    } else if cli.config.is_some() {
        return Err(format!("config not found: {}", config_path.display()));
    } else {
        detlint::config::Config::default()
    };

    let files = if cli.paths.is_empty() {
        // Vendored crates opted into any rule family are part of the
        // default scan set: a panic path or lock-order bug in the
        // parallel runtime is exactly as fatal to a sweep as one in the
        // engine.
        let vendor: Vec<String> = cfg
            .p1_crates
            .iter()
            .chain(cfg.p1_reach.iter())
            .chain(cfg.l1_crates.iter())
            .filter(|c| c.starts_with("vendor/"))
            .cloned()
            .collect();
        detlint::default_targets(&cli.root, &vendor)
            .map_err(|e| format!("walking {}: {e}", cli.root.display()))?
    } else {
        let mut expanded = Vec::new();
        for p in &cli.paths {
            let full = if p.is_absolute() {
                p.clone()
            } else {
                cli.root.join(p)
            };
            if full.is_dir() {
                detlint::expand_dir(&full, &mut expanded)
                    .map_err(|e| format!("walking {}: {e}", full.display()))?;
            } else {
                expanded.push(p.clone());
            }
        }
        expanded
    };

    let report =
        detlint::run(&cli.root, &cfg, &files).map_err(|e| format!("reading sources: {e}"))?;
    match cli.format {
        Format::Json => print!("{}", detlint::render_json(&report)),
        Format::Sarif => print!("{}", detlint::render_sarif(&report)),
        Format::Text => print!("{}", detlint::render_text(&report)),
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{}", usage());
                ExitCode::SUCCESS
            } else {
                eprintln!("detlint: error: {msg}");
                eprintln!("{}", usage());
                ExitCode::from(2)
            }
        }
    }
}
