//! A comment- and string-aware scrubber for Rust source.
//!
//! The rules must never fire on text inside comments, string literals or
//! char literals, and the allow-comment parser must see exactly the
//! comment text. This module produces both views in one pass: a *cleaned*
//! copy of the source (same line structure, comment and literal contents
//! replaced by spaces) and the per-line concatenated comment text.
//!
//! Handled syntax: `//` line comments (incl. doc comments), nested
//! `/* */` block comments, plain and raw strings (`r"…"`, `r#"…"#` with
//! any number of hashes), byte strings (`b"…"`, `br#"…"#`), char and byte
//! char literals, escapes, and the char-literal/lifetime ambiguity
//! (`'a'` vs `'a`). This is a scrubber, not a full lexer — it only needs
//! to be right about *where code is*, not what it means.

/// Result of scrubbing one source file.
pub struct Lexed {
    /// Source with comment and literal contents blanked to spaces; byte
    /// positions do not match the input, but line numbers do.
    pub cleaned: String,
    /// Comment text per 0-based line (text after `//`, or the slice of a
    /// block comment on that line). Empty string for comment-free lines.
    pub comments: Vec<String>,
}

/// Scrub `src` (see module docs).
pub fn strip(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let nlines = src.lines().count().max(1) + usize::from(src.ends_with('\n'));
    let mut cleaned = String::with_capacity(src.len());
    let mut comments = vec![String::new(); nlines];
    let mut line = 0usize;
    let mut i = 0usize;
    let mut prev_ident = false;

    // Blank one char into the cleaned view, preserving line structure.
    let blank = |cleaned: &mut String, line: &mut usize, c: char| {
        if c == '\n' {
            cleaned.push('\n');
            *line += 1;
        } else {
            cleaned.push(' ');
        }
    };

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            i += 2;
            while i < chars.len() && chars[i] != '\n' {
                if let Some(slot) = comments.get_mut(line) {
                    slot.push(chars[i]);
                }
                i += 1;
            }
            cleaned.push_str("  ");
            prev_ident = false;
            continue;
        }
        if c == '/' && next == Some('*') {
            let mut depth = 1usize;
            cleaned.push_str("  ");
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    blank(&mut cleaned, &mut line, chars[i]);
                    blank(&mut cleaned, &mut line, chars[i + 1]);
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    blank(&mut cleaned, &mut line, chars[i]);
                    blank(&mut cleaned, &mut line, chars[i + 1]);
                    i += 2;
                } else {
                    if let Some(slot) = comments.get_mut(line) {
                        slot.push(chars[i]);
                    }
                    blank(&mut cleaned, &mut line, chars[i]);
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // Raw / byte string prefixes. Only when not glued to an identifier
        // (`for"` cannot occur; `r` in `var` must not trigger).
        if !prev_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if chars[j] == 'r' || chars[j] == 'b' {
                let mut hashes = 0usize;
                let mut k = j + 1;
                while chars.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if chars.get(k) == Some(&'"') && (chars[j] == 'r' || hashes == 0) {
                    // Emit the prefix verbatim, then blank to the close.
                    for &p in &chars[i..=k] {
                        cleaned.push(p);
                    }
                    i = k + 1;
                    let is_raw = chars[j] == 'r';
                    loop {
                        if i >= chars.len() {
                            break;
                        }
                        let d = chars[i];
                        if !is_raw && d == '\\' && i + 1 < chars.len() {
                            blank(&mut cleaned, &mut line, chars[i]);
                            blank(&mut cleaned, &mut line, chars[i + 1]);
                            i += 2;
                            continue;
                        }
                        if d == '"' {
                            let close = (1..=hashes).all(|h| chars.get(i + h) == Some(&'#'));
                            if !is_raw || close {
                                cleaned.push('"');
                                for _ in 0..hashes {
                                    cleaned.push('#');
                                }
                                i += 1 + hashes;
                                break;
                            }
                        }
                        blank(&mut cleaned, &mut line, d);
                        i += 1;
                    }
                    prev_ident = false;
                    continue;
                }
                // Byte char literals (b'x') need no special case: the `b`
                // is emitted as a plain char and the quote takes the
                // char-literal path below.
            }
        }
        if c == '"' {
            cleaned.push('"');
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    blank(&mut cleaned, &mut line, chars[i]);
                    blank(&mut cleaned, &mut line, chars[i + 1]);
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    cleaned.push('"');
                    i += 1;
                    break;
                }
                blank(&mut cleaned, &mut line, chars[i]);
                i += 1;
            }
            prev_ident = false;
            continue;
        }
        if c == '\'' {
            // Char literal or lifetime?
            let is_char = match next {
                Some('\\') => true,
                Some(_) => chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                cleaned.push('\'');
                i += 1;
                let mut guard = 0;
                while i < chars.len() && guard < 12 {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        blank(&mut cleaned, &mut line, chars[i]);
                        blank(&mut cleaned, &mut line, chars[i + 1]);
                        i += 2;
                        guard += 2;
                        continue;
                    }
                    if chars[i] == '\'' {
                        cleaned.push('\'');
                        i += 1;
                        break;
                    }
                    blank(&mut cleaned, &mut line, chars[i]);
                    i += 1;
                    guard += 1;
                }
                prev_ident = false;
                continue;
            }
            cleaned.push('\'');
            i += 1;
            prev_ident = false;
            continue;
        }
        if c == '\n' {
            line += 1;
        }
        cleaned.push(c);
        prev_ident = c.is_alphanumeric() || c == '_';
        i += 1;
    }
    Lexed { cleaned, comments }
}

/// Token kinds produced by [`tokenize`]. Coarse on purpose: the item
/// parser only needs identifiers, literals-as-opaque-units, lifetimes and
/// punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Num,
    /// String or char literal (contents already blanked by [`strip`]).
    Lit,
    Lifetime,
    Punct,
}

/// One token over the *cleaned* source, tagged with its 0-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    /// Exact-text match regardless of kind.
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
    /// Identifier with exactly this text (keywords included).
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Multi-character punctuation the item parser must see as one unit.
/// Everything else (`==`, `&&`, `+=`, …) is fine as single characters —
/// the parser never needs to distinguish them.
const PUNCT2: &[&str] = &["::", "->", "=>", ".."];

/// Tokenize the cleaned view produced by [`strip`]. Literal contents are
/// already blanked, so strings carry no escapes and char literals cannot
/// be confused with code; the only re-lexing subtlety left is the
/// char-literal/lifetime split, resolved by looking for the closing quote.
pub fn tokenize(cleaned: &str) -> Vec<Tok> {
    let chars: Vec<char> = cleaned.chars().collect();
    let mut out = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    let ident_start = |c: char| c.is_alphabetic() || c == '_';
    let ident_cont = |c: char| c.is_alphanumeric() || c == '_';
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if ident_start(c) {
            let start = i;
            while i < chars.len() && ident_cont(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            // Raw/byte-string prefixes survive in the cleaned view
            // (`r#"…"#` keeps its delimiters); fold them into one literal
            // token instead of emitting a bogus `r` identifier.
            if matches!(text.as_str(), "r" | "b" | "br") {
                let mut j = i;
                while chars.get(j) == Some(&'#') {
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    let hashes = j - i;
                    let mut k = j + 1;
                    while k < chars.len() {
                        if chars[k] == '\n' {
                            line += 1;
                        }
                        if chars[k] == '"' && (1..=hashes).all(|h| chars.get(k + h) == Some(&'#')) {
                            k += 1 + hashes;
                            break;
                        }
                        k += 1;
                    }
                    i = k;
                    out.push(Tok {
                        kind: TokKind::Lit,
                        text: String::new(),
                        line,
                    });
                    continue;
                }
            }
            out.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (ident_cont(chars[i])) {
                i += 1;
            }
            // A float's fractional part: `1.5` continues, `0..10` stops.
            if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                i += 1;
                while i < chars.len() && ident_cont(chars[i]) {
                    i += 1;
                }
            }
            out.push(Tok {
                kind: TokKind::Num,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c == '"' {
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 1;
            out.push(Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line,
            });
            continue;
        }
        if c == '\'' {
            // Lifetime (`'a` with no nearby closing quote) or blanked char
            // literal (`'  '`). A char literal fits in a handful of chars.
            let is_lifetime = chars.get(i + 1).is_some_and(|&n| ident_start(n)) && {
                let mut j = i + 1;
                while j < chars.len() && ident_cont(chars[j]) {
                    j += 1;
                }
                chars.get(j) != Some(&'\'')
            };
            if is_lifetime {
                let start = i;
                i += 1;
                while i < chars.len() && ident_cont(chars[i]) {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
                continue;
            }
            let close = (i + 1..(i + 16).min(chars.len())).find(|&j| chars[j] == '\'');
            if let Some(j) = close {
                i = j + 1;
                out.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line,
                });
            } else {
                i += 1;
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: "'".to_string(),
                    line,
                });
            }
            continue;
        }
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if PUNCT2.contains(&two.as_str()) {
            i += 2;
            out.push(Tok {
                kind: TokKind::Punct,
                text: two,
                line,
            });
            continue;
        }
        i += 1;
        out.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_keeps_text() {
        let l = strip("let x = 1; // detlint: allow(R1) — fine\nlet y = 2;\n");
        assert!(l.cleaned.contains("let x = 1;"));
        assert!(!l.cleaned.contains("allow"));
        assert!(l.comments[0].contains("detlint: allow(R1)"));
        assert!(l.comments[1].is_empty());
    }

    #[test]
    fn strips_strings_but_not_code() {
        let l = strip("call(\".unwrap()\"); x.unwrap();");
        assert!(!l.cleaned.contains("\".unwrap()\""));
        assert!(l.cleaned.contains("x.unwrap()"));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let l = strip("let s = r#\"panic!(\"#; let c = 'x'; fn f<'a>(v: &'a str) {}");
        assert!(!l.cleaned.contains("panic"));
        assert!(l.cleaned.contains("fn f<'a>"));
        let l2 = strip("let c = '\\n'; let q = 'q';");
        assert!(!l2.cleaned.contains("\\n"));
        assert!(!l2.cleaned.contains("'q'"));
        assert!(l2.cleaned.contains("let c = '"));
    }

    #[test]
    fn tokenize_multichar_punct_and_lines() {
        let toks = tokenize("fn f() -> u8 {\n  a::b(x) => 0..1\n}\n");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"->"));
        assert!(texts.contains(&"::"));
        assert!(texts.contains(&"=>"));
        assert!(texts.contains(&".."));
        let arrow = toks.iter().find(|t| t.is("=>")).expect("arrow");
        assert_eq!(arrow.line, 1);
    }

    #[test]
    fn tokenize_lifetimes_chars_and_floats() {
        let l = strip("fn f<'a>(v: &'a str) { let c = 'x'; let y = 1.5; let r = 0..10; }");
        let toks = tokenize(&l.cleaned);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(toks.iter().any(|t| t.is("..")));
        // The blanked char literal became one opaque literal token.
        assert!(toks.iter().any(|t| t.kind == TokKind::Lit));
    }

    #[test]
    fn tokenize_raw_string_is_one_literal() {
        let l = strip("let s = r#\"fn bogus() { panic!() }\"#; done();");
        let toks = tokenize(&l.cleaned);
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert!(!toks.iter().any(|t| t.is_ident("bogus")));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn nested_block_comments() {
        let l = strip("a /* outer /* inner */ still */ b");
        assert!(l.cleaned.contains('a'));
        assert!(l.cleaned.contains('b'));
        assert!(!l.cleaned.contains("inner"));
        assert!(!l.cleaned.contains("still"));
    }

    #[test]
    fn multiline_comment_line_numbers_hold() {
        let l = strip("a\n/* x\ny */\nb\n");
        let lines: Vec<&str> = l.cleaned.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].trim(), "a");
        assert_eq!(lines[3].trim(), "b");
    }
}
