//! A comment- and string-aware scrubber for Rust source.
//!
//! The rules must never fire on text inside comments, string literals or
//! char literals, and the allow-comment parser must see exactly the
//! comment text. This module produces both views in one pass: a *cleaned*
//! copy of the source (same line structure, comment and literal contents
//! replaced by spaces) and the per-line concatenated comment text.
//!
//! Handled syntax: `//` line comments (incl. doc comments), nested
//! `/* */` block comments, plain and raw strings (`r"…"`, `r#"…"#` with
//! any number of hashes), byte strings (`b"…"`, `br#"…"#`), char and byte
//! char literals, escapes, and the char-literal/lifetime ambiguity
//! (`'a'` vs `'a`). This is a scrubber, not a full lexer — it only needs
//! to be right about *where code is*, not what it means.

/// Result of scrubbing one source file.
pub struct Lexed {
    /// Source with comment and literal contents blanked to spaces; byte
    /// positions do not match the input, but line numbers do.
    pub cleaned: String,
    /// Comment text per 0-based line (text after `//`, or the slice of a
    /// block comment on that line). Empty string for comment-free lines.
    pub comments: Vec<String>,
}

/// Scrub `src` (see module docs).
pub fn strip(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let nlines = src.lines().count().max(1) + usize::from(src.ends_with('\n'));
    let mut cleaned = String::with_capacity(src.len());
    let mut comments = vec![String::new(); nlines];
    let mut line = 0usize;
    let mut i = 0usize;
    let mut prev_ident = false;

    // Blank one char into the cleaned view, preserving line structure.
    let blank = |cleaned: &mut String, line: &mut usize, c: char| {
        if c == '\n' {
            cleaned.push('\n');
            *line += 1;
        } else {
            cleaned.push(' ');
        }
    };

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            i += 2;
            while i < chars.len() && chars[i] != '\n' {
                if let Some(slot) = comments.get_mut(line) {
                    slot.push(chars[i]);
                }
                i += 1;
            }
            cleaned.push_str("  ");
            prev_ident = false;
            continue;
        }
        if c == '/' && next == Some('*') {
            let mut depth = 1usize;
            cleaned.push_str("  ");
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    blank(&mut cleaned, &mut line, chars[i]);
                    blank(&mut cleaned, &mut line, chars[i + 1]);
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    blank(&mut cleaned, &mut line, chars[i]);
                    blank(&mut cleaned, &mut line, chars[i + 1]);
                    i += 2;
                } else {
                    if let Some(slot) = comments.get_mut(line) {
                        slot.push(chars[i]);
                    }
                    blank(&mut cleaned, &mut line, chars[i]);
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // Raw / byte string prefixes. Only when not glued to an identifier
        // (`for"` cannot occur; `r` in `var` must not trigger).
        if !prev_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if chars[j] == 'r' || chars[j] == 'b' {
                let mut hashes = 0usize;
                let mut k = j + 1;
                while chars.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if chars.get(k) == Some(&'"') && (chars[j] == 'r' || hashes == 0) {
                    // Emit the prefix verbatim, then blank to the close.
                    for &p in &chars[i..=k] {
                        cleaned.push(p);
                    }
                    i = k + 1;
                    let is_raw = chars[j] == 'r';
                    loop {
                        if i >= chars.len() {
                            break;
                        }
                        let d = chars[i];
                        if !is_raw && d == '\\' && i + 1 < chars.len() {
                            blank(&mut cleaned, &mut line, chars[i]);
                            blank(&mut cleaned, &mut line, chars[i + 1]);
                            i += 2;
                            continue;
                        }
                        if d == '"' {
                            let close = (1..=hashes).all(|h| chars.get(i + h) == Some(&'#'));
                            if !is_raw || close {
                                cleaned.push('"');
                                for _ in 0..hashes {
                                    cleaned.push('#');
                                }
                                i += 1 + hashes;
                                break;
                            }
                        }
                        blank(&mut cleaned, &mut line, d);
                        i += 1;
                    }
                    prev_ident = false;
                    continue;
                }
                // Byte char literals (b'x') need no special case: the `b`
                // is emitted as a plain char and the quote takes the
                // char-literal path below.
            }
        }
        if c == '"' {
            cleaned.push('"');
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    blank(&mut cleaned, &mut line, chars[i]);
                    blank(&mut cleaned, &mut line, chars[i + 1]);
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    cleaned.push('"');
                    i += 1;
                    break;
                }
                blank(&mut cleaned, &mut line, chars[i]);
                i += 1;
            }
            prev_ident = false;
            continue;
        }
        if c == '\'' {
            // Char literal or lifetime?
            let is_char = match next {
                Some('\\') => true,
                Some(_) => chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                cleaned.push('\'');
                i += 1;
                let mut guard = 0;
                while i < chars.len() && guard < 12 {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        blank(&mut cleaned, &mut line, chars[i]);
                        blank(&mut cleaned, &mut line, chars[i + 1]);
                        i += 2;
                        guard += 2;
                        continue;
                    }
                    if chars[i] == '\'' {
                        cleaned.push('\'');
                        i += 1;
                        break;
                    }
                    blank(&mut cleaned, &mut line, chars[i]);
                    i += 1;
                    guard += 1;
                }
                prev_ident = false;
                continue;
            }
            cleaned.push('\'');
            i += 1;
            prev_ident = false;
            continue;
        }
        if c == '\n' {
            line += 1;
        }
        cleaned.push(c);
        prev_ident = c.is_alphanumeric() || c == '_';
        i += 1;
    }
    Lexed { cleaned, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_keeps_text() {
        let l = strip("let x = 1; // detlint: allow(R1) — fine\nlet y = 2;\n");
        assert!(l.cleaned.contains("let x = 1;"));
        assert!(!l.cleaned.contains("allow"));
        assert!(l.comments[0].contains("detlint: allow(R1)"));
        assert!(l.comments[1].is_empty());
    }

    #[test]
    fn strips_strings_but_not_code() {
        let l = strip("call(\".unwrap()\"); x.unwrap();");
        assert!(!l.cleaned.contains("\".unwrap()\""));
        assert!(l.cleaned.contains("x.unwrap()"));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let l = strip("let s = r#\"panic!(\"#; let c = 'x'; fn f<'a>(v: &'a str) {}");
        assert!(!l.cleaned.contains("panic"));
        assert!(l.cleaned.contains("fn f<'a>"));
        let l2 = strip("let c = '\\n'; let q = 'q';");
        assert!(!l2.cleaned.contains("\\n"));
        assert!(!l2.cleaned.contains("'q'"));
        assert!(l2.cleaned.contains("let c = '"));
    }

    #[test]
    fn nested_block_comments() {
        let l = strip("a /* outer /* inner */ still */ b");
        assert!(l.cleaned.contains('a'));
        assert!(l.cleaned.contains('b'));
        assert!(!l.cleaned.contains("inner"));
        assert!(!l.cleaned.contains("still"));
    }

    #[test]
    fn multiline_comment_line_numbers_hold() {
        let l = strip("a\n/* x\ny */\nb\n");
        let lines: Vec<&str> = l.cleaned.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].trim(), "a");
        assert_eq!(lines[3].trim(), "b");
    }
}
