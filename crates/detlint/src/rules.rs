//! The per-line determinism/robustness rules.
//!
//! All checks run over the *cleaned* view from [`crate::lexer`], so string
//! literals and comments can never trigger a rule. Lines inside
//! `#[cfg(test)]` items (and `#[test]` functions) are masked out first —
//! test code may unwrap and iterate however it likes.
//!
//! | rule | meaning |
//! |------|---------|
//! | D1   | iteration over an unordered hash container |
//! | D2   | wall-clock / ambient state in library code |
//! | N1   | raw `as` numeric cast in a hot file |
//! | F1   | float accumulation over an unordered iterator |
//!
//! The semantic families (P1/X1/I1/L1) live in [`crate::sem`]; the old
//! per-line R1 rule is subsumed by P1's direct layer. This module emits
//! *raw* findings — suppression (inline allows, the committed allowlist,
//! A0) is applied uniformly across line and semantic rules by
//! [`crate::run`].

use crate::config::Config;
use crate::lexer;
use std::collections::BTreeSet;

/// One finding, in workspace-relative terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

/// A file handed to the rule engine.
pub struct FileInput<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Crate directory name under `crates/` (e.g. `slurmsim`).
    pub crate_name: &'a str,
    pub source: &'a str,
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const D1_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];
const D2_TOKENS: &[&str] = &[
    "SystemTime",
    "Instant::now",
    "thread_rng",
    "rand::random",
    "env::var(",
];
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];
const F1_SINKS: &[&str] = &[".sum::<f64>()", ".sum::<f32>()", ".fold(0.0", ".fold(0f64"];
const F1_PAR_SOURCES: &[&str] = &[".par_iter()", ".into_par_iter()", ".par_bridge()"];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True when `text[pos..]` starts with `pat` on an identifier boundary to
/// the left (so `dont_panic!(` never matches `panic!(`).
fn boundary_before(text: &str, pos: usize) -> bool {
    text[..pos]
        .chars()
        .next_back()
        .is_none_or(|c| !is_ident_char(c))
}

/// The identifier (path leaf) ending just before byte `pos`, e.g. the
/// receiver of a method call whose `.` sits at `pos`.
fn ident_before(text: &str, pos: usize) -> Option<&str> {
    let head = &text[..pos];
    let trimmed = head.trim_end();
    let end = trimmed.len();
    let start = trimmed
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .last()
        .map(|(i, _)| i)?;
    if start == end {
        return None;
    }
    Some(&trimmed[start..end])
}

/// Per-line mask of code that belongs to `#[cfg(test)]` items or `#[test]`
/// functions; those lines are invisible to every rule.
fn test_mask(cleaned: &str) -> Vec<bool> {
    let nlines = cleaned.lines().count() + 1;
    let mut mask = vec![false; nlines];
    let bytes = cleaned.as_bytes();
    for attr in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0usize;
        while let Some(off) = cleaned[from..].find(attr) {
            let start = from + off;
            let start_line = cleaned[..start].matches('\n').count();
            // The attribute governs the next item: mask up to the end of
            // its brace block, or to the first `;` if it has no block
            // (e.g. `#[cfg(test)] use …;`).
            let mut i = start + attr.len();
            let mut depth = 0usize;
            let mut entered = false;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' => {
                        depth += 1;
                        entered = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            break;
                        }
                    }
                    b';' if !entered => break,
                    _ => {}
                }
                i += 1;
            }
            let end_line = cleaned[..i.min(cleaned.len())].matches('\n').count();
            for slot in mask
                .iter_mut()
                .take((end_line + 1).min(nlines))
                .skip(start_line)
            {
                *slot = true;
            }
            from = i.min(cleaned.len()).max(start + attr.len());
        }
    }
    mask
}

/// Names bound to hash containers anywhere in the file (flow-insensitive):
/// struct fields / params (`name: HashMap<…>` / `name: &HashMap<…>`) and
/// local bindings (`let [mut] name = HashMap::new()` and friends).
fn collect_hash_idents(clean_lines: &[&str]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in clean_lines {
        for ty in HASH_TYPES {
            let mut from = 0usize;
            while let Some(off) = line[from..].find(ty) {
                let pos = from + off;
                from = pos + ty.len();
                if !boundary_before(line, pos) {
                    continue;
                }
                // `name: HashMap<` (field / param), tolerating `&`/`mut`
                // and a qualifying path (`std::collections::HashMap`).
                let mut head = line[..pos].trim_end();
                while let Some(h) = head.strip_suffix("::") {
                    head = h.trim_end_matches(is_ident_char).trim_end();
                }
                let head = head
                    .strip_suffix("&mut")
                    .or_else(|| head.strip_suffix('&'))
                    .unwrap_or(head)
                    .trim_end();
                if let Some(before_colon) = head.strip_suffix(':') {
                    // Reject `::HashMap` (a path, not a declaration).
                    if !before_colon.ends_with(':') {
                        if let Some(name) = ident_before(line, before_colon.len()) {
                            out.insert(name.to_string());
                        }
                    }
                }
                // `let [mut] name = … HashMap …` on one line.
                if let Some(let_pos) = line.find("let ") {
                    if let_pos < pos && line[let_pos..pos].contains('=') {
                        let after = line[let_pos + 4..].trim_start();
                        let after = after.strip_prefix("mut ").unwrap_or(after).trim_start();
                        let name: String =
                            after.chars().take_while(|c| is_ident_char(*c)).collect();
                        if !name.is_empty() {
                            out.insert(name);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Run the line rules over one file, returning *raw* (unsuppressed)
/// findings. `lexed` must be `lexer::strip(input.source)`.
pub fn line_rules(input: &FileInput<'_>, lexed: &lexer::Lexed, cfg: &Config) -> Vec<Diagnostic> {
    let clean_lines: Vec<&str> = lexed.cleaned.lines().collect();
    let mask = test_mask(&lexed.cleaned);
    let hash_idents = collect_hash_idents(&clean_lines);

    let n1_active = cfg.n1_files.iter().any(|f| f == input.rel_path);
    let d2_active = !cfg
        .d2_exclude_dirs
        .iter()
        .any(|d| input.rel_path.starts_with(d.as_str()));

    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut push = |line_idx: usize, rule: &'static str, message: String| {
        raw.push(Diagnostic {
            file: input.rel_path.to_string(),
            line: line_idx + 1,
            rule,
            message,
        });
    };

    for (idx, line) in clean_lines.iter().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }

        // --- D1: unordered-container iteration -------------------------
        for m in D1_METHODS {
            let mut from = 0usize;
            while let Some(off) = line[from..].find(m) {
                let pos = from + off;
                from = pos + m.len();
                if let Some(recv) = ident_before(line, pos) {
                    if hash_idents.contains(recv) {
                        push(
                            idx,
                            "D1",
                            format!(
                                "iteration over unordered container `{recv}` via `{}` — \
                                 use BTreeMap/BTreeSet or collect-and-sort",
                                m.trim_end_matches('(')
                            ),
                        );
                    }
                }
            }
        }
        if let Some(for_pos) = find_keyword(line, "for") {
            if let Some(in_rel) = find_keyword(&line[for_pos..], "in") {
                let expr = line[for_pos + in_rel + 2..]
                    .split('{')
                    .next()
                    .unwrap_or("")
                    .trim();
                let expr = expr
                    .trim_start_matches('&')
                    .trim_start_matches("mut ")
                    .trim();
                if !expr.is_empty() && expr.chars().all(|c| is_ident_char(c) || c == '.') {
                    let leaf = expr.rsplit('.').next().unwrap_or(expr);
                    if hash_idents.contains(leaf) {
                        push(
                            idx,
                            "D1",
                            format!(
                                "`for … in` over unordered container `{leaf}` — \
                                 use BTreeMap/BTreeSet or collect-and-sort"
                            ),
                        );
                    }
                }
            }
        }

        // --- D2: ambient state ------------------------------------------
        if d2_active {
            for tok in D2_TOKENS {
                let mut from = 0usize;
                while let Some(off) = line[from..].find(tok) {
                    let pos = from + off;
                    from = pos + tok.len();
                    if boundary_before(line, pos) {
                        push(
                            idx,
                            "D2",
                            format!(
                                "ambient state `{}` in library code — the simulator \
                                 runs in virtual time; inject clocks and seeds \
                                 explicitly",
                                tok.trim_end_matches('(')
                            ),
                        );
                    }
                }
            }
        }

        // --- N1: raw `as` casts in hot files ----------------------------
        if n1_active {
            let mut from = 0usize;
            while let Some(off) = line[from..].find(" as ") {
                let pos = from + off;
                from = pos + 4;
                let after = &line[pos + 4..];
                let ty: String = after.chars().take_while(|c| is_ident_char(*c)).collect();
                if NUMERIC_TYPES.contains(&ty.as_str()) {
                    push(
                        idx,
                        "N1",
                        format!(
                            "raw `as {ty}` cast in a hot file — use a commsched-num \
                             checked helper"
                        ),
                    );
                }
            }
        }

        // --- F1: float accumulation over unordered iteration ------------
        for sink in F1_SINKS {
            if !line.contains(sink) {
                continue;
            }
            // Statement window: this line plus preceding lines back to the
            // previous statement/block boundary (max 8 lines).
            let mut window: Vec<usize> = vec![idx];
            for back in (idx.saturating_sub(8)..idx).rev() {
                let t = clean_lines[back].trim_end();
                if t.ends_with(';') || t.ends_with('{') || t.ends_with('}') {
                    break;
                }
                window.push(back);
            }
            let unordered = window.iter().any(|&w| {
                let wl = clean_lines[w];
                F1_PAR_SOURCES.iter().any(|p| wl.contains(p))
                    || D1_METHODS.iter().any(|m| {
                        let mut f = 0usize;
                        while let Some(off) = wl[f..].find(m) {
                            let p = f + off;
                            f = p + m.len();
                            if let Some(recv) = ident_before(wl, p) {
                                if hash_idents.contains(recv) {
                                    return true;
                                }
                            }
                        }
                        false
                    })
            });
            if unordered {
                push(
                    idx,
                    "F1",
                    format!(
                        "float accumulation `{sink}` over an unordered iterator — \
                         rounding depends on visit order; sort the source first"
                    ),
                );
            }
        }
    }

    raw
}

/// Find `kw` as a standalone word in `s`; returns its byte offset.
fn find_keyword(s: &str, kw: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(off) = s[from..].find(kw) {
        let pos = from + off;
        from = pos + kw.len();
        let left_ok = boundary_before(s, pos);
        let right_ok = s[pos + kw.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c));
        if left_ok && right_ok {
            return Some(pos);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, krate: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
        let lexed = lexer::strip(src);
        let mut ds = line_rules(
            &FileInput {
                rel_path: path,
                crate_name: krate,
                source: src,
            },
            &lexed,
            cfg,
        );
        ds.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        ds
    }

    #[test]
    fn d1_flags_hash_iteration_but_not_btree() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u32>, b: std::collections::BTreeMap<u32, u32> }\n\
                   fn f(s: &S) -> u32 { s.m.values().sum::<u32>() + s.b.values().sum::<u32>() }\n";
        let ds = check("crates/x/src/lib.rs", "x", src, &Config::default());
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].rule, "D1");
        assert_eq!(ds[0].line, 3);
        assert!(ds[0].message.contains('m'));
    }

    #[test]
    fn d1_flags_for_loop_over_map_ref() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) {\n\
                   for (k, v) in m { let _ = (k, v); }\n}\n";
        let ds = check("crates/x/src/lib.rs", "x", src, &Config::default());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].line, 2);
    }

    #[test]
    fn raw_findings_ignore_inline_allows() {
        // Suppression is `crate::run`'s job; the raw engine still reports.
        let src = "fn f() {\n\
                   // detlint: allow(D2) — deliberately timed\n\
                   let t = std::time::Instant::now(); let _ = t;\n}\n";
        let ds = check("crates/core/src/a.rs", "core", src, &Config::default());
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].rule, "D2");
    }

    #[test]
    fn cfg_test_code_is_invisible() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   use std::collections::HashMap;\n\
                   #[test]\n\
                   fn t() { let m: HashMap<u32, u32> = HashMap::new(); \
                   for (k, v) in m { let _ = (k, v); } }\n\
                   }\n";
        assert!(check("crates/core/src/a.rs", "core", src, &Config::default()).is_empty());
    }

    #[test]
    fn n1_only_in_listed_files() {
        let src = "fn f(x: u64) -> f64 { x as f64 }\n";
        let cfg = Config {
            n1_files: vec!["crates/core/src/hot.rs".to_string()],
            ..Config::default()
        };
        assert_eq!(check("crates/core/src/hot.rs", "core", src, &cfg).len(), 1);
        assert!(check("crates/core/src/cold.rs", "core", src, &cfg).is_empty());
    }

    #[test]
    fn f1_needs_an_unordered_source_in_the_statement() {
        let src = "fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {\n\
                   m.values().copied().sum::<f64>()\n}\n\
                   fn g(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n";
        let ds = check("crates/x/src/lib.rs", "x", src, &Config::default());
        assert!(ds.iter().any(|d| d.rule == "F1" && d.line == 2), "{ds:?}");
        assert!(!ds.iter().any(|d| d.rule == "F1" && d.line == 4));
    }

    #[test]
    fn d2_respects_exclude_dirs() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let cfg = Config {
            d2_exclude_dirs: vec!["crates/bench/src/bin".to_string()],
            ..Config::default()
        };
        assert_eq!(check("crates/core/src/a.rs", "core", src, &cfg).len(), 1);
        assert!(check("crates/bench/src/bin/run.rs", "bench", src, &cfg).is_empty());
    }
}
