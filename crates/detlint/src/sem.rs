//! The semantic rule families over the symbol table and call graph.
//!
//! | rule | meaning |
//! |------|---------|
//! | P1   | panic reachable in / from library code (subsumes old R1) |
//! | X1   | wildcard `_` arm on a workspace enum in an exhaustive-match file |
//! | I1   | public `&mut self` protocol method missing its flush call |
//! | L1   | lock acquisition against the declared order |
//!
//! Each diagnostic carries the *allow site* — where an inline
//! `detlint: allow` (or a `[[allow]]` config entry) is honored. For P1
//! call-chain findings that is the panic site itself, which may sit in a
//! different file than the flagged entry point: one reasoned allow at a
//! panic site silences every chain that funnels into it.

use crate::callgraph::{self, CallGraph};
use crate::config::Config;
use crate::parse::{Receiver, Vis};
use crate::rules::Diagnostic;
use crate::symbols::{FileSource, SymbolTable};
use std::collections::{BTreeMap, BTreeSet};

/// A semantic finding plus the location where suppression is honored
/// (file index into the scanned set, 0-based line). `None` means the
/// diagnostic's own location.
pub struct SemDiag {
    pub diag: Diagnostic,
    pub allow_site: Option<(usize, usize)>,
}

/// Run every semantic rule.
pub fn check(cfg: &Config, st: &SymbolTable, cg: &CallGraph, files: &[FileSource]) -> Vec<SemDiag> {
    let mut out = Vec::new();
    check_p1(cfg, st, cg, files, &mut out);
    check_x1(cfg, st, files, &mut out);
    check_i1(cfg, st, cg, files, &mut out);
    check_l1(cfg, st, cg, files, &mut out);
    out
}

fn display_name(st: &SymbolTable, f: usize) -> String {
    let s = &st.fns[f];
    match &s.impl_type {
        Some(t) => format!("{t}::{}", s.name),
        None => s.name.clone(),
    }
}

// --- P1: panic reachability ---------------------------------------------
//
// Two layers. *Direct*: every lexical panic site in the non-test code of
// a panic-free crate (`[rules.P1] crates`) is flagged where it stands —
// byte-for-byte the old R1 behavior. *Chains*: a public function anywhere
// in the universe (`crates` ∪ `reach`) from which the call graph reaches
// a panic site in a `reach` crate is flagged at its declaration, with the
// shortest call chain in the message. Sites inside `crates` never produce
// chain findings (they are already direct findings).

fn check_p1(
    cfg: &Config,
    st: &SymbolTable,
    cg: &CallGraph,
    files: &[FileSource],
    out: &mut Vec<SemDiag>,
) {
    let p1: BTreeSet<&str> = cfg.p1_crates.iter().map(String::as_str).collect();
    let reach: BTreeSet<&str> = cfg.p1_reach.iter().map(String::as_str).collect();
    if p1.is_empty() && reach.is_empty() {
        return;
    }
    let in_universe = |f: usize| {
        p1.contains(st.fns[f].crate_key.as_str()) || reach.contains(st.fns[f].crate_key.as_str())
    };

    // Direct findings, plus the per-function panic-site lists for chains.
    let mut dirty: BTreeMap<usize, Vec<(usize, &'static str)>> = BTreeMap::new();
    for (fi, sym) in st.fns.iter().enumerate() {
        if sym.is_test || !in_universe(fi) {
            continue;
        }
        let body = &files[sym.file].parsed.fns[sym.item].body;
        if body.panics.is_empty() {
            continue;
        }
        if p1.contains(sym.crate_key.as_str()) {
            for site in &body.panics {
                out.push(SemDiag {
                    diag: Diagnostic {
                        file: files[sym.file].rel.clone(),
                        line: site.line + 1,
                        rule: "P1",
                        message: format!(
                            "`{}` in non-test code of a panic-free crate — \
                             return a typed error or justify with \
                             `detlint: allow(P1)`",
                            site.what
                        ),
                    },
                    allow_site: None,
                });
            }
        } else {
            dirty.insert(fi, body.panics.iter().map(|s| (s.line, s.what)).collect());
        }
    }
    if dirty.is_empty() {
        return;
    }

    // Chain findings from every public entry point in the universe.
    let mut seen: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
    for (fi, sym) in st.fns.iter().enumerate() {
        if sym.is_test || sym.vis != Vis::Pub || !in_universe(fi) {
            continue;
        }
        let pred = callgraph::bfs(&cg.edges, fi, |n| !st.fns[n].is_test && in_universe(n));
        for (&g, sites) in &dirty {
            if !pred.contains_key(&g) {
                continue;
            }
            let chain: Vec<String> = callgraph::chain(&pred, g)
                .into_iter()
                .map(|n| display_name(st, n))
                .collect();
            let site_file = st.fns[g].file;
            for &(line, what) in sites {
                if !seen.insert((fi, site_file, line)) {
                    continue;
                }
                out.push(SemDiag {
                    diag: Diagnostic {
                        file: files[sym.file].rel.clone(),
                        line: sym.line + 1,
                        rule: "P1",
                        message: format!(
                            "public `{}` can reach `{}` at {}:{} (call chain: {}) — \
                             handle the failure or justify with `detlint: allow(P1)` \
                             at the panic site",
                            display_name(st, fi),
                            what,
                            files[site_file].rel,
                            line + 1,
                            chain.join(" -> "),
                        ),
                    },
                    allow_site: Some((site_file, line)),
                });
            }
        }
    }
}

// --- X1: exhaustive matches in serialization/exporter files --------------
//
// Inside the configured path prefixes, a `match` that patterns on a
// workspace-defined enum must not have a bare `_` arm: a new variant must
// fail to compile, not silently fall through. Matches on foreign types
// (`Option`, `serde_json::Value`, strings) are invisible — the enum must
// be defined in scanned workspace code to count.

fn check_x1(cfg: &Config, st: &SymbolTable, files: &[FileSource], out: &mut Vec<SemDiag>) {
    if cfg.x1_paths.is_empty() {
        return;
    }
    for sym in &st.fns {
        if sym.is_test {
            continue;
        }
        let rel = &files[sym.file].rel;
        if !cfg.x1_paths.iter().any(|p| rel.starts_with(p.as_str())) {
            continue;
        }
        let body = &files[sym.file].parsed.fns[sym.item].body;
        for m in &body.matches {
            let mut matched_enum: Option<&str> = None;
            for arm in &m.arms {
                for (head, variant) in &arm.enum_paths {
                    let name = if head == "Self" {
                        sym.impl_type.as_deref().unwrap_or(head)
                    } else {
                        head.as_str()
                    };
                    if st.enums.get(name).is_some_and(|v| v.contains(variant)) {
                        matched_enum = Some(name);
                        break;
                    }
                }
                if matched_enum.is_some() {
                    break;
                }
            }
            let Some(enum_name) = matched_enum else {
                continue;
            };
            for arm in &m.arms {
                if arm.wildcard {
                    out.push(SemDiag {
                        diag: Diagnostic {
                            file: rel.clone(),
                            line: arm.line + 1,
                            rule: "X1",
                            message: format!(
                                "wildcard `_` arm on workspace enum `{enum_name}` — \
                                 list the remaining variants explicitly so a new \
                                 variant cannot be silently dropped"
                            ),
                        },
                        allow_site: None,
                    });
                }
            }
        }
    }
}

// --- I1: index coherence -------------------------------------------------
//
// Every public `&mut self` method on a protocol type (`[rules.I1] types`)
// must reach one of the flush helpers (`[rules.I1] flush`) through the
// call graph before returning. The check is reachability, not dominance —
// a method that *can* skip the flush on some path still passes if any
// call site exists; catching path-sensitivity is out of scope and noted
// in DESIGN.md §4.9.

fn check_i1(
    cfg: &Config,
    st: &SymbolTable,
    cg: &CallGraph,
    files: &[FileSource],
    out: &mut Vec<SemDiag>,
) {
    if cfg.i1_types.is_empty() || cfg.i1_flush.is_empty() {
        return;
    }
    for (fi, sym) in st.fns.iter().enumerate() {
        let Some(ty) = &sym.impl_type else { continue };
        if !cfg.i1_types.iter().any(|t| t == ty) {
            continue;
        }
        if sym.is_test || sym.vis != Vis::Pub || sym.receiver != Receiver::ByRefMut {
            continue;
        }
        if cfg.i1_flush.iter().any(|f| f == &sym.name) {
            continue;
        }
        let pred = callgraph::bfs(&cg.edges, fi, |n| !st.fns[n].is_test);
        let flushes = pred.keys().any(|&n| {
            let s = &st.fns[n];
            s.impl_type.as_deref() == Some(ty.as_str()) && cfg.i1_flush.iter().any(|f| f == &s.name)
        });
        if !flushes {
            out.push(SemDiag {
                diag: Diagnostic {
                    file: files[sym.file].rel.clone(),
                    line: sym.line + 1,
                    rule: "I1",
                    message: format!(
                        "public `&mut self` method `{}::{}` has no call path to \
                         {} — every mutating entry point must flush the index \
                         before returning",
                        ty,
                        sym.name,
                        cfg.i1_flush
                            .iter()
                            .map(|f| format!("`{f}`"))
                            .collect::<Vec<_>>()
                            .join(" / "),
                    ),
                },
                allow_site: None,
            });
        }
    }
}

// --- L1: lock ordering ---------------------------------------------------
//
// Within the configured crates, every `Mutex` field must appear in the
// declared order, and every acquisition (direct, condvar re-acquire, or
// via a call whose transitive acquire-set is non-empty) must only ever
// take a lock that sits *later* in the order than everything already
// held. Condvar waits re-acquire their own lock and are exempt from the
// self-edge check; interprocedural effects use a transitive fixpoint over
// the call graph.

fn check_l1(
    cfg: &Config,
    st: &SymbolTable,
    cg: &CallGraph,
    files: &[FileSource],
    out: &mut Vec<SemDiag>,
) {
    if cfg.l1_crates.is_empty() || cfg.l1_order.is_empty() {
        return;
    }
    let in_scope = |k: &str| cfg.l1_crates.iter().any(|c| c == k);
    let order: BTreeMap<&str, usize> = cfg
        .l1_order
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    // Every Mutex field in scope must be part of the declared order.
    for f in files {
        if !in_scope(&f.crate_key) {
            continue;
        }
        for field in &f.parsed.mutex_fields {
            if !order.contains_key(field.name.as_str()) {
                out.push(SemDiag {
                    diag: Diagnostic {
                        file: f.rel.clone(),
                        line: field.line + 1,
                        rule: "L1",
                        message: format!(
                            "Mutex field `{}` is not in the declared lock order — \
                             add it to `[rules.L1] order` in detlint.toml",
                            field.name
                        ),
                    },
                    allow_site: None,
                });
            }
        }
    }

    // Transitive acquire sets: fixpoint over the call graph. Direct sets
    // come only from in-scope bodies (out-of-scope code cannot name these
    // locks), but propagation runs over all edges.
    let n = st.fns.len();
    let mut acq: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for (fi, sym) in st.fns.iter().enumerate() {
        if !in_scope(&sym.crate_key) || sym.is_test {
            continue;
        }
        let body = &files[sym.file].parsed.fns[sym.item].body;
        for a in &body.acquires {
            acq[fi].insert(a.lock.clone());
        }
    }
    loop {
        let mut changed = false;
        for fi in 0..n {
            let mut add: Vec<String> = Vec::new();
            for &callee in &cg.edges[fi] {
                for l in &acq[callee] {
                    if !acq[fi].contains(l) {
                        add.push(l.clone());
                    }
                }
            }
            if !add.is_empty() {
                acq[fi].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Violations at direct acquisitions and at calls made under a lock.
    for (fi, sym) in st.fns.iter().enumerate() {
        if !in_scope(&sym.crate_key) || sym.is_test {
            continue;
        }
        let rel = &files[sym.file].rel;
        let body = &files[sym.file].parsed.fns[sym.item].body;
        let mut push = |line: usize, message: String| {
            out.push(SemDiag {
                diag: Diagnostic {
                    file: rel.clone(),
                    line: line + 1,
                    rule: "L1",
                    message,
                },
                allow_site: None,
            });
        };
        for a in &body.acquires {
            let Some(&bi) = order.get(a.lock.as_str()) else {
                push(
                    a.line,
                    format!(
                        "acquisition of `{}` which is not in the declared lock order",
                        a.lock
                    ),
                );
                continue;
            };
            for held in &a.held {
                if held == &a.lock {
                    if !a.wait {
                        push(
                            a.line,
                            format!("re-acquires `{}` while already holding it", a.lock),
                        );
                    }
                    continue;
                }
                let Some(&hi) = order.get(held.as_str()) else {
                    continue; // undeclared held lock already flagged above
                };
                if hi >= bi {
                    push(
                        a.line,
                        format!(
                            "acquires `{}` while holding `{}` — declared order is {}",
                            a.lock,
                            held,
                            cfg.l1_order.join(" < "),
                        ),
                    );
                }
            }
        }
        let mut seen: BTreeSet<(usize, String, String)> = BTreeSet::new();
        for (ci, call) in body.calls.iter().enumerate() {
            if call.held.is_empty() {
                continue;
            }
            for &callee in &cg.call_targets[fi][ci] {
                for lock in &acq[callee] {
                    for held in &call.held {
                        if !seen.insert((call.line, held.clone(), lock.clone())) {
                            continue;
                        }
                        if held == lock {
                            push(
                                call.line,
                                format!(
                                    "call to `{}` may re-acquire `{}` while it is held",
                                    display_name(st, callee),
                                    lock
                                ),
                            );
                            continue;
                        }
                        let (Some(&hi), Some(&bi)) =
                            (order.get(held.as_str()), order.get(lock.as_str()))
                        else {
                            continue;
                        };
                        if hi >= bi {
                            push(
                                call.line,
                                format!(
                                    "call to `{}` may acquire `{}` while holding `{}` — \
                                     declared order is {}",
                                    display_name(st, callee),
                                    lock,
                                    held,
                                    cfg.l1_order.join(" < "),
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}
