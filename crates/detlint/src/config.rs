//! `detlint.toml` — rule scoping and the committed allowlist.
//!
//! Parsed with a hand-rolled TOML-subset reader (the workspace vendors no
//! TOML crate): `[section]` and `[[array-of-tables]]` headers, `key = "str"`
//! and `key = ["a", "b"]` values (arrays may span lines), `#` comments.
//! That subset is all the config needs; anything else is a hard error so
//! a typo cannot silently widen the allowlist.

use std::fmt;

/// One committed allowlist entry. Matches a diagnostic when the rule and
/// file agree and, if `contains` is set, the flagged source line contains
/// that substring. Every entry must carry a human-written reason.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    pub contains: Option<String>,
    pub reason: String,
}

/// Full analyzer configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Panic-free crates: every lexical panic site in their non-test code
    /// is a direct P1 finding. (`[rules.R1] crates` is accepted as a
    /// legacy spelling of this key.)
    pub p1_crates: Vec<String>,
    /// Additional crates in the P1 reachability universe: panic sites
    /// here are flagged at every public function whose call chain reaches
    /// them.
    pub p1_reach: Vec<String>,
    /// Workspace-relative files subject to N1 (checked casts).
    pub n1_files: Vec<String>,
    /// Workspace-relative dir prefixes excluded from D2 (wall-clock).
    pub d2_exclude_dirs: Vec<String>,
    /// Path prefixes whose matches on workspace enums must be exhaustive
    /// (X1).
    pub x1_paths: Vec<String>,
    /// Protocol types whose public `&mut self` methods must flush (I1).
    pub i1_types: Vec<String>,
    /// Method names that count as the flush (I1).
    pub i1_flush: Vec<String>,
    /// Crates subject to the lock-order check (L1).
    pub l1_crates: Vec<String>,
    /// The single declared lock order, outermost first (L1).
    pub l1_order: Vec<String>,
    /// Function names that acquire a lock (L1); `.lock()` method calls on
    /// field paths always count.
    pub l1_acquire: Vec<String>,
    /// Committed allowlist.
    pub allow: Vec<AllowEntry>,
}

impl Config {
    /// The acquire-function names with the built-in default applied.
    pub fn acquire_fns(&self) -> Vec<String> {
        if self.l1_acquire.is_empty() {
            vec!["lock".to_string()]
        } else {
            self.l1_acquire.clone()
        }
    }
}

/// A config-file parse error with a 1-based line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "detlint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Strip a trailing `#` comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

/// Parse one TOML basic string starting at `s` (which begins with `"`).
/// Returns (value, rest-after-closing-quote).
fn parse_string(s: &str, lineno: usize) -> Result<(String, &str), ConfigError> {
    let mut out = String::new();
    let mut it = s.char_indices();
    match it.next() {
        Some((_, '"')) => {}
        _ => return Err(err(lineno, "expected opening quote")),
    }
    let mut escaped = false;
    for (idx, c) in it {
        if escaped {
            match c {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                other => return Err(err(lineno, format!("unsupported escape \\{other}"))),
            }
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Ok((out, &s[idx + 1..])),
            other => out.push(other),
        }
    }
    Err(err(lineno, "unterminated string"))
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Section {
    None,
    RuleP1,
    RuleN1,
    RuleD2,
    RuleX1,
    RuleI1,
    RuleL1,
    Allow,
    /// A recognised-but-unused `[rules.*]` table; keys are rejected.
    Unknown(String),
}

/// Parse the config text. `source` is used only for error messages.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = Section::None;
    // Pending allow entry being filled by `key = value` lines.
    let mut pending: Option<(usize, AllowEntry)> = None;
    // Multiline array accumulation: (key, items, start-line).
    let mut open_array: Option<(String, Vec<String>, usize)> = None;

    let flush_allow =
        |cfg: &mut Config, pending: &mut Option<(usize, AllowEntry)>| -> Result<(), ConfigError> {
            if let Some((start, entry)) = pending.take() {
                if entry.rule.is_empty() || entry.file.is_empty() {
                    return Err(err(start, "[[allow]] entry needs both `rule` and `file`"));
                }
                if entry.reason.trim().is_empty() {
                    return Err(err(
                        start,
                        format!(
                            "[[allow]] entry for {} ({}) has no `reason`",
                            entry.file, entry.rule
                        ),
                    ));
                }
                cfg.allow.push(entry.clone());
            }
            Ok(())
        };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();

        if let Some((key, mut items, start)) = open_array.take() {
            // Continue a multiline array until the closing bracket.
            let mut rest = line;
            loop {
                rest = rest.trim_start_matches(',').trim();
                if rest.is_empty() {
                    open_array = Some((key, items, start));
                    break;
                }
                if let Some(after) = rest.strip_prefix(']') {
                    if !after.trim().is_empty() {
                        return Err(err(lineno, "trailing text after array close"));
                    }
                    store_array(&mut cfg, &section, &key, items, start)?;
                    break;
                }
                let (val, tail) = parse_string(rest, lineno)?;
                items.push(val);
                rest = tail.trim();
            }
            continue;
        }

        if line.is_empty() {
            continue;
        }

        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            flush_allow(&mut cfg, &mut pending)?;
            if header.trim() != "allow" {
                return Err(err(lineno, format!("unknown array table [[{header}]]")));
            }
            section = Section::Allow;
            pending = Some((
                lineno,
                AllowEntry {
                    rule: String::new(),
                    file: String::new(),
                    contains: None,
                    reason: String::new(),
                },
            ));
            continue;
        }

        if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            flush_allow(&mut cfg, &mut pending)?;
            section = match header.trim() {
                // R1 is the legacy name for P1's direct layer.
                "rules.P1" | "rules.R1" => Section::RuleP1,
                "rules.N1" => Section::RuleN1,
                "rules.D2" => Section::RuleD2,
                "rules.X1" => Section::RuleX1,
                "rules.I1" => Section::RuleI1,
                "rules.L1" => Section::RuleL1,
                other if other.starts_with("rules.") => Section::Unknown(other.to_string()),
                other => return Err(err(lineno, format!("unknown table [{other}]"))),
            };
            continue;
        }

        let Some(eq) = line.find('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = line[..eq].trim().to_string();
        let value = line[eq + 1..].trim();

        if let Some(body) = value.strip_prefix('[') {
            let mut items = Vec::new();
            let mut rest = body.trim();
            loop {
                rest = rest.trim_start_matches(',').trim();
                if rest.is_empty() {
                    // Array continues on the next line.
                    open_array = Some((key.clone(), items, lineno));
                    break;
                }
                if let Some(after) = rest.strip_prefix(']') {
                    if !after.trim().is_empty() {
                        return Err(err(lineno, "trailing text after array close"));
                    }
                    store_array(&mut cfg, &section, &key, items, lineno)?;
                    break;
                }
                let (val, tail) = parse_string(rest, lineno)?;
                items.push(val);
                rest = tail.trim();
            }
            continue;
        }

        if value.starts_with('"') {
            let (val, tail) = parse_string(value, lineno)?;
            if !tail.trim().is_empty() {
                return Err(err(lineno, "trailing text after string value"));
            }
            match (&section, key.as_str()) {
                (Section::Allow, "rule") => {
                    if let Some((_, entry)) = pending.as_mut() {
                        entry.rule = val;
                    }
                }
                (Section::Allow, "file") => {
                    if let Some((_, entry)) = pending.as_mut() {
                        entry.file = val;
                    }
                }
                (Section::Allow, "contains") => {
                    if let Some((_, entry)) = pending.as_mut() {
                        entry.contains = Some(val);
                    }
                }
                (Section::Allow, "reason") => {
                    if let Some((_, entry)) = pending.as_mut() {
                        entry.reason = val;
                    }
                }
                _ => {
                    return Err(err(
                        lineno,
                        format!("unexpected key `{key}` in this section"),
                    ))
                }
            }
            continue;
        }

        return Err(err(lineno, format!("unsupported value for `{key}`")));
    }

    if let Some((_, _, start)) = open_array {
        return Err(err(start, "unterminated array"));
    }
    flush_allow(&mut cfg, &mut pending)?;
    Ok(cfg)
}

fn store_array(
    cfg: &mut Config,
    section: &Section,
    key: &str,
    items: Vec<String>,
    lineno: usize,
) -> Result<(), ConfigError> {
    match (section, key) {
        (Section::RuleP1, "crates") => cfg.p1_crates = items,
        (Section::RuleP1, "reach") => cfg.p1_reach = items,
        (Section::RuleN1, "files") => cfg.n1_files = items,
        (Section::RuleD2, "exclude_dirs") => cfg.d2_exclude_dirs = items,
        (Section::RuleX1, "paths") => cfg.x1_paths = items,
        (Section::RuleI1, "types") => cfg.i1_types = items,
        (Section::RuleI1, "flush") => cfg.i1_flush = items,
        (Section::RuleL1, "crates") => cfg.l1_crates = items,
        (Section::RuleL1, "order") => cfg.l1_order = items,
        (Section::RuleL1, "acquire") => cfg.l1_acquire = items,
        _ => {
            return Err(err(
                lineno,
                format!("unexpected array key `{key}` in this section"),
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = r#"
# comment
[rules.P1]
crates = ["core", "slurmsim"]
reach = ["topology"]

[rules.N1]
files = [
    "crates/core/src/cost.rs",
    "crates/netsim/src/sim.rs",
]

[rules.D2]
exclude_dirs = ["crates/bench/src/bin"]

[rules.X1]
paths = ["crates/trace/src"]

[rules.I1]
types = ["ClusterState"]
flush = ["flush_index", "reindex"]

[rules.L1]
crates = ["vendor/rayon"]
order = ["shared", "remaining"]
acquire = ["lock"]

[[allow]]
rule = "D1"
file = "crates/core/src/eval.rs"
contains = "hop_map"
reason = "order-independent rebuild"
"#;
        let cfg = parse(text).expect("parse");
        assert_eq!(cfg.p1_crates, ["core", "slurmsim"]);
        assert_eq!(cfg.p1_reach, ["topology"]);
        assert_eq!(cfg.n1_files.len(), 2);
        assert_eq!(cfg.d2_exclude_dirs, ["crates/bench/src/bin"]);
        assert_eq!(cfg.x1_paths, ["crates/trace/src"]);
        assert_eq!(cfg.i1_types, ["ClusterState"]);
        assert_eq!(cfg.i1_flush, ["flush_index", "reindex"]);
        assert_eq!(cfg.l1_crates, ["vendor/rayon"]);
        assert_eq!(cfg.l1_order, ["shared", "remaining"]);
        assert_eq!(cfg.acquire_fns(), ["lock"]);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].contains.as_deref(), Some("hop_map"));
    }

    #[test]
    fn legacy_r1_section_feeds_p1() {
        let cfg = parse("[rules.R1]\ncrates = [\"core\"]\n").expect("parse");
        assert_eq!(cfg.p1_crates, ["core"]);
        assert_eq!(cfg.acquire_fns(), ["lock"], "default acquire fn");
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let text = "[[allow]]\nrule = \"D1\"\nfile = \"x.rs\"\n";
        let e = parse(text).expect_err("must fail");
        assert!(e.message.contains("reason"));
    }

    #[test]
    fn unknown_table_is_an_error() {
        assert!(parse("[surprise]\n").is_err());
    }
}
