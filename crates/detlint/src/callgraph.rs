//! The approximate caller→callee graph.
//!
//! Name resolution is deliberately approximate and *conservative on
//! ambiguity*: when a call could refer to several workspace functions,
//! every candidate gets an edge. The resolver never invents names — a
//! call that matches nothing in the workspace (std, vendored externals)
//! resolves to the empty set. Rules built on reachability therefore see
//! a superset of the real graph within the workspace, which is the sound
//! direction for P1/I1/L1.
//!
//! Resolution, in order:
//! * `Type::f(…)` / `Self::f(…)` — methods of that impl type.
//! * `crate::…`, `commsched_x::…`, `self::…`, `super::…` — crate-scoped
//!   module-suffix match over free functions.
//! * `a::b::f(…)` — free functions whose module path ends with `a::b`.
//! * bare `f(…)` — same-module free functions, else same-crate, else any
//!   workspace free function with that name (a `use`-import we don't
//!   track).
//! * `self.m(…)` — methods of the caller's impl type, falling back to
//!   every same-named method.
//! * `recv.m(…)` — every workspace method named `m` (receiver types are
//!   not inferred).

use crate::parse::{CallTarget, FnItem};
use crate::symbols::{FileSource, SymbolTable};

/// Per-function resolution results.
pub struct CallGraph {
    /// `edges[f]` — sorted, deduped callee indexes of `fns[f]`.
    pub edges: Vec<Vec<usize>>,
    /// `call_targets[f][c]` — callees of call site `c` in `f`'s body
    /// (parallel to `body.calls`).
    pub call_targets: Vec<Vec<Vec<usize>>>,
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_uppercase())
}

/// Resolve one call target for `caller` (index into `st.fns`).
fn resolve(st: &SymbolTable, caller: usize, target: &CallTarget) -> Vec<usize> {
    let c = &st.fns[caller];
    match target {
        CallTarget::Method { name, on_self } => {
            let Some(cands) = st.by_name.get(name) else {
                return Vec::new();
            };
            if *on_self {
                if let Some(ty) = &c.impl_type {
                    let same: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&i| st.fns[i].impl_type.as_deref() == Some(ty))
                        .collect();
                    if !same.is_empty() {
                        return same;
                    }
                }
            }
            cands
                .iter()
                .copied()
                .filter(|&i| st.fns[i].impl_type.is_some())
                .collect()
        }
        CallTarget::Path(segs) => {
            let Some((name, quals)) = segs.split_last() else {
                return Vec::new();
            };
            let Some(cands) = st.by_name.get(name) else {
                return Vec::new();
            };
            let mut quals: Vec<&str> = quals.iter().map(String::as_str).collect();
            // Crate-scoping prefixes.
            let mut crate_restrict: Option<&str> = None;
            if let Some(&first) = quals.first() {
                if first == "crate" || first == "self" || first == "super" {
                    crate_restrict = Some(c.crate_key.as_str());
                    quals.remove(0);
                    while quals.first() == Some(&"super") {
                        quals.remove(0);
                    }
                } else if let Some(key) = st.crate_alias.get(first) {
                    crate_restrict = Some(key.as_str());
                    quals.remove(0);
                }
            }
            // Type-qualified: `Type::f` / `Self::f` — the last qualifier
            // names a type, not a module.
            if let Some(&last) = quals.last() {
                let ty = if last == "Self" {
                    c.impl_type.as_deref()
                } else if starts_upper(last) {
                    Some(last)
                } else {
                    None
                };
                if let Some(ty) = ty {
                    return cands
                        .iter()
                        .copied()
                        .filter(|&i| {
                            st.fns[i].impl_type.as_deref() == Some(ty)
                                && crate_restrict.is_none_or(|k| st.fns[i].crate_key == k)
                        })
                        .collect();
                }
            }
            let free: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| st.fns[i].impl_type.is_none())
                .collect();
            if !quals.is_empty() || crate_restrict.is_some() {
                return free
                    .into_iter()
                    .filter(|&i| {
                        let f = &st.fns[i];
                        crate_restrict.is_none_or(|k| f.crate_key == k)
                            && f.module.len() >= quals.len()
                            && f.module[f.module.len() - quals.len()..]
                                .iter()
                                .zip(&quals)
                                .all(|(m, q)| m == q)
                    })
                    .collect();
            }
            // Bare call: nearest scope wins, widening only when empty.
            let same_module: Vec<usize> = free
                .iter()
                .copied()
                .filter(|&i| st.fns[i].crate_key == c.crate_key && st.fns[i].module == c.module)
                .collect();
            if !same_module.is_empty() {
                return same_module;
            }
            let same_crate: Vec<usize> = free
                .iter()
                .copied()
                .filter(|&i| st.fns[i].crate_key == c.crate_key)
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            free
        }
    }
}

/// Build the graph over every function body.
pub fn build(st: &SymbolTable, files: &[FileSource]) -> CallGraph {
    let mut edges = Vec::with_capacity(st.fns.len());
    let mut call_targets = Vec::with_capacity(st.fns.len());
    for (idx, f) in st.fns.iter().enumerate() {
        let item: &FnItem = &files[f.file].parsed.fns[f.item];
        let mut per_site = Vec::with_capacity(item.body.calls.len());
        let mut all = Vec::new();
        for call in &item.body.calls {
            let mut callees = resolve(st, idx, &call.target);
            callees.sort_unstable();
            callees.dedup();
            all.extend(callees.iter().copied());
            per_site.push(callees);
        }
        all.sort_unstable();
        all.dedup();
        edges.push(all);
        call_targets.push(per_site);
    }
    CallGraph {
        edges,
        call_targets,
    }
}

/// BFS from `start` over `edges`, visiting only nodes where `enter`
/// holds; returns predecessor map for chain reconstruction (usize::MAX
/// for the start).
pub fn bfs(
    edges: &[Vec<usize>],
    start: usize,
    enter: impl Fn(usize) -> bool,
) -> std::collections::BTreeMap<usize, usize> {
    let mut pred = std::collections::BTreeMap::new();
    if !enter(start) {
        return pred;
    }
    pred.insert(start, usize::MAX);
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(n) = queue.pop_front() {
        for &m in &edges[n] {
            if enter(m) && !pred.contains_key(&m) {
                pred.insert(m, n);
                queue.push_back(m);
            }
        }
    }
    pred
}

/// Reconstruct the chain start→…→`node` from a [`bfs`] predecessor map.
pub fn chain(pred: &std::collections::BTreeMap<usize, usize>, node: usize) -> Vec<usize> {
    let mut path = vec![node];
    let mut cur = node;
    while let Some(&p) = pred.get(&cur) {
        if p == usize::MAX {
            break;
        }
        path.push(p);
        cur = p;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parse;
    use crate::symbols::{self, FileSource};

    fn file(rel: &str, crate_key: &str, src: &str) -> FileSource {
        let lexed = lexer::strip(src);
        let toks = lexer::tokenize(&lexed.cleaned);
        FileSource {
            rel: rel.to_string(),
            crate_key: crate_key.to_string(),
            parsed: parse::parse(&toks, &["lock".to_string()]),
        }
    }

    fn graph(files: Vec<FileSource>) -> (symbols::SymbolTable, CallGraph, Vec<FileSource>) {
        let st = symbols::build(&files);
        let cg = build(&st, &files);
        (st, cg, files)
    }

    fn idx(st: &symbols::SymbolTable, name: &str) -> usize {
        st.by_name
            .get(name)
            .and_then(|v| v.first())
            .copied()
            .expect("fn")
    }

    #[test]
    fn cross_module_and_cross_crate_calls_resolve() {
        let (st, cg, _f) = graph(vec![
            file(
                "crates/core/src/lib.rs",
                "core",
                "pub fn entry() { state::step(); commsched_topology::measure(1); }\n",
            ),
            file(
                "crates/core/src/state.rs",
                "core",
                "pub fn step() { crate::finish(); }\n",
            ),
            file("crates/core/src/done.rs", "core", "pub fn finish() {}\n"),
            file(
                "crates/topology/src/lib.rs",
                "topology",
                "pub fn measure(x: u32) -> u32 { x }\n",
            ),
        ]);
        let entry = idx(&st, "entry");
        assert_eq!(cg.edges[entry], [idx(&st, "step"), idx(&st, "measure")]);
        let step = idx(&st, "step");
        assert_eq!(cg.edges[step], [idx(&st, "finish")]);
    }

    #[test]
    fn same_module_bare_call_shadows_other_crates() {
        let (st, cg, _f) = graph(vec![
            file(
                "crates/a/src/lib.rs",
                "a",
                "fn helper() {}\npub fn go() { helper(); }\n",
            ),
            file("crates/b/src/lib.rs", "b", "pub fn helper() {}\n"),
        ]);
        let go = idx(&st, "go");
        assert_eq!(cg.edges[go].len(), 1);
        assert_eq!(st.fns[cg.edges[go][0]].crate_key, "a");
    }

    #[test]
    fn method_receivers_route_to_impl_type() {
        let (st, cg, _f) = graph(vec![file(
            "crates/a/src/lib.rs",
            "a",
            "struct S;\nstruct T;\n\
             impl S { pub fn act(&self) { self.inner(); } fn inner(&self) {} }\n\
             impl T { fn inner(&self) {} }\n\
             pub fn free(s: &S) { s.act(); S::act(s); }\n",
        )]);
        let act = idx(&st, "act");
        // `self.inner()` resolves only to S::inner, not T::inner.
        assert_eq!(cg.edges[act].len(), 1);
        assert_eq!(st.fns[cg.edges[act][0]].impl_type.as_deref(), Some("S"));
        // `s.act()` (unknown receiver) and `S::act` both reach `act`.
        let free = idx(&st, "free");
        assert_eq!(cg.edges[free], [act]);
    }

    #[test]
    fn ambiguous_receivers_stay_conservative() {
        let (st, cg, _f) = graph(vec![file(
            "crates/a/src/lib.rs",
            "a",
            "struct S;\nstruct T;\n\
             impl S { fn tick(&self) {} }\n\
             impl T { fn tick(&self) {} }\n\
             pub fn free(x: &S) { x.tick(); }\n",
        )]);
        let free = idx(&st, "free");
        // Both `tick` methods are candidates — conservative superset.
        assert_eq!(cg.edges[free].len(), 2);
    }

    #[test]
    fn unknown_names_resolve_to_nothing() {
        let (st, cg, _f) = graph(vec![file(
            "crates/a/src/lib.rs",
            "a",
            "pub fn go(v: Vec<u32>) -> usize { v.len() }\n",
        )]);
        let go = idx(&st, "go");
        assert!(cg.edges[go].is_empty());
    }

    #[test]
    fn bfs_chain_reconstructs_path() {
        let edges = vec![vec![1], vec![2], vec![]];
        let pred = bfs(&edges, 0, |_| true);
        assert_eq!(chain(&pred, 2), [0, 1, 2]);
    }
}
