//! The hierarchical free-count index: ordered summaries over the
//! incremental per-switch/per-leaf counters that make every selector's
//! descent sublinear in machine size.
//!
//! [`ClusterState`](crate::ClusterState) has maintained exact
//! `leaf_free`/`switch_free` counters since PR 1; the selectors still paid
//! a full scan over *all* switches (lowest-level-switch search) plus a
//! collect-and-sort over *all* leaves under the chosen switch on **every**
//! placement — the dominant cost at the 500k–1M-node presets. The index
//! keeps three queryable summaries, all plain ordered sets so iteration
//! order is a pure function of the counters (determinism rule D1):
//!
//! * **per level**: `(subtree_free, switch_id)` for every switch with free
//!   capacity — the lowest-level-switch query walks levels bottom-up and
//!   takes one `BTreeSet::range` successor per level, O(height · log S)
//!   instead of O(S);
//! * **per non-leaf switch**: its descendant leaves with free nodes,
//!   ordered by `(leaf_free, ordinal)` — the default/balanced fill orders;
//! * **per non-leaf switch**: the same leaves ordered by
//!   `(communication-ratio key, ordinal)` — the greedy (Eq. 1) fill order.
//!
//! Selectors *iterate* these orders lazily and stop as soon as the request
//! is satisfied, so a placement costs O(height · log S + leaves actually
//! used) — the old path's sort alone was O(L log L) in the leaves under
//! the chosen switch.
//!
//! Maintenance is batched: counter mutations note the pre-mutation value
//! of each touched leaf/switch (first touch wins), and every public
//! [`ClusterState`](crate::ClusterState) mutation flushes the notes into
//! the sets before returning — one remove+insert per *touched summary
//! entry*, not per node, so allocating a 512-node job on one leaf updates
//! that leaf's entries once. Readers (`&self`) always see a clean index.

use commsched_num::usize_of_u32;
use commsched_topology::{SwitchId, Tree};
use std::collections::{BTreeMap, BTreeSet};

const SIGN: u64 = 1 << 63;

/// Map an `f64` to a `u64` whose unsigned order equals `f64::total_cmp`
/// order — the greedy fill order sorts by communication ratio with
/// `total_cmp`, and the index must reproduce that order exactly from a
/// stored key.
#[inline]
pub(crate) fn ratio_key(r: f64) -> u64 {
    let b = r.to_bits();
    if b & SIGN == 0 {
        b | SIGN
    } else {
        !b
    }
}

/// The index proper. Owned by [`ClusterState`](crate::ClusterState);
/// derived entirely from the occupancy counters, and therefore excluded
/// from state equality and serialization, like the version token.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FreeIndex {
    /// `[level - 1]` → `(subtree_free, switch_id)` of every switch at that
    /// level with `subtree_free > 0`.
    level_sets: Vec<BTreeSet<(u32, u32)>>,
    /// `[switch_id]` → `(leaf_free, leaf_ordinal)` of the descendant
    /// leaves with free nodes. Empty for leaf switches (a leaf's own
    /// counter is `leaf_free`).
    by_free: Vec<BTreeSet<(u32, u32)>>,
    /// `[switch_id]` → `(ratio_key, leaf_ordinal)` of the same leaves.
    by_ratio: Vec<BTreeSet<(u64, u32)>>,
    /// Switches whose `subtree_free` changed since the last flush, with
    /// the value the sets currently reflect.
    dirty_switches: BTreeMap<u32, u32>,
    /// Leaves whose fill keys changed since the last flush, with the
    /// `(leaf_free, ratio_key)` the sets currently reflect.
    dirty_leaves: BTreeMap<u32, (u32, u64)>,
}

impl FreeIndex {
    /// Rebuild from scratch against explicit counter slices (construction,
    /// reset, deserialization recovery). `ratio` must be the exact value
    /// `ClusterState::communication_ratio` would report for the ordinal.
    pub(crate) fn rebuild(
        &mut self,
        tree: &Tree,
        leaf_free: &[u32],
        switch_free: &[u32],
        ratio: impl Fn(usize) -> f64,
    ) {
        let height = usize::try_from(tree.height()).unwrap_or(1);
        self.level_sets.clear();
        self.level_sets.resize(height, BTreeSet::new());
        self.by_free.clear();
        self.by_free.resize(tree.num_switches(), BTreeSet::new());
        self.by_ratio.clear();
        self.by_ratio.resize(tree.num_switches(), BTreeSet::new());
        self.dirty_switches.clear();
        self.dirty_leaves.clear();

        for (id, sw) in tree.switches().iter().enumerate() {
            let free = switch_free[id];
            if free > 0 {
                if let (Ok(id32), Some(set)) = (
                    u32::try_from(id),
                    self.level_sets.get_mut(level_slot(sw.level)),
                ) {
                    set.insert((free, id32));
                }
            }
        }
        for (k, &free) in leaf_free.iter().enumerate() {
            if free == 0 {
                continue;
            }
            let Ok(ord) = u32::try_from(k) else { continue };
            let rkey = ratio_key(ratio(k));
            let mut up = tree.switch(tree.leaf(k)).parent;
            while let Some(p) = up {
                self.by_free[p.0].insert((free, ord));
                self.by_ratio[p.0].insert((rkey, ord));
                up = tree.switch(p).parent;
            }
        }
    }

    /// Note a switch's current `subtree_free` before it is mutated. The
    /// first note since the last flush wins: it records what the sets
    /// still reflect.
    #[inline]
    pub(crate) fn note_switch(&mut self, id: u32, free_before: u32) {
        self.dirty_switches.entry(id).or_insert(free_before);
    }

    /// Note a leaf's current fill keys before its counters are mutated.
    #[inline]
    pub(crate) fn note_leaf(&mut self, ord: u32, free_before: u32, rkey_before: u64) {
        self.dirty_leaves
            .entry(ord)
            .or_insert((free_before, rkey_before));
    }

    /// Whether any notes are pending (readers require a clean index).
    #[inline]
    pub(crate) fn is_dirty(&self) -> bool {
        !self.dirty_switches.is_empty() || !self.dirty_leaves.is_empty()
    }

    /// Take the pending notes for a flush (see `ClusterState::flush_index`,
    /// which owns the counter reads the flush needs).
    pub(crate) fn take_dirty(&mut self) -> (BTreeMap<u32, u32>, BTreeMap<u32, (u32, u64)>) {
        (
            std::mem::take(&mut self.dirty_switches),
            std::mem::take(&mut self.dirty_leaves),
        )
    }

    /// Re-key one switch in its level set.
    #[inline]
    pub(crate) fn apply_switch(&mut self, level: u32, id: u32, old_free: u32, new_free: u32) {
        if old_free == new_free {
            return;
        }
        if let Some(set) = self.level_sets.get_mut(level_slot(level)) {
            if old_free > 0 {
                set.remove(&(old_free, id));
            }
            if new_free > 0 {
                set.insert((new_free, id));
            }
        }
    }

    /// Re-key one leaf in every ancestor's fill-order sets.
    pub(crate) fn apply_leaf(
        &mut self,
        tree: &Tree,
        ord: u32,
        (old_free, old_rkey): (u32, u64),
        (new_free, new_rkey): (u32, u64),
    ) {
        if (old_free, old_rkey) == (new_free, new_rkey) {
            return;
        }
        let mut up = tree.switch(tree.leaf(usize_of_u32(ord))).parent;
        while let Some(p) = up {
            let bf = &mut self.by_free[p.0];
            if old_free > 0 {
                bf.remove(&(old_free, ord));
            }
            if new_free > 0 {
                bf.insert((new_free, ord));
            }
            let br = &mut self.by_ratio[p.0];
            if old_free > 0 {
                br.remove(&(old_rkey, ord));
            }
            if new_free > 0 {
                br.insert((new_rkey, ord));
            }
            up = tree.switch(p).parent;
        }
    }

    /// The lowest-level switch whose subtree has at least `want` free
    /// nodes; ties at the same level break toward fewest free, then lowest
    /// id — exactly the scan baseline's `(level, free, id)` minimum.
    /// Requires `want >= 1`.
    pub(crate) fn lowest_level_switch(&self, want: usize) -> Option<SwitchId> {
        debug_assert!(!self.is_dirty(), "index read before flush");
        let want = u32::try_from(want).ok()?;
        for set in &self.level_sets {
            if let Some(&(_, id)) = set.range((want, 0u32)..).next() {
                return Some(SwitchId(usize_of_u32(id)));
            }
        }
        None
    }

    /// Descendant leaves of `p` with free nodes, ordered by
    /// `(leaf_free, ordinal)` ascending.
    #[inline]
    pub(crate) fn leaves_by_free(&self, p: SwitchId) -> &BTreeSet<(u32, u32)> {
        debug_assert!(!self.is_dirty(), "index read before flush");
        &self.by_free[p.0]
    }

    /// Descendant leaves of `p` with free nodes, ordered by
    /// `(ratio_key, ordinal)` ascending.
    #[inline]
    pub(crate) fn leaves_by_ratio(&self, p: SwitchId) -> &BTreeSet<(u64, u32)> {
        debug_assert!(!self.is_dirty(), "index read before flush");
        &self.by_ratio[p.0]
    }
}

/// The index is derived data, rebuilt from the counters on construction
/// and reset — it never round-trips through serialization, so its JSON
/// form is a `null` placeholder (the vendored serde shim serializes every
/// named field; see `vendor/serde_derive`).
impl serde::Serialize for FreeIndex {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for FreeIndex {}

/// `level_sets` slot of a switch level (levels are 1-based).
#[inline]
fn level_slot(level: u32) -> usize {
    usize_of_u32(level.saturating_sub(1))
}

/// Visit `(key, ordinal)` entries in *descending* key order with ties in
/// *ascending* ordinal order — the order the scan selectors produce with
/// `sort_by(|a, b| key(b).cmp(&key(a)).then(a.cmp(&b)))`. Each equal-key
/// group costs one range seek; iteration stops when `visit` returns
/// `false`.
pub(crate) fn visit_desc<K: Ord + Copy>(
    set: &BTreeSet<(K, u32)>,
    mut visit: impl FnMut(u32) -> bool,
) {
    let mut bound: Option<K> = None;
    loop {
        let last = match bound {
            None => set.iter().next_back(),
            Some(b) => set.range(..(b, 0u32)).next_back(),
        };
        let Some(&(key, _)) = last else { return };
        for &(_, ord) in set.range((key, 0u32)..=(key, u32::MAX)) {
            if !visit(ord) {
                return;
            }
        }
        bound = Some(key);
    }
}
