//! Linear-scan reference implementations of the four selectors.
//!
//! These are the exact pre-index algorithms (scan every switch for the
//! lowest-level pick, collect-and-sort every leaf under it for the fill
//! order), preserved verbatim for two jobs:
//!
//! * the property tests in `tests` assert every indexed selector in
//!   [`crate::select`] returns **byte-identical** placements to its scan
//!   twin on randomized trees and occupancies;
//! * the `bench_engine` selection benchmarks measure the indexed-vs-scan
//!   gap on the exascale presets (the headline speedup of ROADMAP item 3).
//!
//! They are O(cluster size) per placement and not meant for production use.

use crate::cost::CostModel;
use crate::eval::PlacementEvaluator;
use crate::select::{check_request, AllocRequest, SelectError};
use crate::state::ClusterState;
use commsched_num::usize_of_u32;
use commsched_topology::{NodeId, SwitchId, Tree};
use std::sync::{Arc, Mutex};

/// Find the lowest-level switch whose subtree has at least `want` free
/// nodes by scanning every switch. Ties at the same level break toward the
/// *fewest* free nodes (best fit), then lowest id.
fn lowest_level_switch(tree: &Tree, state: &ClusterState, want: usize) -> Option<SwitchId> {
    let mut best: Option<(u32, usize, usize)> = None; // (level, free, id)
    for id in 0..tree.num_switches() {
        let s = SwitchId(id);
        let sw = tree.switch(s);
        if sw.subtree_nodes < want {
            continue;
        }
        let free = state.subtree_free(tree, s);
        if free < want {
            continue;
        }
        let key = (sw.level, free, id);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.map(|(_, _, id)| SwitchId(id))
}

fn pick_switch_scan(
    tree: &Tree,
    state: &ClusterState,
    req: &AllocRequest,
) -> Result<SwitchId, SelectError> {
    check_request(state, req)?;
    lowest_level_switch(tree, state, req.nodes).ok_or(SelectError::NotEnoughNodes {
        requested: req.nodes,
        free: state.free_total(),
    })
}

/// Fill `out` by taking `min(free, remaining)` nodes from each leaf of
/// `order` in turn. Returns the number still unallocated.
fn fill_in_order(
    tree: &Tree,
    state: &ClusterState,
    order: &[usize],
    mut remaining: usize,
    out: &mut Vec<NodeId>,
) -> usize {
    for &k in order {
        if remaining == 0 {
            break;
        }
        let free = usize_of_u32(state.leaf_free(k));
        if free == 0 {
            continue;
        }
        let take = free.min(remaining);
        out.extend(state.free_nodes_on_leaf(tree, k, take));
        remaining -= take;
    }
    remaining
}

/// Scan twin of [`crate::DefaultTreeSelector`].
pub fn default_select(
    tree: &Tree,
    state: &ClusterState,
    req: &AllocRequest,
) -> Result<Vec<NodeId>, SelectError> {
    let p = pick_switch_scan(tree, state, req)?;
    let mut order: Vec<usize> = tree
        .leaf_ordinals_under(p)
        .iter()
        .copied()
        .filter(|&k| state.leaf_free(k) > 0)
        .collect();
    order.sort_by_key(|&k| (state.leaf_free(k), k));
    let mut out = Vec::with_capacity(req.nodes);
    let left = fill_in_order(tree, state, &order, req.nodes, &mut out);
    debug_assert_eq!(left, 0, "switch was checked to have enough free nodes");
    Ok(out)
}

/// Scan twin of [`crate::GreedySelector`].
pub fn greedy_select(
    tree: &Tree,
    state: &ClusterState,
    req: &AllocRequest,
) -> Result<Vec<NodeId>, SelectError> {
    let p = pick_switch_scan(tree, state, req)?;
    // Leaf-switch fast path (Alg. 1 lines 3-5): a single leaf serves the
    // whole request.
    if tree.switch(p).children.is_empty() {
        let k = tree.leaf_ordinal(p);
        return Ok(state.free_nodes_on_leaf(tree, k, req.nodes));
    }
    let mut order: Vec<usize> = tree
        .leaf_ordinals_under(p)
        .iter()
        .copied()
        .filter(|&k| state.leaf_free(k) > 0)
        .collect();
    // Sort by communication ratio; f64 keys via total_cmp, leaf ordinal
    // as the deterministic tie-break.
    if req.nature.is_comm() {
        order.sort_by(|&a, &b| {
            state
                .communication_ratio(tree, a)
                .total_cmp(&state.communication_ratio(tree, b))
                .then(a.cmp(&b))
        });
    } else {
        order.sort_by(|&a, &b| {
            state
                .communication_ratio(tree, b)
                .total_cmp(&state.communication_ratio(tree, a))
                .then(a.cmp(&b))
        });
    }
    let mut out = Vec::with_capacity(req.nodes);
    let left = fill_in_order(tree, state, &order, req.nodes, &mut out);
    debug_assert_eq!(left, 0);
    Ok(out)
}

/// Scan twin of [`crate::BalancedSelector`].
pub fn balanced_select(
    tree: &Tree,
    state: &ClusterState,
    req: &AllocRequest,
) -> Result<Vec<NodeId>, SelectError> {
    let p = pick_switch_scan(tree, state, req)?;
    if tree.switch(p).children.is_empty() {
        let k = tree.leaf_ordinal(p);
        return Ok(state.free_nodes_on_leaf(tree, k, req.nodes));
    }
    let mut order: Vec<usize> = tree
        .leaf_ordinals_under(p)
        .iter()
        .copied()
        .filter(|&k| state.leaf_free(k) > 0)
        .collect();

    if !req.nature.is_comm() {
        // Lines 29-36: compute jobs take the fullest-first (fewest free)
        // leaves without the power-of-two discipline.
        order.sort_by_key(|&k| (state.leaf_free(k), k));
        let mut out = Vec::with_capacity(req.nodes);
        let left = fill_in_order(tree, state, &order, req.nodes, &mut out);
        debug_assert_eq!(left, 0);
        return Ok(out);
    }

    // Lines 9-21: decreasing free order, grant sizes halving to fit.
    order.sort_by(|&a, &b| state.leaf_free(b).cmp(&state.leaf_free(a)).then(a.cmp(&b)));
    let mut free: Vec<usize> = order
        .iter()
        .map(|&k| usize_of_u32(state.leaf_free(k)))
        .collect();
    let mut taken: Vec<usize> = vec![0; order.len()];
    let mut remaining = req.nodes;
    // `S` carries over between leaves and only ever shrinks (the paper's
    // Figure 4 subdivision; this is what reproduces Table 2).
    let mut s = req.nodes;
    for (idx, &f) in free.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        debug_assert!(f > 0);
        while s > f {
            s /= 2;
        }
        let take = s.min(remaining);
        taken[idx] = take;
        remaining -= take;
    }
    for (idx, t) in taken.iter().enumerate() {
        free[idx] -= t;
    }
    // Lines 22-27: leftovers in reverse sorted order, no constraint.
    if remaining > 0 {
        for idx in (0..order.len()).rev() {
            if remaining == 0 {
                break;
            }
            let take = free[idx].min(remaining);
            taken[idx] += take;
            free[idx] -= take;
            remaining -= take;
        }
    }
    debug_assert_eq!(remaining, 0, "switch had enough free nodes");
    let mut out = Vec::with_capacity(req.nodes);
    for (idx, &k) in order.iter().enumerate() {
        if taken[idx] > 0 {
            out.extend(state.free_nodes_on_leaf(tree, k, taken[idx]));
        }
    }
    Ok(out)
}

/// Scan twin of [`crate::AdaptiveSelector`]: compare the scan greedy and
/// balanced candidates under `cost` through `eval`, keeping the cheaper for
/// communication-intensive jobs and the costlier for compute-intensive ones.
pub fn adaptive_select(
    cost: &CostModel,
    eval: &Arc<Mutex<PlacementEvaluator>>,
    tree: &Tree,
    state: &ClusterState,
    req: &AllocRequest,
) -> Result<Vec<NodeId>, SelectError> {
    let greedy = greedy_select(tree, state, req)?;
    let balanced = balanced_select(tree, state, req)?;
    if greedy == balanced {
        return Ok(balanced);
    }
    let spec = req.spec();
    // detlint: allow(P1) — a poisoned mutex means another thread already
    // panicked mid-evaluation; propagating is the only sound response.
    let mut guard = eval.lock().expect("evaluator mutex poisoned");
    // Balanced last: when it wins (the common comm-intensive case) the
    // hop memo is warm for the caller's follow-up evaluation.
    let cost_g = guard
        .evaluate(tree, state, cost.trunk_discount, &greedy, &spec)
        .for_model(cost);
    let cost_b = guard
        .evaluate(tree, state, cost.trunk_discount, &balanced, &spec)
        .for_model(cost);
    let take_balanced = if req.nature.is_comm() {
        cost_b <= cost_g
    } else {
        cost_b > cost_g
    };
    Ok(if take_balanced { balanced } else { greedy })
}
