//! Budgeted simulated-annealing placement refinement (ROADMAP item 5).
//!
//! [`SaSelector`] starts from the adaptive greedy/balanced incumbent
//! (§4.3) and spends a fixed evaluation budget exploring neighbouring
//! placements: proposal moves *shift* nodes between sibling leaves or
//! *swap* two leaves' grants under the switch `topology/tree` picked, and
//! every proposal is scored with the fused what-if [`PlacementEvaluator`]
//! — no `ClusterState` clones, the hop memo re-stamps per proposal. The
//! acceptance rule is classic Metropolis with geometric cooling; see
//! DESIGN.md §4.10 for the determinism argument.
//!
//! Determinism contract:
//! * the proposal stream is drawn from a ChaCha generator seeded by
//!   [`derive_seed`]`(run_seed, job, attempt)` — placement is a pure
//!   function of (tree, state, request, budget, seed), independent of
//!   thread count or call history;
//! * a budget of 0 (or a compute-intensive job, or a single-leaf grant)
//!   returns the incumbent placement **bit-for-bit** — the `Vec` the
//!   adaptive rule produced, not a reconstruction;
//! * the returned placement never costs more than the incumbent: the
//!   search only replaces it when a strictly cheaper candidate was found.

use crate::cost::CostModel;
use crate::eval::PlacementEvaluator;
use crate::select::{
    check_request, AllocRequest, BalancedSelector, GreedySelector, NodeSelector, SelectError,
};
use crate::state::{ClusterState, JobId};
use commsched_num::{f64_of_u64, usize_of_u32};
use commsched_topology::{NodeId, Tree};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::{Arc, Mutex};

/// Annealing budget and temperature schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaBudget {
    /// Maximum number of evaluator calls per placement. 0 disables the
    /// search entirely — the incumbent is returned bit-for-bit.
    pub max_evals: u32,
    /// Initial temperature, as a fraction of the incumbent cost (the
    /// Metropolis scale is `temp * max(cost_incumbent, 1)`).
    pub init_temp: f64,
    /// Geometric cooling factor applied after every evaluation.
    pub cooling: f64,
}

impl Default for SaBudget {
    /// 256 evaluations, initial temperature 8% of the incumbent cost,
    /// 0.97 cooling — cold enough to converge well inside the budget.
    fn default() -> Self {
        SaBudget {
            max_evals: 256,
            init_temp: 0.08,
            cooling: 0.97,
        }
    }
}

impl SaBudget {
    /// A budget with the default temperature schedule.
    pub fn with_evals(max_evals: u32) -> Self {
        SaBudget {
            max_evals,
            ..SaBudget::default()
        }
    }
}

/// Outcome of one annealing search, recorded for tracing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaStats {
    /// Job the search placed.
    pub job: JobId,
    /// Scheduling attempt (0 = first try, bumps on requeue).
    pub attempt: u32,
    /// Configured `max_evals`.
    pub budget: u32,
    /// Evaluator calls actually spent.
    pub evals: u32,
    /// Accepted proposals (including uphill Metropolis accepts).
    pub accepted: u32,
    /// Rejected proposals.
    pub rejected: u32,
    /// Eq. 6 cost of the incumbent placement under the search model.
    pub cost_incumbent: f64,
    /// Cost of the returned placement (≤ `cost_incumbent`).
    pub cost_final: f64,
}

/// Derive the per-search RNG seed from the run seed, the job id and the
/// scheduling attempt (splitmix64-style finalizers), so requeued attempts
/// explore a *different* neighbourhood than the first try while staying
/// fully reproducible from the run seed.
pub fn derive_seed(run_seed: u64, job: JobId, attempt: u32) -> u64 {
    let mut z = run_seed
        .wrapping_add(job.0.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(u64::from(attempt).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Budgeted simulated-annealing selector over the free-count index.
///
/// Shares its [`PlacementEvaluator`] with the caller (like
/// [`crate::AdaptiveSelector`]) so hop values computed while scoring
/// proposals
/// stay warm for the caller's own evaluation of the winning allocation,
/// and exposes the last search's [`SaStats`] through a shared handle for
/// trace emission.
#[derive(Debug, Clone)]
pub struct SaSelector {
    /// Cost model proposals are scored under (hop-bytes by default, like
    /// the adaptive rule it refines).
    pub cost: CostModel,
    /// Evaluation budget and temperature schedule.
    pub budget: SaBudget,
    /// Run seed the per-job search seed is derived from.
    pub seed: u64,
    eval: Arc<Mutex<PlacementEvaluator>>,
    stats: Arc<Mutex<Option<SaStats>>>,
}

impl Default for SaSelector {
    fn default() -> Self {
        SaSelector::new(SaBudget::default(), 0)
    }
}

impl SaSelector {
    /// SA under hop-bytes with a private evaluator.
    pub fn new(budget: SaBudget, seed: u64) -> Self {
        SaSelector::with_evaluator(
            CostModel::HOP_BYTES,
            budget,
            seed,
            Arc::new(Mutex::new(PlacementEvaluator::new())),
        )
    }

    /// SA sharing `eval` with the caller.
    pub fn with_evaluator(
        cost: CostModel,
        budget: SaBudget,
        seed: u64,
        eval: Arc<Mutex<PlacementEvaluator>>,
    ) -> Self {
        SaSelector {
            cost,
            budget,
            seed,
            eval,
            stats: Arc::new(Mutex::new(None)),
        }
    }

    /// Handle to the last comm-intensive search's statistics. The engine
    /// clears it before each placement and drains it afterwards to emit
    /// the `sa_search` trace event.
    pub fn stats_handle(&self) -> Arc<Mutex<Option<SaStats>>> {
        Arc::clone(&self.stats)
    }

    /// Route statistics through a caller-owned handle instead of the
    /// selector's private one (the engine shares its handle so the trace
    /// layer can drain it without holding the selector).
    pub fn share_stats(mut self, handle: Arc<Mutex<Option<SaStats>>>) -> Self {
        self.stats = handle;
        self
    }

    /// Take (and clear) the statistics of the last search, if one ran.
    pub fn take_stats(&self) -> Option<SaStats> {
        self.stats.lock().ok().and_then(|mut s| s.take())
    }

    /// The §4.3 adaptive incumbent, byte-for-byte: greedy and balanced
    /// evaluated under `self.cost` (balanced last, keeping the memo warm),
    /// the comm rule preferring balanced on ties. Returns the chosen
    /// placement and its cost (`None` when no evaluation was needed or
    /// possible).
    fn incumbent(
        &self,
        tree: &Tree,
        state: &ClusterState,
        req: &AllocRequest,
    ) -> Result<(Vec<NodeId>, Option<f64>), SelectError> {
        let greedy = GreedySelector.select(tree, state, req)?;
        let balanced = BalancedSelector.select(tree, state, req)?;
        if greedy == balanced {
            return Ok((balanced, None));
        }
        let spec = req.spec();
        // A poisoned evaluator mutex means another thread panicked
        // mid-evaluation; degrade to the balanced placement instead of
        // propagating — the engine's own eval lock will surface the
        // poisoning to the caller.
        let Ok(mut eval) = self.eval.lock() else {
            return Ok((balanced, None));
        };
        let cost_g = eval
            .evaluate(tree, state, self.cost.trunk_discount, &greedy, &spec)
            .for_model(&self.cost);
        let cost_b = eval
            .evaluate(tree, state, self.cost.trunk_discount, &balanced, &spec)
            .for_model(&self.cost);
        let take_balanced = if req.nature.is_comm() {
            cost_b <= cost_g
        } else {
            cost_b > cost_g
        };
        Ok(if take_balanced {
            (balanced, Some(cost_b))
        } else {
            (greedy, Some(cost_g))
        })
    }

    /// Run the annealing loop from `incumbent`; returns the refined
    /// placement (or the incumbent `Vec` unchanged when no strictly
    /// cheaper candidate was found) and records [`SaStats`].
    fn anneal(
        &self,
        tree: &Tree,
        state: &ClusterState,
        req: &AllocRequest,
        incumbent: Vec<NodeId>,
        incumbent_cost: Option<f64>,
    ) -> Vec<NodeId> {
        // The same switch every index-driven selector picked: lowest level
        // with enough free nodes. Its leaves are the move alphabet.
        let Some(p) = state.index().lowest_level_switch(req.nodes) else {
            return incumbent;
        };
        if tree.switch(p).children.is_empty() {
            // Single-leaf grant — no sibling subtrees to move across.
            return incumbent;
        }
        // Candidate leaves in ascending ordinal order: (ordinal, capacity).
        let mut leaves: Vec<(usize, u32)> = state
            .index()
            .leaves_by_free(p)
            .iter()
            .map(|&(free, ord)| (usize_of_u32(ord), free))
            .collect();
        leaves.sort_unstable();
        if leaves.len() < 2 {
            return incumbent;
        }
        // Incumbent as a per-leaf take vector.
        let mut take = vec![0u32; leaves.len()];
        for n in &incumbent {
            let ord = tree.leaf_ordinal_of(*n);
            let Ok(idx) = leaves.binary_search_by_key(&ord, |&(o, _)| o) else {
                // Incumbent node on a leaf the index does not list under
                // `p` — cannot model the move space; keep the incumbent.
                return incumbent;
            };
            take[idx] += 1;
        }
        let spec = req.spec();
        let Ok(mut eval) = self.eval.lock() else {
            return incumbent;
        };
        let cost_incumbent = incumbent_cost.unwrap_or_else(|| {
            eval.evaluate(tree, state, self.cost.trunk_discount, &incumbent, &spec)
                .for_model(&self.cost)
        });
        let scale = cost_incumbent.max(1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(derive_seed(self.seed, req.job, req.attempt));
        let mut temp = self.budget.init_temp;
        let mut cur = take.clone();
        let mut cur_cost = cost_incumbent;
        let mut best = take.clone();
        let mut best_cost = cost_incumbent;
        let mut groups: Vec<(usize, u32)> = Vec::with_capacity(leaves.len());
        let mut evals = 0u32;
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut cand = cur.clone();
        while evals < self.budget.max_evals {
            cand.copy_from_slice(&cur);
            if !propose(&mut rng, &leaves, &mut cand) {
                // No legal move found in the retry window (e.g. every
                // leaf drained exactly); further draws are futile.
                break;
            }
            // Score the proposal from its take vector directly — no node
            // materialization, no sort; `leaves` is ordinal-ascending so
            // the groups are too.
            groups.clear();
            for (idx, &t) in cand.iter().enumerate() {
                if t > 0 {
                    groups.push((leaves[idx].0, t));
                }
            }
            let cost = eval
                .evaluate_grouped(tree, state, self.cost.trunk_discount, &groups, &spec)
                .for_model(&self.cost);
            evals += 1;
            let delta = cost - cur_cost;
            let accept = delta <= 0.0 || rng.random::<f64>() < (-delta / (temp * scale)).exp();
            if accept {
                accepted += 1;
                cur.copy_from_slice(&cand);
                cur_cost = cost;
                if cost < best_cost {
                    best.copy_from_slice(&cand);
                    best_cost = cost;
                }
            } else {
                rejected += 1;
            }
            temp *= self.budget.cooling;
        }
        let (out, cost_final) = if best_cost < cost_incumbent {
            let mut out = Vec::with_capacity(req.nodes);
            for (idx, &t) in best.iter().enumerate() {
                if t > 0 {
                    out.extend(state.free_nodes_on_leaf(tree, leaves[idx].0, usize_of_u32(t)));
                }
            }
            // Confirm the winner on its materialized nodes. On every
            // built-in topology this reproduces the grouped score exactly;
            // on an exotic conf file whose node ids interleave leaves it
            // may differ — either way the ≤-incumbent guarantee is checked
            // against the *materialized* cost, which is what callers see.
            let confirmed = eval
                .evaluate(tree, state, self.cost.trunk_discount, &out, &spec)
                .for_model(&self.cost);
            if confirmed < cost_incumbent {
                (out, confirmed)
            } else {
                (incumbent, cost_incumbent)
            }
        } else {
            (incumbent, cost_incumbent)
        };
        if let Ok(mut slot) = self.stats.lock() {
            *slot = Some(SaStats {
                job: req.job,
                attempt: req.attempt,
                budget: self.budget.max_evals,
                evals,
                accepted,
                rejected,
                cost_incumbent,
                cost_final,
            });
        }
        out
    }
}

/// Mutate `cand` with one legal shift or swap move; `false` when no legal
/// move was found within the retry window.
fn propose(rng: &mut ChaCha12Rng, leaves: &[(usize, u32)], cand: &mut [u32]) -> bool {
    const RETRIES: u32 = 8;
    let n = leaves.len();
    for _ in 0..RETRIES {
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i == j {
            continue;
        }
        if rng.random::<bool>() {
            // Shift: move nodes from leaf i to leaf j's headroom.
            let room = leaves[j].1 - cand[j];
            let movable = cand[i].min(room);
            if movable == 0 {
                continue;
            }
            let amt = rng.random_range(1..=movable);
            cand[i] -= amt;
            cand[j] += amt;
        } else {
            // Swap the two leaves' grants, capacities permitting.
            if cand[i] == cand[j] || cand[i] > leaves[j].1 || cand[j] > leaves[i].1 {
                continue;
            }
            cand.swap(i, j);
        }
        return true;
    }
    false
}

impl NodeSelector for SaSelector {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn select(
        &self,
        tree: &Tree,
        state: &ClusterState,
        req: &AllocRequest,
    ) -> Result<Vec<NodeId>, SelectError> {
        check_request(state, req)?;
        let (incumbent, cost) = self.incumbent(tree, state, req)?;
        if self.budget.max_evals == 0 || !req.nature.is_comm() {
            return Ok(incumbent);
        }
        Ok(self.anneal(tree, state, req, incumbent, cost))
    }
}

/// Throughput probe for `bench_engine`: run one annealing search and
/// report `(placement, stats)` so the harness can compute evals/sec from
/// the *actual* number of evaluator calls.
pub fn sa_search_with_stats(
    selector: &SaSelector,
    tree: &Tree,
    state: &ClusterState,
    req: &AllocRequest,
) -> Result<(Vec<NodeId>, Option<SaStats>), SelectError> {
    let nodes = selector.select(tree, state, req)?;
    Ok((nodes, selector.take_stats()))
}

/// Interpret a stats record as evaluations per second given elapsed
/// nanoseconds (0 when nothing ran or time was unmeasurably short).
pub fn evals_per_sec(evals: u64, elapsed_ns: u64) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    f64_of_u64(evals) * 1e9 / f64_of_u64(elapsed_ns)
}
