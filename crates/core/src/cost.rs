//! The paper's contention and communication-cost model (§5.3, Eqs. 2–6).

use crate::state::ClusterState;
use commsched_collectives::CollectiveSpec;
use commsched_num::{f64_of_u64, f64_of_usize, i32_of_u32};
use commsched_topology::{NodeId, Tree};
use std::collections::HashMap;

/// Evaluator for the paper's effective-hops cost model.
///
/// * **Contention factor** `C(i, j)` — Eq. 2 when the nodes share a leaf,
///   Eq. 3 across leaves (individual leaf contentions plus half the pooled
///   contention of the common upper switch; the half models fat-tree links
///   doubling upward).
/// * **Effective hops** — Eq. 5: `Hops(i, j) = d(i, j) * (1 + C(i, j))`.
/// * **Job cost** — Eq. 6: per collective step, the *maximum* effective hops
///   over the step's concurrently communicating node pairs, summed across
///   steps. With [`CostModel::hop_bytes`] the per-step maximum is weighted
///   by the step's message size (the paper's "effective hop-bytes").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Weight each step by its message size (hop-bytes) instead of raw hops.
    pub hop_bytes: bool,
    /// Per-level discount of the pooled contention term in Eq. 3. The
    /// paper uses ½ "because the number of links double as we move up in a
    /// fat-tree"; generalizing, a common switch at level `l` contributes
    /// `trunk_discount^(l-1)` of the pooled term — the paper's §7 hook for
    /// "other topologies using appropriate contention factor".
    pub trunk_discount: f64,
}

impl Default for CostModel {
    /// Eq. 6 as printed: raw effective hops per step, paper's ½ discount.
    fn default() -> Self {
        CostModel::HOPS
    }
}

impl CostModel {
    /// Eq. 6 as printed in the paper (raw hops).
    pub const HOPS: CostModel = CostModel {
        hop_bytes: false,
        trunk_discount: 0.5,
    };
    /// Hop-bytes variant (§5.3: hops × msize "gives an indication of
    /// communication time").
    pub const HOP_BYTES: CostModel = CostModel {
        hop_bytes: true,
        trunk_discount: 0.5,
    };

    /// Eqs. 2–3 — contention factor between two *leaf ordinals*, with the
    /// pooled term discounted for the level of their common switch.
    ///
    /// The counters include every running communication-intensive job on the
    /// two leaves (the paper's worked example counts the job's own nodes).
    /// For leaves meeting at level 2 this is Eq. 3 verbatim; deeper common
    /// switches (fatter trunks) discount the pooled term further.
    pub fn leaf_contention(&self, tree: &Tree, state: &ClusterState, a: usize, b: usize) -> f64 {
        self.leaf_contention_counts(tree, a, b, state.leaf_comm(a), state.leaf_comm(b))
    }

    /// Eqs. 2–3 with the `L_comm` counts supplied by the caller — the single
    /// implementation of the contention formula, shared by the state-reading
    /// wrapper above and the overlay-based [`crate::PlacementEvaluator`] so
    /// both produce bit-identical values.
    #[inline]
    pub(crate) fn leaf_contention_counts(
        &self,
        tree: &Tree,
        a: usize,
        b: usize,
        comm_a: u32,
        comm_b: u32,
    ) -> f64 {
        let comm_a = f64::from(comm_a);
        let nodes_a = f64_of_usize(tree.leaf_size(a));
        if a == b {
            // Eq. 2: both endpoints under one leaf switch.
            return comm_a / nodes_a;
        }
        // Eq. 3: two leaf terms plus the discounted pooled term for the
        // common upper switch.
        let comm_b = f64::from(comm_b);
        let nodes_b = f64_of_usize(tree.leaf_size(b));
        let level = tree.leaf_lca_level(a, b);
        let discount = self.trunk_discount.powi(i32_of_u32(level) - 1);
        comm_a / nodes_a + comm_b / nodes_b + discount * (comm_a + comm_b) / (nodes_a + nodes_b)
    }

    /// Eqs. 2–3 — contention factor `C(i, j)` between two nodes.
    pub fn contention(&self, tree: &Tree, state: &ClusterState, i: NodeId, j: NodeId) -> f64 {
        self.leaf_contention(
            tree,
            state,
            tree.leaf_ordinal_of(i),
            tree.leaf_ordinal_of(j),
        )
    }

    /// Eq. 5 — effective hops `d(i, j) * (1 + C(i, j))`.
    pub fn hops(&self, tree: &Tree, state: &ClusterState, i: NodeId, j: NodeId) -> f64 {
        if i == j {
            return 0.0;
        }
        let d = f64::from(tree.distance(i, j));
        d * (1.0 + self.contention(tree, state, i, j))
    }

    /// Eq. 6 — total communication cost of a job.
    ///
    /// `nodes` is the job's allocation; rank `r` of the collective runs on
    /// `sorted(nodes)[r]` (SLURM's block task distribution over the node
    /// bitmap). Contention is read from `state`, which should already
    /// include the job's own allocation — the paper's worked example counts
    /// the job's own nodes in `L_comm`.
    pub fn job_cost(
        &self,
        tree: &Tree,
        state: &ClusterState,
        nodes: &[NodeId],
        spec: &CollectiveSpec,
    ) -> f64 {
        let mut ranked = nodes.to_vec();
        ranked.sort_unstable();
        // Leaf ordinal per rank; hop values only depend on the leaf pair, so
        // memoize them: collective schedules revisit the same leaf pairs in
        // nearly every step.
        let leaf_of_rank: Vec<usize> = ranked.iter().map(|n| tree.leaf_ordinal_of(*n)).collect();
        let mut hop_cache: HashMap<(usize, usize), f64> = HashMap::new();

        let mut total = 0.0;
        for step in spec.steps(ranked.len()) {
            let mut worst: f64 = 0.0;
            for &(ri, rj) in &step.pairs {
                let (la, lb) = {
                    let (a, b) = (leaf_of_rank[ri], leaf_of_rank[rj]);
                    if a <= b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                };
                let hops = *hop_cache.entry((la, lb)).or_insert_with(|| {
                    let d = if la == lb {
                        2.0
                    } else {
                        f64::from(2 * tree.leaf_lca_level(la, lb))
                    };
                    d * (1.0 + self.leaf_contention(tree, state, la, lb))
                });
                if hops > worst {
                    worst = hops;
                }
            }
            total += if self.hop_bytes {
                worst * f64_of_u64(step.msize)
            } else {
                worst
            };
        }
        total
    }

    /// Cost of a *hypothetical* allocation: applies `nodes` to `state` as a
    /// communication-intensive job first (so the job's own contention
    /// counts, per the paper's example), evaluates [`CostModel::job_cost`],
    /// then reverts. The apply-then-revert runs through
    /// [`ClusterState::scratch_alloc`] — no clone of the cluster state — and
    /// `state` is restored bit-for-bit before this returns.
    pub fn hypothetical_cost(
        &self,
        tree: &Tree,
        state: &mut ClusterState,
        nodes: &[NodeId],
        spec: &CollectiveSpec,
    ) -> f64 {
        let what_if = state.scratch_alloc(tree, nodes, crate::state::JobNature::CommIntensive);
        self.job_cost(tree, &what_if, nodes, spec)
    }
}
