//! The four node-selection algorithms: SLURM's default best-fit baseline and
//! the paper's greedy (Alg. 1), balanced (Alg. 2) and adaptive (§4.3).
//!
//! All four descend the hierarchical free-count index (see [`crate::index`])
//! instead of scanning and sorting every switch/leaf, so a placement costs
//! O(tree height + leaves actually granted) rather than O(cluster size).
//! The pre-index linear-scan algorithms live on in [`crate::select_scan`];
//! the property tests in `tests` assert the two produce byte-identical
//! placements, and the `bench_engine` selection cases measure the gap.

use crate::cost::CostModel;
use crate::eval::PlacementEvaluator;
use crate::index::visit_desc;
use crate::state::{ClusterState, JobId, JobNature};
use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_num::usize_of_u32;
use commsched_topology::{NodeId, SwitchId, Tree};
use std::fmt;
use std::sync::{Arc, Mutex};

/// A node-allocation request, the paper's job parameters: size, nature and
/// (for the adaptive selector and the cost model) the dominant collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocRequest {
    /// Job being placed.
    pub job: JobId,
    /// Whole nodes requested (`select/linear` semantics).
    pub nodes: usize,
    /// Communication- or compute-intensive.
    pub nature: JobNature,
    /// Dominant collective of the job, if known. Used by
    /// [`AdaptiveSelector`] to compare candidate allocations; `None` falls
    /// back to recursive doubling with a 1 MiB vector (the paper's Figure 1
    /// message size).
    pub pattern: Option<CollectiveSpec>,
    /// Scheduling attempt (0 = first try; requeues bump it). Folded into
    /// the per-job RNG seed by [`crate::SaSelector`] so a requeued job
    /// explores a different neighbourhood than its failed attempt.
    pub attempt: u32,
}

impl AllocRequest {
    /// A communication-intensive request without an explicit pattern.
    pub fn comm(job: JobId, nodes: usize) -> Self {
        AllocRequest {
            job,
            nodes,
            nature: JobNature::CommIntensive,
            pattern: None,
            attempt: 0,
        }
    }

    /// A compute-intensive request.
    pub fn compute(job: JobId, nodes: usize) -> Self {
        AllocRequest {
            job,
            nodes,
            nature: JobNature::ComputeIntensive,
            pattern: None,
            attempt: 0,
        }
    }

    /// Attach the dominant collective pattern.
    pub fn with_pattern(mut self, spec: CollectiveSpec) -> Self {
        self.pattern = Some(spec);
        self
    }

    /// Record the scheduling attempt (0 = first try).
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }

    /// The collective spec used for cost comparisons.
    pub fn spec(&self) -> CollectiveSpec {
        self.pattern
            .unwrap_or_else(|| CollectiveSpec::new(Pattern::Rd, 1 << 20))
    }
}

/// Why a selection failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// Not enough free nodes anywhere in the cluster.
    NotEnoughNodes {
        /// Nodes requested.
        requested: usize,
        /// Nodes currently free cluster-wide.
        free: usize,
    },
    /// Zero-node request.
    ZeroNodes,
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotEnoughNodes { requested, free } => {
                write!(f, "requested {requested} nodes but only {free} are free")
            }
            Self::ZeroNodes => write!(f, "requested zero nodes"),
        }
    }
}

impl std::error::Error for SelectError {}

/// A node-selection algorithm, SLURM's `select/linear` decision point.
///
/// Implementations must return exactly `req.nodes` distinct free nodes, or
/// an error; they never mutate state (the caller records the allocation).
pub trait NodeSelector: Send + Sync {
    /// Short stable name, used in reports ("default", "greedy", ...).
    fn name(&self) -> &'static str;

    /// Choose `req.nodes` free nodes for `req.job`.
    fn select(
        &self,
        tree: &Tree,
        state: &ClusterState,
        req: &AllocRequest,
    ) -> Result<Vec<NodeId>, SelectError>;
}

/// Validate the request, then find the lowest-level switch whose subtree has
/// at least `req.nodes` free nodes, like SLURM's `topology/tree` plugin
/// (§3.1). Ties at the same level break toward the *fewest* free nodes
/// (best fit), then lowest id — the free-count index stores exactly that
/// order, so the descent is O(height · log switches).
fn pick_switch(
    tree: &Tree,
    state: &ClusterState,
    req: &AllocRequest,
) -> Result<SwitchId, SelectError> {
    let _ = tree; // the index is maintained against the same tree
    check_request(state, req)?;
    state
        .index()
        .lowest_level_switch(req.nodes)
        .ok_or(SelectError::NotEnoughNodes {
            requested: req.nodes,
            free: state.free_total(),
        })
}

pub(crate) fn check_request(state: &ClusterState, req: &AllocRequest) -> Result<(), SelectError> {
    if req.nodes == 0 {
        return Err(SelectError::ZeroNodes);
    }
    if state.free_total() < req.nodes {
        return Err(SelectError::NotEnoughNodes {
            requested: req.nodes,
            free: state.free_total(),
        });
    }
    Ok(())
}

/// Take whole leaves in ascending `(leaf_free, ordinal)` order until the
/// request is satisfied — the shared fill of the default selector and the
/// balanced selector's compute arm, driven lazily off the index so only the
/// granted prefix of the order is ever visited.
fn fill_fewest_free_first(
    tree: &Tree,
    state: &ClusterState,
    p: SwitchId,
    want: usize,
) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(want);
    let mut remaining = want;
    for &(free, ord) in state.index().leaves_by_free(p) {
        if remaining == 0 {
            break;
        }
        let take = usize_of_u32(free).min(remaining);
        out.extend(state.free_nodes_on_leaf(tree, usize_of_u32(ord), take));
        remaining -= take;
    }
    debug_assert_eq!(remaining, 0, "switch was checked to have enough free nodes");
    out
}

/// SLURM's stock `topology/tree` + `select/linear` algorithm — the paper's
/// baseline ("default").
///
/// Picks the lowest-level switch with enough free nodes, then fills its leaf
/// switches in *increasing* order of free nodes (best fit, to limit
/// fragmentation), regardless of job nature.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultTreeSelector;

impl NodeSelector for DefaultTreeSelector {
    fn name(&self) -> &'static str {
        "default"
    }

    fn select(
        &self,
        tree: &Tree,
        state: &ClusterState,
        req: &AllocRequest,
    ) -> Result<Vec<NodeId>, SelectError> {
        let p = pick_switch(tree, state, req)?;
        if tree.switch(p).children.is_empty() {
            let k = tree.leaf_ordinal(p);
            return Ok(state.free_nodes_on_leaf(tree, k, req.nodes));
        }
        Ok(fill_fewest_free_first(tree, state, p, req.nodes))
    }
}

/// Algorithm 1 — greedy allocation on the least-contended leaf switches.
///
/// Communication-intensive jobs take leaves in *increasing* communication
/// ratio (Eq. 1) — least contended, most free first. Compute-intensive jobs
/// take the *decreasing* order, keeping quiet leaves free for future
/// communication-intensive jobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySelector;

impl NodeSelector for GreedySelector {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn select(
        &self,
        tree: &Tree,
        state: &ClusterState,
        req: &AllocRequest,
    ) -> Result<Vec<NodeId>, SelectError> {
        let p = pick_switch(tree, state, req)?;
        // Leaf-switch fast path (Alg. 1 lines 3-5): a single leaf serves the
        // whole request.
        if tree.switch(p).children.is_empty() {
            let k = tree.leaf_ordinal(p);
            return Ok(state.free_nodes_on_leaf(tree, k, req.nodes));
        }
        // The index orders leaves by (ratio key, ordinal) — the communication
        // ratio under `total_cmp` with the leaf ordinal as tie-break, exactly
        // the scan baseline's sort. Comm-intensive jobs walk it forward
        // (least contended first), compute-intensive backward.
        let mut out = Vec::with_capacity(req.nodes);
        let mut remaining = req.nodes;
        let set = state.index().leaves_by_ratio(p);
        if req.nature.is_comm() {
            for &(_, ord) in set {
                if remaining == 0 {
                    break;
                }
                let k = usize_of_u32(ord);
                let take = usize_of_u32(state.leaf_free(k)).min(remaining);
                out.extend(state.free_nodes_on_leaf(tree, k, take));
                remaining -= take;
            }
        } else {
            visit_desc(set, |ord| {
                let k = usize_of_u32(ord);
                let take = usize_of_u32(state.leaf_free(k)).min(remaining);
                out.extend(state.free_nodes_on_leaf(tree, k, take));
                remaining -= take;
                remaining > 0
            });
        }
        debug_assert_eq!(remaining, 0);
        Ok(out)
    }
}

/// Algorithm 2 — balanced allocation in powers of two per leaf switch.
///
/// Communication-intensive jobs walk the leaves in *decreasing* free-node
/// order; the per-leaf grant is the running allocation size `S` (starting at
/// the request), halved until it fits the leaf — producing the paper's
/// Table 2 split. A second pass in reverse order hands out leftovers when
/// the power-of-two discipline could not satisfy the request. Compute jobs
/// fill leaves in increasing free order with no power-of-two constraint,
/// preserving the large leaves.
#[derive(Debug, Clone, Copy, Default)]
pub struct BalancedSelector;

impl NodeSelector for BalancedSelector {
    fn name(&self) -> &'static str {
        "balanced"
    }

    fn select(
        &self,
        tree: &Tree,
        state: &ClusterState,
        req: &AllocRequest,
    ) -> Result<Vec<NodeId>, SelectError> {
        let p = pick_switch(tree, state, req)?;
        if tree.switch(p).children.is_empty() {
            let k = tree.leaf_ordinal(p);
            return Ok(state.free_nodes_on_leaf(tree, k, req.nodes));
        }

        if !req.nature.is_comm() {
            // Lines 29-36: compute jobs take the fullest-first (fewest free)
            // leaves without the power-of-two discipline.
            return Ok(fill_fewest_free_first(tree, state, p, req.nodes));
        }

        // Lines 9-21: decreasing free order, grant sizes halving to fit. The
        // index yields the leaves lazily in that order, so the walk stops at
        // the leaf that satisfies the request; the materialized prefix is
        // complete exactly when the leftover pass below needs the full list.
        let mut order: Vec<usize> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut taken: Vec<usize> = Vec::new();
        let mut remaining = req.nodes;
        // `S` carries over between leaves and only ever shrinks (the paper's
        // Figure 4 subdivision; this is what reproduces Table 2).
        let mut s = req.nodes;
        visit_desc(state.index().leaves_by_free(p), |ord| {
            let k = usize_of_u32(ord);
            let f = usize_of_u32(state.leaf_free(k));
            debug_assert!(f > 0);
            while s > f {
                s /= 2;
            }
            let take = s.min(remaining);
            order.push(k);
            free.push(f - take);
            taken.push(take);
            remaining -= take;
            remaining > 0
        });
        // Lines 22-27: leftovers in reverse sorted order, no constraint.
        if remaining > 0 {
            for idx in (0..order.len()).rev() {
                if remaining == 0 {
                    break;
                }
                let take = free[idx].min(remaining);
                taken[idx] += take;
                free[idx] -= take;
                remaining -= take;
            }
        }
        debug_assert_eq!(remaining, 0, "switch had enough free nodes");
        let mut out = Vec::with_capacity(req.nodes);
        for (idx, &k) in order.iter().enumerate() {
            if taken[idx] > 0 {
                out.extend(state.free_nodes_on_leaf(tree, k, taken[idx]));
            }
        }
        Ok(out)
    }
}

/// §4.3 — adaptive allocation: evaluate greedy and balanced, keep the
/// cheaper one (by Eq. 6 under the job's collective pattern); for
/// compute-intensive jobs keep the *costlier* one, reserving the better
/// placement for communication-intensive work.
///
/// The what-if costs run through a [`PlacementEvaluator`] — a single fused
/// traversal per candidate, no cluster-state clone. The evaluator can be
/// shared (see [`AdaptiveSelector::with_evaluator`]) so downstream Eq. 7
/// evaluations of the *chosen* allocation reuse the hop memo warmed here.
#[derive(Debug, Clone)]
pub struct AdaptiveSelector {
    /// Cost model used for the comparison (hops vs hop-bytes).
    pub cost: CostModel,
    eval: Arc<Mutex<PlacementEvaluator>>,
}

impl Default for AdaptiveSelector {
    /// Compares by hop-bytes — the §5.3 estimate of communication *time*,
    /// which is what §4.3 says the adaptive algorithm minimizes. (The
    /// reported Eq. 6 cost is raw hops, so adaptive can occasionally show
    /// slightly higher reported cost than balanced — the anomaly the paper
    /// itself observes in §6.4.)
    fn default() -> Self {
        AdaptiveSelector::new(CostModel::HOP_BYTES)
    }
}

impl AdaptiveSelector {
    /// Adaptive selection under `cost`, with a private evaluator.
    pub fn new(cost: CostModel) -> Self {
        AdaptiveSelector::with_evaluator(cost, Arc::new(Mutex::new(PlacementEvaluator::new())))
    }

    /// Adaptive selection sharing `eval` with the caller, so hop values
    /// computed while comparing candidates stay warm for the caller's own
    /// evaluation of the winning allocation.
    pub fn with_evaluator(cost: CostModel, eval: Arc<Mutex<PlacementEvaluator>>) -> Self {
        AdaptiveSelector { cost, eval }
    }
}

impl NodeSelector for AdaptiveSelector {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn select(
        &self,
        tree: &Tree,
        state: &ClusterState,
        req: &AllocRequest,
    ) -> Result<Vec<NodeId>, SelectError> {
        let greedy = GreedySelector.select(tree, state, req)?;
        let balanced = BalancedSelector.select(tree, state, req)?;
        if greedy == balanced {
            return Ok(balanced);
        }
        let spec = req.spec();
        // detlint: allow(P1) — a poisoned mutex means another thread already
        // panicked mid-evaluation; propagating is the only sound response.
        let mut eval = self.eval.lock().expect("evaluator mutex poisoned");
        // Balanced last: when it wins (the common comm-intensive case) the
        // hop memo is warm for the caller's follow-up evaluation.
        let cost_g = eval
            .evaluate(tree, state, self.cost.trunk_discount, &greedy, &spec)
            .for_model(&self.cost);
        let cost_b = eval
            .evaluate(tree, state, self.cost.trunk_discount, &balanced, &spec)
            .for_model(&self.cost);
        let take_balanced = if req.nature.is_comm() {
            cost_b <= cost_g
        } else {
            cost_b > cost_g
        };
        Ok(if take_balanced { balanced } else { greedy })
    }
}

/// The selectors by name, for CLI/bench plumbing: the paper's four plus
/// the annealed refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectorKind {
    /// SLURM stock best-fit ([`DefaultTreeSelector`]).
    Default,
    /// Algorithm 1 ([`GreedySelector`]).
    Greedy,
    /// Algorithm 2 ([`BalancedSelector`]).
    Balanced,
    /// §4.3 ([`AdaptiveSelector`]).
    Adaptive,
    /// Budgeted simulated-annealing refinement of the adaptive incumbent
    /// ([`crate::SaSelector`], ROADMAP item 5). Not part of
    /// [`SelectorKind::ALL`]: the paper's sweeps compare its four
    /// selectors, SA rides the dedicated `tournament` experiment.
    Sa,
}

impl SelectorKind {
    /// All four, in the paper's reporting order.
    pub const ALL: [SelectorKind; 4] = [
        SelectorKind::Default,
        SelectorKind::Greedy,
        SelectorKind::Balanced,
        SelectorKind::Adaptive,
    ];

    /// The paper's three proposed algorithms (everything but the baseline).
    pub const PROPOSED: [SelectorKind; 3] = [
        SelectorKind::Greedy,
        SelectorKind::Balanced,
        SelectorKind::Adaptive,
    ];

    /// Instantiate the selector. `Sa` builds with [`crate::SaBudget`]
    /// defaults and run seed 0 — engines wanting a configured search
    /// construct [`crate::SaSelector`] directly (see
    /// `Engine::build_selector`).
    pub fn build(self) -> Box<dyn NodeSelector> {
        match self {
            SelectorKind::Default => Box::new(DefaultTreeSelector),
            SelectorKind::Greedy => Box::new(GreedySelector),
            SelectorKind::Balanced => Box::new(BalancedSelector),
            SelectorKind::Adaptive => Box::new(AdaptiveSelector::default()),
            SelectorKind::Sa => Box::new(crate::SaSelector::default()),
        }
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            SelectorKind::Default => "default",
            SelectorKind::Greedy => "greedy",
            SelectorKind::Balanced => "balanced",
            SelectorKind::Adaptive => "adaptive",
            SelectorKind::Sa => "sa",
        }
    }
}

impl fmt::Display for SelectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SelectorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "default" | "slurm" => Ok(SelectorKind::Default),
            "greedy" => Ok(SelectorKind::Greedy),
            "balanced" => Ok(SelectorKind::Balanced),
            "adaptive" => Ok(SelectorKind::Adaptive),
            "sa" | "anneal" => Ok(SelectorKind::Sa),
            other => Err(format!("unknown selector {other:?}")),
        }
    }
}
