use crate::{
    AdaptiveSelector, AllocRequest, BalancedSelector, ClusterState, CostModel, DefaultTreeSelector,
    GreedySelector, JobId, JobNature, NodeSelector, PlacementEvaluator, SelectError, SelectorKind,
    StateError,
};
use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_topology::{NodeId, Tree};

/// The paper's Figure 2 / Figure 5 topology: two leaves of 4 under a root.
fn figure2() -> Tree {
    Tree::regular_two_level(2, 4)
}

/// Occupancy of the Figure 5 worked example: Job1 (comm) on n0,n1,n4,n5;
/// Job2 (comm) on n2,n3; n6,n7 free.
fn figure5_state(tree: &Tree) -> ClusterState {
    let mut st = ClusterState::new(tree);
    st.allocate(
        tree,
        JobId(1),
        &[NodeId(0), NodeId(1), NodeId(4), NodeId(5)],
        JobNature::CommIntensive,
    )
    .unwrap();
    st.allocate(
        tree,
        JobId(2),
        &[NodeId(2), NodeId(3)],
        JobNature::CommIntensive,
    )
    .unwrap();
    st
}

fn nodes_per_leaf(tree: &Tree, nodes: &[NodeId]) -> Vec<usize> {
    let mut v = vec![0usize; tree.num_leaves()];
    for n in nodes {
        v[tree.leaf_ordinal_of(*n)] += 1;
    }
    v
}

// ---------------------------------------------------------------- state

#[test]
fn allocate_and_release_round_trip() {
    let tree = figure2();
    let mut st = ClusterState::new(&tree);
    assert_eq!(st.free_total(), 8);
    st.allocate(
        &tree,
        JobId(7),
        &[NodeId(0), NodeId(4)],
        JobNature::CommIntensive,
    )
    .unwrap();
    assert_eq!(st.free_total(), 6);
    assert_eq!(st.leaf_busy(0), 1);
    assert_eq!(st.leaf_comm(0), 1);
    assert_eq!(st.leaf_comm(1), 1);
    st.check_invariants(&tree).unwrap();

    let alloc = st.release(&tree, JobId(7)).unwrap();
    assert_eq!(alloc.nodes, vec![NodeId(0), NodeId(4)]);
    assert_eq!(st.free_total(), 8);
    assert_eq!(st.leaf_comm(0), 0);
    st.check_invariants(&tree).unwrap();
}

#[test]
fn compute_jobs_do_not_count_in_leaf_comm() {
    let tree = figure2();
    let mut st = ClusterState::new(&tree);
    st.allocate(&tree, JobId(1), &[NodeId(0)], JobNature::ComputeIntensive)
        .unwrap();
    assert_eq!(st.leaf_busy(0), 1);
    assert_eq!(st.leaf_comm(0), 0);
}

#[test]
fn state_errors() {
    let tree = figure2();
    let mut st = ClusterState::new(&tree);
    st.allocate(&tree, JobId(1), &[NodeId(0)], JobNature::CommIntensive)
        .unwrap();
    assert_eq!(
        st.allocate(&tree, JobId(2), &[NodeId(0)], JobNature::CommIntensive),
        Err(StateError::NodeBusy(NodeId(0)))
    );
    assert_eq!(
        st.allocate(&tree, JobId(1), &[NodeId(1)], JobNature::CommIntensive),
        Err(StateError::JobExists(JobId(1)))
    );
    assert_eq!(
        st.allocate(&tree, JobId(3), &[], JobNature::CommIntensive),
        Err(StateError::EmptyAllocation(JobId(3)))
    );
    assert_eq!(
        st.release(&tree, JobId(9)),
        Err(StateError::UnknownJob(JobId(9)))
    );
    // failed allocations must not disturb the counters
    st.check_invariants(&tree).unwrap();
}

#[test]
fn communication_ratio_eq1() {
    let tree = figure2();
    let st = figure5_state(&tree);
    // Leaf 0: L_comm=4, L_busy=4, L_nodes=4 -> 4/4 + 4/4 = 2.
    assert_eq!(st.communication_ratio(&tree, 0), 2.0);
    // Leaf 1: L_comm=2, L_busy=2, L_nodes=4 -> 2/2 + 2/4 = 1.5.
    assert_eq!(st.communication_ratio(&tree, 1), 1.5);
    // Idle leaf -> 0.
    let idle = ClusterState::new(&tree);
    assert_eq!(idle.communication_ratio(&tree, 0), 0.0);
}

// ---------------------------------------------------------------- cost

#[test]
fn contention_matches_paper_worked_example() {
    // Section 5.3: C(n0, n1) = 1 and C(n0, n4) = 1.875.
    let tree = figure2();
    let st = figure5_state(&tree);
    let m = CostModel::HOPS;
    assert_eq!(m.contention(&tree, &st, NodeId(0), NodeId(1)), 1.0);
    assert_eq!(m.contention(&tree, &st, NodeId(0), NodeId(4)), 1.875);
}

#[test]
fn hops_match_paper_worked_example() {
    // Section 5.3: Hops(n0, n1) = 4 and Hops(n0, n4) = 11.5.
    let tree = figure2();
    let st = figure5_state(&tree);
    let m = CostModel::HOPS;
    assert_eq!(m.hops(&tree, &st, NodeId(0), NodeId(1)), 4.0);
    assert_eq!(m.hops(&tree, &st, NodeId(0), NodeId(4)), 11.5);
    assert_eq!(m.hops(&tree, &st, NodeId(0), NodeId(0)), 0.0);
}

#[test]
fn contention_discount_deepens_with_lca_level() {
    // Three-level tree: leaves meeting at level 3 pool with a quarter
    // weight (the "links double as we move up" rule applied twice).
    let tree = Tree::regular_three_level(2, 2, 4); // 16 nodes
    let mut st = ClusterState::new(&tree);
    // 2 comm nodes on every leaf.
    for k in 0..4 {
        let nodes = tree.leaf_nodes(k)[..2].to_vec();
        st.allocate(&tree, JobId(k as u64 + 1), &nodes, JobNature::CommIntensive)
            .unwrap();
    }
    let m = CostModel::HOPS;
    // Same group (LCA level 2): 2/4 + 2/4 + 0.5 * 4/8 = 1.25.
    assert_eq!(m.leaf_contention(&tree, &st, 0, 1), 1.25);
    // Across groups (LCA level 3): 2/4 + 2/4 + 0.25 * 4/8 = 1.125.
    assert_eq!(m.leaf_contention(&tree, &st, 0, 2), 1.125);
    // A flat-contention model (discount 1.0) removes the distinction.
    let flat = CostModel {
        trunk_discount: 1.0,
        ..CostModel::HOPS
    };
    assert_eq!(
        flat.leaf_contention(&tree, &st, 0, 1),
        flat.leaf_contention(&tree, &st, 0, 2)
    );
}

#[test]
fn job_cost_single_leaf_beats_split() {
    // 8-rank RD on one leaf vs split 4+4: same contention state, the
    // intra-leaf placement must be strictly cheaper.
    let tree = Tree::regular_two_level(4, 8);
    let mut st = ClusterState::new(&tree);
    let spec = CollectiveSpec::new(Pattern::Rd, 1 << 20);
    let m = CostModel::HOPS;
    let together: Vec<NodeId> = (0..8).map(NodeId).collect();
    let split: Vec<NodeId> = (0..4).chain(8..12).map(NodeId).collect();
    let c1 = m.hypothetical_cost(&tree, &mut st, &together, &spec);
    let c2 = m.hypothetical_cost(&tree, &mut st, &split, &spec);
    assert!(c1 < c2, "together={c1} split={c2}");
}

#[test]
fn job_cost_balanced_split_beats_unbalanced() {
    // Section 4.2's motivating example: 8 nodes over two leaves as 4+4 vs
    // 3+5 — the balanced split has fewer inter-switch steps under RD.
    let tree = Tree::regular_two_level(2, 8);
    let mut st = ClusterState::new(&tree);
    let spec = CollectiveSpec::new(Pattern::Rd, 1 << 20);
    let m = CostModel::HOPS;
    let balanced: Vec<NodeId> = (0..4).chain(8..12).map(NodeId).collect();
    let unbalanced: Vec<NodeId> = (0..3).chain(8..13).map(NodeId).collect();
    let cb = m.hypothetical_cost(&tree, &mut st, &balanced, &spec);
    let cu = m.hypothetical_cost(&tree, &mut st, &unbalanced, &spec);
    assert!(cb <= cu, "balanced={cb} unbalanced={cu}");
}

#[test]
fn job_cost_empty_and_single() {
    let tree = figure2();
    let st = ClusterState::new(&tree);
    let spec = CollectiveSpec::new(Pattern::Rd, 1024);
    assert_eq!(CostModel::HOPS.job_cost(&tree, &st, &[], &spec), 0.0);
    assert_eq!(
        CostModel::HOPS.job_cost(&tree, &st, &[NodeId(0)], &spec),
        0.0
    );
}

#[test]
fn hop_bytes_scales_with_message_size() {
    let tree = figure2();
    let st = figure5_state(&tree);
    let nodes = [NodeId(6), NodeId(7)];
    let small = CollectiveSpec::new(Pattern::Rd, 1024);
    let large = CollectiveSpec::new(Pattern::Rd, 2048);
    let m = CostModel::HOP_BYTES;
    let cs = m.job_cost(&tree, &st, &nodes, &small);
    let cl = m.job_cost(&tree, &st, &nodes, &large);
    assert_eq!(cl, 2.0 * cs);
    // Raw-hops cost ignores msize.
    let h = CostModel::HOPS;
    assert_eq!(
        h.job_cost(&tree, &st, &nodes, &small),
        h.job_cost(&tree, &st, &nodes, &large)
    );
}

// ---------------------------------------------------------------- default

#[test]
fn default_lowest_level_switch_matches_section_3_1() {
    // Section 3.1's example: n0, n1 allocated. A 4-node job finds its
    // lowest-level switch at s1 (leaf), a 6-node job at s2 (root).
    let tree = figure2();
    let mut st = ClusterState::new(&tree);
    st.allocate(
        &tree,
        JobId(1),
        &[NodeId(0), NodeId(1)],
        JobNature::ComputeIntensive,
    )
    .unwrap();

    let four = DefaultTreeSelector
        .select(&tree, &st, &AllocRequest::comm(JobId(2), 4))
        .unwrap();
    assert_eq!(nodes_per_leaf(&tree, &four), [0, 4]); // all from s1

    let six = DefaultTreeSelector
        .select(&tree, &st, &AllocRequest::comm(JobId(3), 6))
        .unwrap();
    // Best-fit: s0 has fewer free (2), taken first, then 4 from s1.
    assert_eq!(nodes_per_leaf(&tree, &six), [2, 4]);
}

#[test]
fn default_best_fit_prefers_fuller_leaves() {
    let tree = Tree::regular_two_level(3, 4);
    let mut st = ClusterState::new(&tree);
    // Leaf 1 has 1 free, leaf 0 has 4, leaf 2 has 2.
    st.allocate(
        &tree,
        JobId(1),
        &[NodeId(4), NodeId(5), NodeId(6), NodeId(8), NodeId(9)],
        JobNature::ComputeIntensive,
    )
    .unwrap();
    // A 3-node job fits leaf 0 alone: the lowest-level switch is that leaf.
    let got = DefaultTreeSelector
        .select(&tree, &st, &AllocRequest::comm(JobId(2), 3))
        .unwrap();
    assert_eq!(nodes_per_leaf(&tree, &got), [3, 0, 0]);
    // A 6-node job needs the root; best-fit fills the emptiest-last:
    // leaf1 (1 free), leaf2 (2 free), then leaf0.
    let got = DefaultTreeSelector
        .select(&tree, &st, &AllocRequest::comm(JobId(3), 6))
        .unwrap();
    assert_eq!(nodes_per_leaf(&tree, &got), [3, 1, 2]);
}

// ---------------------------------------------------------------- greedy

#[test]
fn greedy_comm_prefers_least_contended() {
    let tree = Tree::regular_two_level(3, 4);
    let mut st = ClusterState::new(&tree);
    // Leaf 0: 2 comm nodes busy; leaf 1: 2 compute busy; leaf 2: idle.
    st.allocate(
        &tree,
        JobId(1),
        &[NodeId(0), NodeId(1)],
        JobNature::CommIntensive,
    )
    .unwrap();
    st.allocate(
        &tree,
        JobId(2),
        &[NodeId(4), NodeId(5)],
        JobNature::ComputeIntensive,
    )
    .unwrap();
    // Ratios: leaf0 = 2/2 + 2/4 = 1.5; leaf1 = 0/2 + 2/4 = 0.5; leaf2 = 0.
    let got = GreedySelector
        .select(&tree, &st, &AllocRequest::comm(JobId(3), 6))
        .unwrap();
    // leaf2 first (4 nodes), then leaf1 (2 nodes).
    assert_eq!(nodes_per_leaf(&tree, &got), [0, 2, 4]);
}

#[test]
fn greedy_compute_takes_most_contended_first() {
    let tree = Tree::regular_two_level(3, 4);
    let mut st = ClusterState::new(&tree);
    st.allocate(
        &tree,
        JobId(1),
        &[NodeId(0), NodeId(1)],
        JobNature::CommIntensive,
    )
    .unwrap();
    st.allocate(
        &tree,
        JobId(2),
        &[NodeId(4), NodeId(5)],
        JobNature::ComputeIntensive,
    )
    .unwrap();
    // 5 nodes won't fit any single leaf, so P is the root and the leaves
    // are taken in decreasing communication-ratio order:
    // leaf0 (1.5) gives 2, leaf1 (0.5) gives 2, leaf2 (0) gives 1.
    let got = GreedySelector
        .select(&tree, &st, &AllocRequest::compute(JobId(3), 5))
        .unwrap();
    assert_eq!(nodes_per_leaf(&tree, &got), [2, 2, 1]);
}

#[test]
fn greedy_leaf_fast_path() {
    let tree = figure2();
    let st = figure5_state(&tree);
    // Only n6, n7 free (both on leaf 1): a 2-node job fits a single leaf.
    let got = GreedySelector
        .select(&tree, &st, &AllocRequest::comm(JobId(9), 2))
        .unwrap();
    assert_eq!(got, vec![NodeId(6), NodeId(7)]);
}

// ---------------------------------------------------------------- balanced

#[test]
fn balanced_reproduces_table2() {
    // Table 2 of the paper: 512 nodes over leaves with free counts
    // 160/150/100/80/70/50/40 -> allocations 128/128/64/64/64/32/32.
    let tree = Tree::irregular_two_level(&[160, 150, 100, 80, 70, 50, 40]);
    let st = ClusterState::new(&tree);
    let got = BalancedSelector
        .select(&tree, &st, &AllocRequest::comm(JobId(1), 512))
        .unwrap();
    assert_eq!(got.len(), 512);
    assert_eq!(nodes_per_leaf(&tree, &got), [128, 128, 64, 64, 64, 32, 32]);
}

#[test]
fn balanced_table2_with_busy_nodes() {
    // Same Table 2 free counts, produced by occupying a uniform cluster.
    let sizes = vec![200usize; 7];
    let tree = Tree::irregular_two_level(&sizes);
    let mut st = ClusterState::new(&tree);
    let busy = [40usize, 50, 100, 120, 130, 150, 160];
    let mut next = JobId(100);
    for (k, &b) in busy.iter().enumerate() {
        let nodes: Vec<NodeId> = tree.leaf_nodes(k)[..b].to_vec();
        st.allocate(&tree, next, &nodes, JobNature::ComputeIntensive)
            .unwrap();
        next = JobId(next.0 + 1);
    }
    let got = BalancedSelector
        .select(&tree, &st, &AllocRequest::comm(JobId(1), 512))
        .unwrap();
    assert_eq!(nodes_per_leaf(&tree, &got), [128, 128, 64, 64, 64, 32, 32]);
}

#[test]
fn balanced_second_pass_takes_leftovers() {
    // 3 leaves of 3 free; request 8. First pass grants powers of two:
    // S: 8->4->2 per leaf => 2+2+2 = 6; second pass (reverse order) takes
    // the remaining 2 from the tail leaves.
    let tree = Tree::regular_two_level(3, 3);
    let st = ClusterState::new(&tree);
    let got = BalancedSelector
        .select(&tree, &st, &AllocRequest::comm(JobId(1), 8))
        .unwrap();
    assert_eq!(got.len(), 8);
    let per = nodes_per_leaf(&tree, &got);
    assert_eq!(per.iter().sum::<usize>(), 8);
    // First pass gave each leaf 2; the reverse pass adds to the last leaves.
    assert_eq!(per, [2, 3, 3]);
}

#[test]
fn balanced_compute_preserves_free_leaves() {
    let tree = Tree::regular_two_level(3, 4);
    let mut st = ClusterState::new(&tree);
    st.allocate(&tree, JobId(1), &[NodeId(0)], JobNature::ComputeIntensive)
        .unwrap();
    // Compute job of 3: increasing free order -> leaf0 (3 free) first.
    let got = BalancedSelector
        .select(&tree, &st, &AllocRequest::compute(JobId(2), 3))
        .unwrap();
    assert_eq!(nodes_per_leaf(&tree, &got), [3, 0, 0]);
}

#[test]
fn balanced_whole_leaf_fits() {
    let tree = figure2();
    let st = ClusterState::new(&tree);
    let got = BalancedSelector
        .select(&tree, &st, &AllocRequest::comm(JobId(1), 4))
        .unwrap();
    // Fits entirely on one leaf (the lowest-level switch is that leaf).
    assert_eq!(nodes_per_leaf(&tree, &got).iter().max(), Some(&4));
}

// ---------------------------------------------------------------- adaptive

#[test]
fn adaptive_picks_cheaper_of_greedy_and_balanced() {
    // Build a state where greedy and balanced disagree: leaf free counts
    // 5/4/4; greedy (by ratio) and balanced (powers of two) split an
    // 8-node request differently.
    let tree = Tree::regular_two_level(3, 8);
    let mut st = ClusterState::new(&tree);
    // leaf0: 3 busy comm; leaf1: 4 busy compute; leaf2: 4 busy compute.
    st.allocate(
        &tree,
        JobId(1),
        &[NodeId(0), NodeId(1), NodeId(2)],
        JobNature::CommIntensive,
    )
    .unwrap();
    st.allocate(
        &tree,
        JobId(2),
        &[NodeId(8), NodeId(9), NodeId(10), NodeId(11)],
        JobNature::ComputeIntensive,
    )
    .unwrap();
    st.allocate(
        &tree,
        JobId(3),
        &[NodeId(16), NodeId(17), NodeId(18), NodeId(19)],
        JobNature::ComputeIntensive,
    )
    .unwrap();

    let req =
        AllocRequest::comm(JobId(4), 8).with_pattern(CollectiveSpec::new(Pattern::Rd, 1 << 20));
    let greedy = GreedySelector.select(&tree, &st, &req).unwrap();
    let balanced = BalancedSelector.select(&tree, &st, &req).unwrap();
    assert_ne!(greedy, balanced, "test requires disagreement");

    let adaptive = AdaptiveSelector::default()
        .select(&tree, &st, &req)
        .unwrap();
    let m = CostModel::HOPS;
    let spec = req.spec();
    let cg = m.hypothetical_cost(&tree, &mut st, &greedy, &spec);
    let cb = m.hypothetical_cost(&tree, &mut st, &balanced, &spec);
    let ca = m.hypothetical_cost(&tree, &mut st, &adaptive, &spec);
    assert_eq!(ca, cg.min(cb));
}

#[test]
fn adaptive_compute_takes_costlier() {
    let tree = Tree::regular_two_level(3, 8);
    let mut st = ClusterState::new(&tree);
    st.allocate(
        &tree,
        JobId(1),
        &[NodeId(0), NodeId(1), NodeId(2)],
        JobNature::CommIntensive,
    )
    .unwrap();
    st.allocate(
        &tree,
        JobId(2),
        &[NodeId(8), NodeId(9), NodeId(10), NodeId(11)],
        JobNature::ComputeIntensive,
    )
    .unwrap();
    st.allocate(
        &tree,
        JobId(3),
        &[NodeId(16), NodeId(17), NodeId(18), NodeId(19)],
        JobNature::ComputeIntensive,
    )
    .unwrap();
    let req = AllocRequest::compute(JobId(4), 8);
    let greedy = GreedySelector.select(&tree, &st, &req).unwrap();
    let balanced = BalancedSelector.select(&tree, &st, &req).unwrap();
    if greedy != balanced {
        let adaptive = AdaptiveSelector::default()
            .select(&tree, &st, &req)
            .unwrap();
        let m = CostModel::HOPS;
        let spec = req.spec();
        let cg = m.hypothetical_cost(&tree, &mut st, &greedy, &spec);
        let cb = m.hypothetical_cost(&tree, &mut st, &balanced, &spec);
        let ca = m.hypothetical_cost(&tree, &mut st, &adaptive, &spec);
        assert_eq!(ca, cg.max(cb));
    }
}

// ---------------------------------------------------------------- common

#[test]
fn selectors_error_on_overcommit_and_zero() {
    let tree = figure2();
    let st = figure5_state(&tree); // 2 nodes free
    for kind in SelectorKind::ALL {
        let sel = kind.build();
        assert!(matches!(
            sel.select(&tree, &st, &AllocRequest::comm(JobId(9), 3)),
            Err(SelectError::NotEnoughNodes {
                requested: 3,
                free: 2
            })
        ));
        assert!(matches!(
            sel.select(&tree, &st, &AllocRequest::comm(JobId(9), 0)),
            Err(SelectError::ZeroNodes)
        ));
    }
}

#[test]
fn selector_kind_round_trips() {
    for k in SelectorKind::ALL {
        assert_eq!(k.name().parse::<SelectorKind>().unwrap(), k);
        assert_eq!(k.build().name(), k.name());
    }
    assert!("nope".parse::<SelectorKind>().is_err());
}

#[test]
fn full_cluster_single_job() {
    let tree = Tree::regular_two_level(4, 4);
    let st = ClusterState::new(&tree);
    for kind in SelectorKind::ALL {
        let got = kind
            .build()
            .select(&tree, &st, &AllocRequest::comm(JobId(1), 16))
            .unwrap();
        assert_eq!(got.len(), 16, "{kind}");
    }
}

#[test]
fn hypothetical_cost_equals_cost_after_allocation() {
    // hypothetical_cost(state, nodes) must equal job_cost evaluated on a
    // state where the job is actually allocated — the two code paths the
    // engine and the adaptive selector rely on agreeing.
    let tree = Tree::regular_two_level(3, 8);
    let mut st = ClusterState::new(&tree);
    st.allocate(
        &tree,
        JobId(1),
        &[NodeId(0), NodeId(8)],
        JobNature::CommIntensive,
    )
    .unwrap();
    let nodes: Vec<NodeId> = (1..5).chain(9..13).map(NodeId).collect();
    let spec = CollectiveSpec::new(Pattern::Rhvd, 1 << 20);
    for m in [CostModel::HOPS, CostModel::HOP_BYTES] {
        let hypo = m.hypothetical_cost(&tree, &mut st, &nodes, &spec);
        let mut applied = st.clone();
        applied
            .allocate(&tree, JobId(2), &nodes, JobNature::CommIntensive)
            .unwrap();
        let real = m.job_cost(&tree, &applied, &nodes, &spec);
        assert_eq!(hypo, real);
    }
}

#[test]
fn error_displays_are_informative() {
    let e = SelectError::NotEnoughNodes {
        requested: 10,
        free: 3,
    };
    assert!(e.to_string().contains("10"));
    assert!(e.to_string().contains('3'));
    assert!(SelectError::ZeroNodes.to_string().contains("zero"));
    assert!(StateError::NodeBusy(NodeId(4))
        .to_string()
        .contains("node4"));
    assert!(StateError::UnknownJob(JobId(9))
        .to_string()
        .contains("job9"));
}

// ----------------------------------------------------- three-level trees

mod three_level {
    use super::*;

    /// 2 groups x 2 leaves x 4 nodes = 16 nodes.
    fn tree() -> Tree {
        Tree::regular_three_level(2, 2, 4)
    }

    #[test]
    fn lowest_level_switch_prefers_group_over_root() {
        // 6 nodes fit inside one level-2 group (8 nodes), so every
        // selector must confine the job to a single group.
        let t = tree();
        let st = ClusterState::new(&t);
        for kind in SelectorKind::ALL {
            let got = kind
                .build()
                .select(&t, &st, &AllocRequest::comm(JobId(1), 6))
                .unwrap();
            let groups: std::collections::HashSet<usize> =
                got.iter().map(|n| t.leaf_ordinal_of(*n) / 2).collect();
            assert_eq!(groups.len(), 1, "{kind} crossed groups: {got:?}");
        }
    }

    #[test]
    fn default_within_group_uses_best_fit() {
        let t = tree();
        let mut st = ClusterState::new(&t);
        // Group 0: leaf0 has 1 free, leaf1 has 3 free.
        st.allocate(
            &t,
            JobId(1),
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(4)],
            JobNature::ComputeIntensive,
        )
        .unwrap();
        let got = DefaultTreeSelector
            .select(&t, &st, &AllocRequest::comm(JobId(2), 4))
            .unwrap();
        let mut per = vec![0usize; t.num_leaves()];
        for n in &got {
            per[t.leaf_ordinal_of(*n)] += 1;
        }
        // 4 free exist in group 0 (1 + 3) and in each group-1 leaf (4).
        // Both group-1 leaves are single leaves holding the whole request,
        // so the lowest-level switch is a group-1 leaf — level 1 beats
        // group 0 at level 2.
        assert_eq!(per[0] + per[1], 0);
        assert_eq!(per[2] + per[3], 4);
    }

    #[test]
    fn greedy_sorts_across_groups_by_ratio() {
        let t = tree();
        let mut st = ClusterState::new(&t);
        // Fill 2 comm nodes on every leaf so no leaf fits 4 alone...
        for k in 0..4 {
            let nodes = t.leaf_nodes(k)[..2].to_vec();
            st.allocate(&t, JobId(10 + k as u64), &nodes, JobNature::CommIntensive)
                .unwrap();
        }
        // ...and make leaf 3 the least contended by releasing its job.
        st.release(&t, JobId(13)).unwrap();
        // 8 free total in leaves 0-2 (2 each) + leaf 3 (4): a 5-node comm
        // job must span groups; greedy takes leaf 3 (ratio 0) first.
        let got = GreedySelector
            .select(&t, &st, &AllocRequest::comm(JobId(1), 5))
            .unwrap();
        let on_leaf3 = got.iter().filter(|n| t.leaf_ordinal_of(**n) == 3).count();
        assert_eq!(on_leaf3, 4, "greedy should drain the idle leaf first");
    }

    #[test]
    fn balanced_prefers_whole_leaves_across_groups() {
        let t = tree();
        let mut st = ClusterState::new(&t);
        // leaf0: 3 free, leaf1: 1 free, leaf2: 4 free, leaf3: 2 free.
        let busy: Vec<NodeId> = [3usize, 5, 6, 7, 14, 15]
            .iter()
            .map(|&i| NodeId(i))
            .collect();
        st.allocate(&t, JobId(1), &busy, JobNature::ComputeIntensive)
            .unwrap();
        // 8-node comm job: balanced sorts leaves by free desc
        // (4, 3, 2, 1) and grants 4, 2, 2, ... then leftovers.
        let got = BalancedSelector
            .select(&t, &st, &AllocRequest::comm(JobId(2), 8))
            .unwrap();
        let mut per = [0usize; 4];
        for n in &got {
            per[t.leaf_ordinal_of(*n)] += 1;
        }
        assert_eq!(per.iter().sum::<usize>(), 8);
        // The emptiest leaf (leaf2, 4 free) received a full aligned block.
        assert_eq!(per[2], 4);
    }

    #[test]
    fn distance_hierarchy_shows_in_cost() {
        // Same split shape, nearer vs farther leaves: the cost model must
        // price the deeper LCA higher.
        let t = tree();
        let mut st = ClusterState::new(&t);
        let spec = CollectiveSpec::new(Pattern::Rd, 1 << 20);
        let same_group: Vec<NodeId> = (0..2).chain(4..6).map(NodeId).collect();
        let cross_group: Vec<NodeId> = (0..2).chain(8..10).map(NodeId).collect();
        let m = CostModel::HOPS;
        let near = m.hypothetical_cost(&t, &mut st, &same_group, &spec);
        let far = m.hypothetical_cost(&t, &mut st, &cross_group, &spec);
        assert!(near < far, "near {near} !< far {far}");
    }
}

// ---------------------------------------------------------------- mapping

mod mapping_tests {
    use super::*;
    use crate::mapping::{map_ranks, mapped_cost, MappingStrategy};

    #[test]
    fn block_mapping_is_sorted_nodes() {
        let tree = Tree::regular_two_level(2, 8);
        let nodes = vec![NodeId(9), NodeId(1), NodeId(0), NodeId(8)];
        let m = map_ranks(&tree, &nodes, MappingStrategy::Block);
        assert_eq!(m, vec![NodeId(0), NodeId(1), NodeId(8), NodeId(9)]);
    }

    #[test]
    fn round_robin_alternates_leaves() {
        let tree = Tree::regular_two_level(2, 8);
        let nodes: Vec<NodeId> = (0..2).chain(8..10).map(NodeId).collect();
        let m = map_ranks(&tree, &nodes, MappingStrategy::RoundRobin);
        let leaves: Vec<usize> = m.iter().map(|n| tree.leaf_ordinal_of(*n)).collect();
        assert_eq!(leaves, vec![0, 1, 0, 1]);
    }

    #[test]
    fn all_strategies_are_permutations() {
        let tree = Tree::regular_two_level(3, 8);
        let nodes: Vec<NodeId> = (0..3).chain(8..13).chain(16..18).map(NodeId).collect();
        for s in MappingStrategy::ALL {
            let mut m = map_ranks(&tree, &nodes, s);
            m.sort_unstable();
            let mut want = nodes.clone();
            want.sort_unstable();
            assert_eq!(m, want, "{}", s.name());
        }
    }

    #[test]
    fn best_mapping_never_worse_than_block() {
        use crate::mapping::best_mapping;
        // An unbalanced 3 + 5 allocation: under Eq. 6's max-per-step
        // metric, odd leaf groups make a distance-1 crossing inevitable,
        // so block may already be optimal — but best_mapping must never
        // lose to it, and must equal the minimum over all strategies.
        let tree = Tree::regular_two_level(2, 8);
        let state = ClusterState::new(&tree);
        let nodes: Vec<NodeId> = (0..3).chain(8..13).map(NodeId).collect();
        let spec = CollectiveSpec::new(Pattern::Rhvd, 1 << 20);
        let (_, layout, cost) = best_mapping(CostModel::HOP_BYTES, &tree, &state, &nodes, &spec);
        let per_strategy: Vec<f64> = MappingStrategy::ALL
            .iter()
            .map(|&s| mapped_cost(CostModel::HOP_BYTES, &tree, &state, &nodes, &spec, s))
            .collect();
        let min = per_strategy.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(cost, min);
        assert!(cost <= per_strategy[0]); // never worse than block
        assert_eq!(layout.len(), nodes.len());
    }

    #[test]
    fn mapping_strictly_beats_round_robin_layouts() {
        // A balanced 4+4 allocation where the distance-1 and distance-2
        // steps are intra-leaf under block but ALL cross under round-robin:
        // the strategies genuinely order.
        let tree = Tree::regular_two_level(2, 8);
        let state = ClusterState::new(&tree);
        let nodes: Vec<NodeId> = (0..4).chain(8..12).map(NodeId).collect();
        let spec = CollectiveSpec::new(Pattern::Rhvd, 1 << 20);
        let block = mapped_cost(
            CostModel::HOP_BYTES,
            &tree,
            &state,
            &nodes,
            &spec,
            MappingStrategy::Block,
        );
        let rr = mapped_cost(
            CostModel::HOP_BYTES,
            &tree,
            &state,
            &nodes,
            &spec,
            MappingStrategy::RoundRobin,
        );
        assert!(block < rr, "block {block} !< round-robin {rr}");
    }

    #[test]
    fn aligned_blocks_equal_block_when_balanced() {
        // On a balanced 4+4 split, block mapping is already aligned.
        let tree = Tree::regular_two_level(2, 8);
        let state = ClusterState::new(&tree);
        let nodes: Vec<NodeId> = (0..4).chain(8..12).map(NodeId).collect();
        let spec = CollectiveSpec::new(Pattern::Rd, 1 << 20);
        let block = mapped_cost(
            CostModel::HOPS,
            &tree,
            &state,
            &nodes,
            &spec,
            MappingStrategy::Block,
        );
        let aligned = mapped_cost(
            CostModel::HOPS,
            &tree,
            &state,
            &nodes,
            &spec,
            MappingStrategy::AlignedBlocks,
        );
        assert_eq!(block, aligned);
    }

    #[test]
    fn round_robin_is_the_worst_case() {
        let tree = Tree::regular_two_level(2, 8);
        let state = ClusterState::new(&tree);
        let nodes: Vec<NodeId> = (0..4).chain(8..12).map(NodeId).collect();
        let spec = CollectiveSpec::new(Pattern::Rhvd, 1 << 20);
        let costs: Vec<f64> = MappingStrategy::ALL
            .iter()
            .map(|&s| mapped_cost(CostModel::HOP_BYTES, &tree, &state, &nodes, &spec, s))
            .collect();
        // round-robin (index 1) at least as costly as both others
        assert!(costs[1] >= costs[0]);
        assert!(costs[1] >= costs[2]);
    }

    #[test]
    fn mapped_cost_block_matches_job_cost() {
        let tree = Tree::regular_two_level(3, 8);
        let mut state = ClusterState::new(&tree);
        state
            .allocate(
                &tree,
                JobId(5),
                &[NodeId(3), NodeId(4)],
                JobNature::CommIntensive,
            )
            .unwrap();
        let nodes: Vec<NodeId> = (0..3).chain(8..11).chain(16..18).map(NodeId).collect();
        let spec = CollectiveSpec::new(Pattern::Binomial, 4096);
        let a = CostModel::HOPS.job_cost(&tree, &state, &nodes, &spec);
        let b = mapped_cost(
            CostModel::HOPS,
            &tree,
            &state,
            &nodes,
            &spec,
            MappingStrategy::Block,
        );
        assert_eq!(a, b);
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::SeedableRng;

    /// Random partially-occupied cluster over a random two-level tree.
    fn random_scenario(leaf_sizes: &[usize], occupancy_pct: u8, seed: u64) -> (Tree, ClusterState) {
        let tree = Tree::irregular_two_level(leaf_sizes);
        let mut st = ClusterState::new(&tree);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut nodes: Vec<NodeId> = (0..tree.num_nodes()).map(NodeId).collect();
        nodes.shuffle(&mut rng);
        let busy = tree.num_nodes() * occupancy_pct as usize / 100;
        for (job, chunk) in nodes[..busy].chunks(3).enumerate() {
            let nature = if rng.random::<bool>() {
                JobNature::CommIntensive
            } else {
                JobNature::ComputeIntensive
            };
            st.allocate(&tree, JobId(1000 + job as u64), chunk, nature)
                .unwrap();
        }
        (tree, st)
    }

    fn arb_leaf_sizes() -> impl Strategy<Value = Vec<usize>> {
        proptest::collection::vec(2usize..20, 2..8)
    }

    proptest! {
        /// `reset` restores a churned state to exactly what `new` builds
        /// (occupancy equality ignores the version token, which must
        /// nevertheless be fresh) — even when the state is recycled onto a
        /// differently-shaped tree.
        #[test]
        fn reset_equals_new(
            sizes in arb_leaf_sizes(),
            other_sizes in arb_leaf_sizes(),
            occ in 0u8..80,
            seed in any::<u64>(),
        ) {
            let (tree, mut st) = random_scenario(&sizes, occ, seed);
            let before = st.version();
            st.reset(&tree);
            prop_assert_eq!(&st, &ClusterState::new(&tree));
            prop_assert_ne!(st.version(), before);
            st.check_invariants(&tree).unwrap();

            let other = Tree::irregular_two_level(&other_sizes);
            st.reset(&other);
            prop_assert_eq!(&st, &ClusterState::new(&other));
            st.check_invariants(&other).unwrap();
        }

        /// Every selector returns exactly N distinct, currently-free nodes
        /// whenever N <= free_total; otherwise it errors.
        #[test]
        fn selectors_return_exact_free_sets(
            sizes in arb_leaf_sizes(),
            occ in 0u8..80,
            seed in any::<u64>(),
            want in 1usize..40,
            comm in any::<bool>(),
        ) {
            let (tree, st) = random_scenario(&sizes, occ, seed);
            let nature = if comm { JobNature::CommIntensive } else { JobNature::ComputeIntensive };
            let req = AllocRequest { job: JobId(1), nodes: want, nature, pattern: None, attempt: 0 };
            for kind in SelectorKind::ALL {
                let res = kind.build().select(&tree, &st, &req);
                if want <= st.free_total() {
                    let got = res.unwrap();
                    prop_assert_eq!(got.len(), want, "{} returned wrong count", kind);
                    let mut uniq = got.clone();
                    uniq.sort_unstable();
                    uniq.dedup();
                    prop_assert_eq!(uniq.len(), want, "{} returned duplicates", kind);
                    for n in &got {
                        prop_assert!(st.is_free(*n), "{} allocated busy node {}", kind, n);
                    }
                } else {
                    prop_assert!(res.is_err(), "{} should have failed", kind);
                }
            }
        }

        /// Balanced grants per leaf are powers of two (first pass) or drain
        /// the leaf (leftover pass); at most one leaf — the final leftover
        /// target — may hold a partial, non-power-of-two grant.
        #[test]
        fn balanced_grants_mostly_powers_of_two(
            sizes in arb_leaf_sizes(),
            occ in 0u8..60,
            seed in any::<u64>(),
            logw in 0u32..6,
        ) {
            let (tree, st) = random_scenario(&sizes, occ, seed);
            let want = 1usize << logw;
            prop_assume!(want <= st.free_total());
            let got = BalancedSelector
                .select(&tree, &st, &AllocRequest::comm(JobId(1), want))
                .unwrap();
            let mut per = vec![0usize; tree.num_leaves()];
            for n in &got {
                per[tree.leaf_ordinal_of(*n)] += 1;
            }
            let mut partials = 0usize;
            for (k, &cnt) in per.iter().enumerate() {
                if cnt == 0 {
                    continue;
                }
                let leaf_drained = cnt == st.leaf_free(k) as usize;
                if !cnt.is_power_of_two() && !leaf_drained {
                    partials += 1;
                }
            }
            prop_assert!(
                partials <= 1,
                "{partials} leaves hold partial non-power-of-two grants: {per:?}"
            );
        }

        /// Allocate/release keeps all invariants, in any interleaving.
        #[test]
        fn state_invariants_under_churn(
            sizes in arb_leaf_sizes(),
            seed in any::<u64>(),
            ops in 1usize..60,
        ) {
            let tree = Tree::irregular_two_level(&sizes);
            let mut st = ClusterState::new(&tree);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut live: Vec<JobId> = Vec::new();
            let mut next = 0u64;
            for _ in 0..ops {
                if !live.is_empty() && rng.random::<f64>() < 0.4 {
                    let j = live.swap_remove(rng.random_range(0..live.len()));
                    st.release(&tree, j).unwrap();
                } else if st.free_total() > 0 {
                    let want = rng.random_range(1..=st.free_total().min(6));
                    let nature = if rng.random::<bool>() {
                        JobNature::CommIntensive
                    } else {
                        JobNature::ComputeIntensive
                    };
                    let req = AllocRequest { job: JobId(next), nodes: want, nature, pattern: None, attempt: 0 };
                    let kind = SelectorKind::ALL[rng.random_range(0usize..4)];
                    let nodes = kind.build().select(&tree, &st, &req).unwrap();
                    st.allocate(&tree, JobId(next), &nodes, nature).unwrap();
                    live.push(JobId(next));
                    next += 1;
                }
                let inv = st.check_invariants(&tree);
                prop_assert!(inv.is_ok(), "invariant broken: {:?}", inv);
            }
        }

        /// Every mapping strategy yields a permutation of the allocation,
        /// and best_mapping never exceeds the block cost.
        #[test]
        fn mapping_permutation_and_best_dominance(
            sizes in proptest::collection::vec(4usize..16, 2..5),
            logw in 1u32..5,
            seed in any::<u64>(),
        ) {
            use crate::mapping::{best_mapping, map_ranks, mapped_cost, MappingStrategy};
            let (tree, st) = random_scenario(&sizes, 30, seed);
            let want = 1usize << logw;
            prop_assume!(want <= st.free_total());
            let nodes = BalancedSelector
                .select(&tree, &st, &AllocRequest::comm(JobId(1), want))
                .unwrap();
            for s in MappingStrategy::ALL {
                let mut m = map_ranks(&tree, &nodes, s);
                m.sort_unstable();
                let mut w = nodes.clone();
                w.sort_unstable();
                prop_assert_eq!(m, w, "{} not a permutation", s.name());
            }
            let spec = CollectiveSpec::new(Pattern::Rd, 1 << 16);
            let block = mapped_cost(CostModel::HOPS, &tree, &st, &nodes, &spec, MappingStrategy::Block);
            let (_, _, best) = best_mapping(CostModel::HOPS, &tree, &st, &nodes, &spec);
            prop_assert!(best <= block + 1e-9, "best {best} > block {block}");
        }

        /// Cost is monotone in contention: adding a comm-intensive job on
        /// the same leaves never lowers another job's cost.
        #[test]
        fn cost_monotone_in_contention(seed in any::<u64>()) {
            let tree = Tree::regular_two_level(4, 8);
            let mut st = ClusterState::new(&tree);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let job: Vec<NodeId> = (0..8).map(|i| NodeId(i * 2)).collect();
            st.allocate(&tree, JobId(1), &job, JobNature::CommIntensive).unwrap();
            let spec = CollectiveSpec::new(Pattern::Rhvd, 1 << 16);
            let before = CostModel::HOPS.job_cost(&tree, &st, &job, &spec);
            // Add a second comm job on random free nodes.
            let mut free: Vec<NodeId> = (0..tree.num_nodes())
                .map(NodeId)
                .filter(|n| st.is_free(*n))
                .collect();
            free.shuffle(&mut rng);
            st.allocate(&tree, JobId(2), &free[..6], JobNature::CommIntensive).unwrap();
            let after = CostModel::HOPS.job_cost(&tree, &st, &job, &spec);
            prop_assert!(after >= before, "cost fell from {before} to {after}");
        }

        /// The fused evaluator returns, from one traversal, *exactly* the
        /// values the naive clone-allocate-then-`job_cost` path computes
        /// under both default cost models — bit for bit, warm or cold memo.
        #[test]
        fn evaluator_matches_naive_job_cost(
            sizes in arb_leaf_sizes(),
            occ in 0u8..70,
            seed in any::<u64>(),
            want in 1usize..24,
            pat in 0usize..6,
        ) {
            let (tree, st) = random_scenario(&sizes, occ, seed);
            prop_assume!(want <= st.free_total());
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x9e37);
            let mut free: Vec<NodeId> = (0..tree.num_nodes())
                .map(NodeId)
                .filter(|n| st.is_free(*n))
                .collect();
            free.shuffle(&mut rng);
            let nodes = &free[..want];
            let spec = CollectiveSpec::new(Pattern::ALL[pat], 1 << 16);

            // Naive reference: full clone, real allocation, one traversal
            // per model.
            let mut what_if = st.clone();
            what_if
                .allocate(&tree, JobId(u64::MAX), nodes, JobNature::CommIntensive)
                .unwrap();
            let naive_hops = CostModel::HOPS.job_cost(&tree, &what_if, nodes, &spec);
            let naive_bytes = CostModel::HOP_BYTES.job_cost(&tree, &what_if, nodes, &spec);

            let mut ev = PlacementEvaluator::new();
            let cold = ev.evaluate(&tree, &st, 0.5, nodes, &spec);
            prop_assert_eq!(cold.raw_hops.to_bits(), naive_hops.to_bits());
            prop_assert_eq!(cold.hop_bytes.to_bits(), naive_bytes.to_bits());
            // Second pass hits the hop memo and schedule cache.
            let warm = ev.evaluate(&tree, &st, 0.5, nodes, &spec);
            prop_assert_eq!(warm, cold);
        }

        /// `hypothetical_cost` (scratch-guard path) equals the clone-based
        /// reference and restores the state bit-for-bit — also when the
        /// guard is dropped early without being read.
        #[test]
        fn scratch_guard_matches_clone_and_restores(
            sizes in arb_leaf_sizes(),
            occ in 0u8..70,
            seed in any::<u64>(),
            want in 1usize..24,
        ) {
            let (tree, mut st) = random_scenario(&sizes, occ, seed);
            prop_assume!(want <= st.free_total());
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x51f1);
            let mut free: Vec<NodeId> = (0..tree.num_nodes())
                .map(NodeId)
                .filter(|n| st.is_free(*n))
                .collect();
            free.shuffle(&mut rng);
            let nodes: Vec<NodeId> = free[..want].to_vec();
            let spec = CollectiveSpec::new(Pattern::Rhvd, 1 << 16);

            let snapshot = st.clone();
            let mut reference = st.clone();
            reference
                .allocate(&tree, JobId(u64::MAX), &nodes, JobNature::CommIntensive)
                .unwrap();
            let naive = CostModel::HOP_BYTES.job_cost(&tree, &reference, &nodes, &spec);

            let hypo = CostModel::HOP_BYTES.hypothetical_cost(&tree, &mut st, &nodes, &spec);
            prop_assert_eq!(hypo.to_bits(), naive.to_bits());
            prop_assert_eq!(&st, &snapshot, "state not restored after hypothetical_cost");
            prop_assert!(st.check_invariants(&tree).is_ok());

            // Early drop: guard reverts even when never read.
            drop(st.scratch_alloc(&tree, &nodes, JobNature::CommIntensive));
            prop_assert_eq!(&st, &snapshot, "state not restored after early drop");
            prop_assert!(st.check_invariants(&tree).is_ok());
        }

        /// The incremental per-switch free counters always equal a fresh
        /// per-leaf recount, through arbitrary allocate/release/scratch
        /// interleavings.
        #[test]
        fn switch_counters_match_recount(
            sizes in arb_leaf_sizes(),
            seed in any::<u64>(),
            ops in 1usize..50,
        ) {
            use commsched_topology::SwitchId;
            let tree = Tree::irregular_two_level(&sizes);
            let mut st = ClusterState::new(&tree);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut live: Vec<JobId> = Vec::new();
            let mut next = 0u64;
            for _ in 0..ops {
                let roll = rng.random::<f64>();
                if !live.is_empty() && roll < 0.35 {
                    let j = live.swap_remove(rng.random_range(0..live.len()));
                    st.release(&tree, j).unwrap();
                } else if st.free_total() > 0 && roll < 0.55 {
                    // Scratch what-if: apply and revert, counters must agree
                    // both inside the guard and after it drops.
                    let want = rng.random_range(1..=st.free_total().min(5));
                    let nodes: Vec<NodeId> = (0..tree.num_nodes())
                        .map(NodeId)
                        .filter(|n| st.is_free(*n))
                        .take(want)
                        .collect();
                    let guard = st.scratch_alloc(&tree, &nodes, JobNature::CommIntensive);
                    for id in 0..tree.num_switches() {
                        let s = SwitchId(id);
                        prop_assert_eq!(
                            guard.subtree_free(&tree, s),
                            guard.subtree_free_naive(&tree, s),
                            "switch {} diverged inside scratch guard", id
                        );
                    }
                } else if st.free_total() > 0 {
                    let want = rng.random_range(1..=st.free_total().min(6));
                    let req = AllocRequest::comm(JobId(next), want);
                    let kind = SelectorKind::ALL[rng.random_range(0usize..4)];
                    let nodes = kind.build().select(&tree, &st, &req).unwrap();
                    st.allocate(&tree, JobId(next), &nodes, JobNature::CommIntensive).unwrap();
                    live.push(JobId(next));
                    next += 1;
                }
                for id in 0..tree.num_switches() {
                    let s = SwitchId(id);
                    prop_assert_eq!(
                        st.subtree_free(&tree, s),
                        st.subtree_free_naive(&tree, s),
                        "switch {} counter diverged from recount", id
                    );
                }
            }
        }

        /// The evaluator-backed adaptive selector makes the same decision a
        /// naive clone-based reimplementation of §4.3 makes.
        #[test]
        fn adaptive_matches_naive_decision(
            sizes in arb_leaf_sizes(),
            occ in 0u8..70,
            seed in any::<u64>(),
            want in 1usize..24,
            comm in any::<bool>(),
        ) {
            let (tree, mut st) = random_scenario(&sizes, occ, seed);
            prop_assume!(want <= st.free_total());
            let nature = if comm { JobNature::CommIntensive } else { JobNature::ComputeIntensive };
            let req = AllocRequest { job: JobId(7), nodes: want, nature, pattern: None, attempt: 0 };
            let chosen = AdaptiveSelector::default().select(&tree, &st, &req).unwrap();

            // Naive §4.3: compare clone-based hypothetical hop-bytes costs.
            let greedy = GreedySelector.select(&tree, &st, &req).unwrap();
            let balanced = BalancedSelector.select(&tree, &st, &req).unwrap();
            let expected = if greedy == balanced {
                balanced
            } else {
                let spec = req.spec();
                let m = CostModel::HOP_BYTES;
                let cg = m.hypothetical_cost(&tree, &mut st, &greedy, &spec);
                let cb = m.hypothetical_cost(&tree, &mut st, &balanced, &spec);
                let take_balanced = if nature.is_comm() { cb <= cg } else { cb > cg };
                if take_balanced { balanced } else { greedy }
            };
            prop_assert_eq!(chosen, expected);
        }

        /// The free-count index stays exactly consistent with a
        /// from-scratch rebuild (verified inside `check_invariants`)
        /// through arbitrary allocate / release / fault / recover / drain
        /// churn — every counter path that can move a leaf's fill keys or
        /// a switch's subtree-free total.
        #[test]
        fn free_index_survives_fault_churn(
            sizes in arb_leaf_sizes(),
            seed in any::<u64>(),
            ops in 1usize..60,
        ) {
            let tree = Tree::irregular_two_level(&sizes);
            let mut st = ClusterState::new(&tree);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut live: Vec<JobId> = Vec::new();
            let mut next = 0u64;
            for _ in 0..ops {
                let roll = rng.random::<f64>();
                let n = NodeId(rng.random_range(0..tree.num_nodes()));
                if roll < 0.2 && !live.is_empty() {
                    let j = live.swap_remove(rng.random_range(0..live.len()));
                    st.release(&tree, j).unwrap();
                } else if roll < 0.35 {
                    let _ = st.set_down(&tree, n); // busy/down errors are fine
                } else if roll < 0.5 {
                    let _ = st.set_up(&tree, n);
                } else if roll < 0.6 {
                    let _ = st.set_draining(&tree, n);
                } else if st.free_total() > 0 {
                    let want = rng.random_range(1..=st.free_total().min(6));
                    let req = AllocRequest::comm(JobId(next), want);
                    let kind = SelectorKind::ALL[rng.random_range(0usize..4)];
                    let nodes = kind.build().select(&tree, &st, &req).unwrap();
                    let nature = if rng.random::<bool>() {
                        JobNature::CommIntensive
                    } else {
                        JobNature::ComputeIntensive
                    };
                    st.allocate(&tree, JobId(next), &nodes, nature).unwrap();
                    live.push(JobId(next));
                    next += 1;
                }
                st.check_invariants(&tree).unwrap();
            }
        }

        /// Every indexed selector returns byte-identical placements to its
        /// pre-index linear-scan twin in `select_scan`, on random trees,
        /// occupancies and fault patterns — the tentpole guarantee of the
        /// free-count index.
        #[test]
        fn indexed_selectors_match_scan_baseline(
            sizes in arb_leaf_sizes(),
            occ in 0u8..80,
            seed in any::<u64>(),
            want in 1usize..32,
            comm in any::<bool>(),
            downs in 0usize..6,
        ) {
            use crate::select_scan;
            let (tree, mut st) = random_scenario(&sizes, occ, seed);
            // Knock a few nodes down so the fault path shapes the orders too.
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xd0d0);
            for _ in 0..downs {
                let n = NodeId(rng.random_range(0..tree.num_nodes()));
                let _ = st.set_down(&tree, n);
            }
            prop_assume!(want <= st.free_total());
            let nature = if comm { JobNature::CommIntensive } else { JobNature::ComputeIntensive };
            let req = AllocRequest { job: JobId(9), nodes: want, nature, pattern: None, attempt: 0 };

            prop_assert_eq!(
                DefaultTreeSelector.select(&tree, &st, &req).unwrap(),
                select_scan::default_select(&tree, &st, &req).unwrap()
            );
            prop_assert_eq!(
                GreedySelector.select(&tree, &st, &req).unwrap(),
                select_scan::greedy_select(&tree, &st, &req).unwrap()
            );
            prop_assert_eq!(
                BalancedSelector.select(&tree, &st, &req).unwrap(),
                select_scan::balanced_select(&tree, &st, &req).unwrap()
            );
            let adaptive = AdaptiveSelector::default();
            let scan_eval = std::sync::Arc::new(std::sync::Mutex::new(PlacementEvaluator::new()));
            prop_assert_eq!(
                adaptive.select(&tree, &st, &req).unwrap(),
                select_scan::adaptive_select(
                    &adaptive.cost, &scan_eval, &tree, &st, &req
                ).unwrap()
            );
        }

        /// The same byte-identical guarantee on deeper three-level trees,
        /// where the lowest-level-switch descent crosses real level
        /// structure instead of collapsing to leaves-plus-root.
        #[test]
        fn indexed_selectors_match_scan_three_level(
            spines in 2usize..4,
            leaves in 2usize..5,
            nodes_per_leaf in 2usize..8,
            occ in 0u8..80,
            seed in any::<u64>(),
            want in 1usize..40,
            comm in any::<bool>(),
        ) {
            use crate::select_scan;
            let tree = Tree::regular_three_level(spines, leaves, nodes_per_leaf);
            let mut st = ClusterState::new(&tree);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut all: Vec<NodeId> = (0..tree.num_nodes()).map(NodeId).collect();
            all.shuffle(&mut rng);
            let busy = tree.num_nodes() * occ as usize / 100;
            for (job, chunk) in all[..busy].chunks(4).enumerate() {
                let nature = if rng.random::<bool>() {
                    JobNature::CommIntensive
                } else {
                    JobNature::ComputeIntensive
                };
                st.allocate(&tree, JobId(500 + job as u64), chunk, nature).unwrap();
            }
            prop_assume!(want <= st.free_total());
            let nature = if comm { JobNature::CommIntensive } else { JobNature::ComputeIntensive };
            let req = AllocRequest { job: JobId(9), nodes: want, nature, pattern: None, attempt: 0 };

            prop_assert_eq!(
                DefaultTreeSelector.select(&tree, &st, &req).unwrap(),
                select_scan::default_select(&tree, &st, &req).unwrap()
            );
            prop_assert_eq!(
                GreedySelector.select(&tree, &st, &req).unwrap(),
                select_scan::greedy_select(&tree, &st, &req).unwrap()
            );
            prop_assert_eq!(
                BalancedSelector.select(&tree, &st, &req).unwrap(),
                select_scan::balanced_select(&tree, &st, &req).unwrap()
            );
            let adaptive = AdaptiveSelector::default();
            let scan_eval = std::sync::Arc::new(std::sync::Mutex::new(PlacementEvaluator::new()));
            prop_assert_eq!(
                adaptive.select(&tree, &st, &req).unwrap(),
                select_scan::adaptive_select(
                    &adaptive.cost, &scan_eval, &tree, &st, &req
                ).unwrap()
            );
        }
    }

    /// One shared churn driver for the switch-fault properties: interleave
    /// selector-driven allocations, releases, intrinsic node faults and
    /// correlated switch outages, checking after every step that the
    /// invariants hold, that no selector ever places on a node whose
    /// effective health is not `Up` (in particular, never on a leaf under
    /// a down switch), and that indexed selection stays byte-identical to
    /// the pre-index linear scan while the health mask reshapes the free
    /// counters.
    fn churn_with_switch_faults(
        tree: &Tree,
        seed: u64,
    ) -> Result<(), proptest::test_runner::TestCaseError> {
        use crate::select_scan;
        use crate::NodeHealth;
        use commsched_topology::SwitchId;
        use proptest::test_runner::TestCaseError;
        let mut st = ClusterState::new(tree);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut live: Vec<JobId> = Vec::new();
        let mut next = 0u64;
        // The root stays up: masking the whole machine degenerates every
        // later step into a no-op.
        let candidates: Vec<SwitchId> = (0..tree.num_switches())
            .map(SwitchId)
            .filter(|&s| s != tree.root())
            .collect();
        for step in 0..60u32 {
            match rng.random_range(0..6u8) {
                0 | 1 => {
                    // Place through a random selector; the placement
                    // itself is the property under test.
                    let want = rng.random_range(1..=4usize);
                    if want > st.free_total() {
                        continue;
                    }
                    let kind = SelectorKind::ALL[rng.random_range(0..SelectorKind::ALL.len())];
                    let nature = if rng.random::<bool>() {
                        JobNature::CommIntensive
                    } else {
                        JobNature::ComputeIntensive
                    };
                    let req = AllocRequest {
                        job: JobId(next),
                        nodes: want,
                        nature,
                        pattern: None,
                        attempt: 0,
                    };
                    let adaptive = AdaptiveSelector::default();
                    let got = match kind {
                        SelectorKind::Adaptive => adaptive.select(tree, &st, &req),
                        _ => kind.build().select(tree, &st, &req),
                    }
                    .expect("free_total covers the request");
                    let scan = match kind {
                        SelectorKind::Default => select_scan::default_select(tree, &st, &req),
                        SelectorKind::Greedy => select_scan::greedy_select(tree, &st, &req),
                        SelectorKind::Balanced => select_scan::balanced_select(tree, &st, &req),
                        SelectorKind::Adaptive => {
                            let eval = std::sync::Arc::new(std::sync::Mutex::new(
                                PlacementEvaluator::new(),
                            ));
                            select_scan::adaptive_select(&adaptive.cost, &eval, tree, &st, &req)
                        }
                        // `kind` is drawn from ALL, which excludes Sa (no
                        // scan twin exists for the annealed selector).
                        SelectorKind::Sa => unreachable!("ALL does not contain Sa"),
                    }
                    .expect("scan twin sees the same free_total");
                    prop_assert_eq!(
                        &got,
                        &scan,
                        "step {}: {} diverged from its scan twin",
                        step,
                        kind
                    );
                    for &n in &got {
                        prop_assert!(
                            !st.is_masked(n) && st.effective_health(n) == NodeHealth::Up,
                            "step {}: {} placed on unhealthy {} (masked: {})",
                            step,
                            kind,
                            n,
                            st.is_masked(n)
                        );
                    }
                    st.allocate(tree, JobId(next), &got, nature)
                        .expect("selected nodes are free");
                    live.push(JobId(next));
                    next += 1;
                }
                2 => {
                    if live.is_empty() {
                        continue;
                    }
                    let job = live.swap_remove(rng.random_range(0..live.len()));
                    st.release(tree, job).expect("live jobs hold allocations");
                }
                3 => {
                    // Intrinsic node fault or recovery; a busy node's job
                    // is killed first, mirroring the engine's fail path.
                    let n = NodeId(rng.random_range(0..tree.num_nodes()));
                    if st.health(n) == NodeHealth::Down {
                        st.set_up(tree, n)
                            .expect("intrinsically down nodes recover");
                    } else {
                        if let Some(victim) = st.job_on(n) {
                            st.release(tree, victim)
                                .expect("victim holds an allocation");
                            live.retain(|&j| j != victim);
                        }
                        // A draining victim goes down on release; only
                        // fail the node if the release didn't already.
                        if st.health(n) != NodeHealth::Down {
                            st.set_down(tree, n).expect("node is idle after the kill");
                        }
                    }
                }
                4 => {
                    if candidates.is_empty() {
                        continue;
                    }
                    let s = candidates[rng.random_range(0..candidates.len())];
                    if st.switch_is_down(s) {
                        continue;
                    }
                    // Kill everything under the subtree first, mirroring
                    // the engine's blast-radius handling.
                    let under: std::collections::BTreeSet<usize> =
                        tree.leaf_ordinals_under(s).iter().copied().collect();
                    let victims: Vec<JobId> = st
                        .allocations()
                        .filter(|(_, a)| {
                            a.nodes
                                .iter()
                                .any(|&n| under.contains(&tree.leaf_ordinal_of(n)))
                        })
                        .map(|(j, _)| j)
                        .collect();
                    for v in victims {
                        st.release(tree, v).expect("victims hold allocations");
                        live.retain(|&j| j != v);
                    }
                    st.set_switch_down(tree, s)
                        .expect("subtree is idle after the kills");
                }
                _ => {
                    let down: Vec<SwitchId> = (0..tree.num_switches())
                        .map(SwitchId)
                        .filter(|&s| st.switch_is_down(s))
                        .collect();
                    if down.is_empty() {
                        continue;
                    }
                    let s = down[rng.random_range(0..down.len())];
                    st.set_switch_up(tree, s).expect("picked from the down set");
                }
            }
            if let Err(e) = st.check_invariants(tree) {
                return Err(TestCaseError::fail(format!("step {step}: {e}")));
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Combined node + switch churn on random two-level trees:
        /// invariants stay clean, selectors never place under a down
        /// switch, and indexed selection tracks the scan baseline
        /// byte-for-byte through arbitrary health masking.
        #[test]
        fn switch_churn_two_level(sizes in arb_leaf_sizes(), seed in any::<u64>()) {
            let tree = Tree::irregular_two_level(&sizes);
            churn_with_switch_faults(&tree, seed)?;
        }

        /// The same combined churn on three-level trees, where one down
        /// mid-level switch masks several leaves at once and nested
        /// outages (spine above an already-failed leaf) overlap.
        #[test]
        fn switch_churn_three_level(
            spines in 2usize..4,
            leaves in 2usize..4,
            nodes_per_leaf in 2usize..6,
            seed in any::<u64>(),
        ) {
            let tree = Tree::regular_three_level(spines, leaves, nodes_per_leaf);
            churn_with_switch_faults(&tree, seed)?;
        }
    }
}

mod lifecycle {
    use super::*;
    use crate::NodeHealth;

    fn tree() -> Tree {
        Tree::regular_two_level(2, 3) // 2 leaves x 3 nodes
    }

    #[test]
    fn down_nodes_leave_every_free_counter() {
        let t = tree();
        let mut s = ClusterState::new(&t);
        s.set_down(&t, NodeId(0)).unwrap();
        s.set_down(&t, NodeId(4)).unwrap();
        assert_eq!(s.free_total(), 4);
        assert_eq!(s.down_total(), 2);
        assert_eq!(s.busy_total(), 0);
        assert_eq!(s.leaf_free(0), 2);
        assert_eq!(s.leaf_down(0), 1);
        assert_eq!(s.leaf_busy(0), 0);
        assert_eq!(s.health(NodeId(0)), NodeHealth::Down);
        assert!(!s.is_free(NodeId(0)));
        s.check_invariants(&t).unwrap();

        s.set_up(&t, NodeId(0)).unwrap();
        s.set_up(&t, NodeId(4)).unwrap();
        assert_eq!(s.free_total(), 6);
        assert_eq!(s.down_total(), 0);
        assert_eq!(s, ClusterState::new(&t));
        s.check_invariants(&t).unwrap();
    }

    #[test]
    fn selectors_avoid_down_nodes() {
        let t = tree();
        let mut s = ClusterState::new(&t);
        // Down all of leaf 0: every selector must land on leaf 1.
        for n in 0..3 {
            s.set_down(&t, NodeId(n)).unwrap();
        }
        let req = AllocRequest::comm(JobId(1), 2);
        for sel in [
            &DefaultTreeSelector as &dyn NodeSelector,
            &GreedySelector,
            &BalancedSelector,
            &AdaptiveSelector::new(CostModel::HOP_BYTES),
        ] {
            let nodes = sel.select(&t, &s, &req).unwrap();
            assert!(nodes.iter().all(|n| n.0 >= 3), "{nodes:?}");
        }
        // And a request wider than the surviving capacity fails cleanly.
        let wide = AllocRequest::comm(JobId(2), 4);
        assert!(DefaultTreeSelector.select(&t, &s, &wide).is_err());
    }

    #[test]
    fn lifecycle_transition_errors_are_typed() {
        let t = tree();
        let mut s = ClusterState::new(&t);
        s.allocate(&t, JobId(1), &[NodeId(0)], JobNature::ComputeIntensive)
            .unwrap();
        // Busy node cannot be downed directly.
        assert_eq!(
            s.set_down(&t, NodeId(0)),
            Err(StateError::NodeBusy(NodeId(0)))
        );
        // Up node cannot be recovered.
        assert_eq!(
            s.set_up(&t, NodeId(1)),
            Err(StateError::NodeNotDown(NodeId(1)))
        );
        s.set_down(&t, NodeId(1)).unwrap();
        // Down node cannot be downed or drained again.
        assert_eq!(
            s.set_down(&t, NodeId(1)),
            Err(StateError::NodeDown(NodeId(1)))
        );
        assert_eq!(
            s.set_draining(&t, NodeId(1)),
            Err(StateError::NodeDown(NodeId(1)))
        );
        // Allocating over a down node reports NodeDown, not NodeBusy.
        assert_eq!(
            s.allocate(&t, JobId(2), &[NodeId(1)], JobNature::ComputeIntensive),
            Err(StateError::NodeDown(NodeId(1)))
        );
        s.check_invariants(&t).unwrap();
    }

    #[test]
    fn draining_busy_node_goes_down_on_release() {
        let t = tree();
        let mut s = ClusterState::new(&t);
        s.allocate(
            &t,
            JobId(1),
            &[NodeId(0), NodeId(1)],
            JobNature::CommIntensive,
        )
        .unwrap();
        // Busy node: drain is deferred.
        assert_eq!(s.set_draining(&t, NodeId(0)), Ok(false));
        assert_eq!(s.health(NodeId(0)), NodeHealth::Draining);
        assert_eq!(s.draining_total(), 1);
        // Free node: drain is immediate.
        assert_eq!(s.set_draining(&t, NodeId(5)), Ok(true));
        assert_eq!(s.health(NodeId(5)), NodeHealth::Down);
        s.check_invariants(&t).unwrap();

        s.release(&t, JobId(1)).unwrap();
        assert_eq!(s.health(NodeId(0)), NodeHealth::Down);
        assert_eq!(s.health(NodeId(1)), NodeHealth::Up);
        assert!(s.is_free(NodeId(1)));
        assert_eq!(s.down_total(), 2);
        assert_eq!(s.draining_total(), 0);
        s.check_invariants(&t).unwrap();
    }

    #[test]
    fn recover_cancels_a_pending_drain() {
        let t = tree();
        let mut s = ClusterState::new(&t);
        s.allocate(&t, JobId(1), &[NodeId(0)], JobNature::ComputeIntensive)
            .unwrap();
        s.set_draining(&t, NodeId(0)).unwrap();
        s.set_up(&t, NodeId(0)).unwrap();
        assert_eq!(s.health(NodeId(0)), NodeHealth::Up);
        s.release(&t, JobId(1)).unwrap();
        assert!(s.is_free(NodeId(0)));
        assert_eq!(s, ClusterState::new(&t));
    }

    #[test]
    fn job_on_finds_the_unique_holder() {
        let t = tree();
        let mut s = ClusterState::new(&t);
        s.allocate(
            &t,
            JobId(9),
            &[NodeId(2), NodeId(3)],
            JobNature::CommIntensive,
        )
        .unwrap();
        assert_eq!(s.job_on(NodeId(2)), Some(JobId(9)));
        assert_eq!(s.job_on(NodeId(3)), Some(JobId(9)));
        assert_eq!(s.job_on(NodeId(0)), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Random interleavings of allocate/release/fail/recover/drain
            /// keep every incremental counter consistent, and draining the
            /// whole history returns the state to the full machine.
            #[test]
            fn counters_survive_random_churn(seed in any::<u64>()) {
                let t = Tree::irregular_two_level(&[3, 5, 2, 4]);
                let n = t.num_nodes();
                let mut s = ClusterState::new(&t);
                let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
                let mut live: Vec<JobId> = Vec::new();
                let mut next_id = 0u64;
                for step in 0..120 {
                    match rng.random_range(0..5) {
                        0 | 1 => {
                            // Allocate a small job on any free nodes.
                            let want = rng.random_range(1..=3usize);
                            let free: Vec<NodeId> = (0..n)
                                .map(NodeId)
                                .filter(|&x| s.is_free(x))
                                .collect();
                            if free.len() >= want {
                                let nodes = &free[..want];
                                let nature = if rng.random::<f64>() < 0.5 {
                                    JobNature::CommIntensive
                                } else {
                                    JobNature::ComputeIntensive
                                };
                                next_id += 1;
                                s.allocate(&t, JobId(next_id), nodes, nature).unwrap();
                                live.push(JobId(next_id));
                            }
                        }
                        2 => {
                            if !live.is_empty() {
                                let k = rng.random_range(0..live.len());
                                let id = live.remove(k);
                                s.release(&t, id).unwrap();
                            }
                        }
                        3 => {
                            let x = NodeId(rng.random_range(0..n));
                            if s.is_free(x) && s.health(x) == crate::NodeHealth::Up {
                                s.set_down(&t, x).unwrap();
                            } else if s.health(x) == crate::NodeHealth::Down {
                                s.set_up(&t, x).unwrap();
                            }
                        }
                        _ => {
                            let x = NodeId(rng.random_range(0..n));
                            if s.health(x) != crate::NodeHealth::Down {
                                s.set_draining(&t, x).unwrap();
                            }
                        }
                    }
                    if step % 10 == 0 {
                        prop_assert!(s.check_invariants(&t).is_ok());
                    }
                }
                s.check_invariants(&t).unwrap();
                // Drain the run: release every job, recover every node.
                for id in live {
                    s.release(&t, id).unwrap();
                }
                for x in (0..n).map(NodeId) {
                    if s.health(x) != crate::NodeHealth::Up {
                        s.set_up(&t, x).unwrap();
                    }
                }
                prop_assert_eq!(s.free_total(), n);
                prop_assert_eq!(s.down_total(), 0);
                prop_assert_eq!(s.draining_total(), 0);
                prop_assert_eq!(&s, &ClusterState::new(&t));
                prop_assert!(s.check_invariants(&t).is_ok());
            }
        }
    }
}

mod sa_properties {
    use super::*;
    use crate::{derive_seed, SaBudget, SaSelector};
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::SeedableRng;

    /// Random partially-occupied cluster over a random two-level tree
    /// (bigger leaves than the selector suite's scenario, so multi-leaf
    /// grants — the annealing move space — actually occur).
    fn sa_scenario(leaf_sizes: &[usize], occupancy_pct: u8, seed: u64) -> (Tree, ClusterState) {
        let tree = Tree::irregular_two_level(leaf_sizes);
        let mut st = ClusterState::new(&tree);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut nodes: Vec<NodeId> = (0..tree.num_nodes()).map(NodeId).collect();
        nodes.shuffle(&mut rng);
        let busy = tree.num_nodes() * occupancy_pct as usize / 100;
        for (job, chunk) in nodes[..busy].chunks(3).enumerate() {
            let nature = if rng.random::<bool>() {
                JobNature::CommIntensive
            } else {
                JobNature::ComputeIntensive
            };
            st.allocate(&tree, JobId(1000 + job as u64), chunk, nature)
                .unwrap();
        }
        (tree, st)
    }

    fn arb_leaf_sizes() -> impl Strategy<Value = Vec<usize>> {
        proptest::collection::vec(4usize..24, 2..8)
    }

    /// Eq. 6 hop-bytes of a placement through a fresh evaluator — the
    /// yardstick every guarantee below is measured with.
    fn hop_bytes_cost(
        tree: &Tree,
        st: &ClusterState,
        nodes: &[NodeId],
        spec: &CollectiveSpec,
    ) -> f64 {
        PlacementEvaluator::new()
            .evaluate(tree, st, CostModel::HOP_BYTES.trunk_discount, nodes, spec)
            .for_model(&CostModel::HOP_BYTES)
    }

    proptest! {
        /// The same (tree, state, request, budget, seed) always yields the
        /// same placement — even through a *fresh* selector whose
        /// evaluator has no history, so warm memos cannot leak into the
        /// outcome.
        #[test]
        fn same_seed_same_placement(
            sizes in arb_leaf_sizes(),
            occ in 0u8..70,
            seed in any::<u64>(),
            sa_seed in any::<u64>(),
            want in 1usize..24,
            budget in 0u32..96,
        ) {
            let (tree, st) = sa_scenario(&sizes, occ, seed);
            prop_assume!(want <= st.free_total());
            let req = AllocRequest::comm(JobId(5), want)
                .with_pattern(CollectiveSpec::new(Pattern::Rhvd, 1 << 16));
            let sa = SaSelector::new(SaBudget::with_evals(budget), sa_seed);
            let first = sa.select(&tree, &st, &req).unwrap();
            let replay = sa.select(&tree, &st, &req).unwrap();
            prop_assert_eq!(&first, &replay, "same selector replays differently");
            let fresh = SaSelector::new(SaBudget::with_evals(budget), sa_seed)
                .select(&tree, &st, &req)
                .unwrap();
            prop_assert_eq!(&first, &fresh, "evaluator history changed the placement");
        }

        /// The returned placement never costs more than the adaptive
        /// incumbent, for every (tree, occupancy, budget) sample.
        #[test]
        fn final_cost_never_exceeds_incumbent(
            sizes in arb_leaf_sizes(),
            occ in 0u8..70,
            seed in any::<u64>(),
            sa_seed in any::<u64>(),
            want in 1usize..24,
            budget in 0u32..96,
        ) {
            let (tree, st) = sa_scenario(&sizes, occ, seed);
            prop_assume!(want <= st.free_total());
            let req = AllocRequest::comm(JobId(5), want)
                .with_pattern(CollectiveSpec::new(Pattern::Rd, 1 << 16));
            let spec = req.spec();
            let incumbent = AdaptiveSelector::default().select(&tree, &st, &req).unwrap();
            let refined = SaSelector::new(SaBudget::with_evals(budget), sa_seed)
                .select(&tree, &st, &req)
                .unwrap();
            let cost_inc = hop_bytes_cost(&tree, &st, &incumbent, &spec);
            let cost_sa = hop_bytes_cost(&tree, &st, &refined, &spec);
            prop_assert!(
                cost_sa <= cost_inc,
                "sa@{} cost {} exceeds incumbent {}", budget, cost_sa, cost_inc
            );
        }

        /// Budget 0 is the adaptive placement bit-for-bit — same nodes,
        /// same order — for comm and compute jobs alike.
        #[test]
        fn budget_zero_is_adaptive_bit_for_bit(
            sizes in arb_leaf_sizes(),
            occ in 0u8..70,
            seed in any::<u64>(),
            sa_seed in any::<u64>(),
            want in 1usize..24,
            comm in any::<bool>(),
        ) {
            let (tree, st) = sa_scenario(&sizes, occ, seed);
            prop_assume!(want <= st.free_total());
            let req = if comm {
                AllocRequest::comm(JobId(5), want)
            } else {
                AllocRequest::compute(JobId(5), want)
            };
            let adaptive = AdaptiveSelector::default().select(&tree, &st, &req).unwrap();
            let sa = SaSelector::new(SaBudget::with_evals(0), sa_seed)
                .select(&tree, &st, &req)
                .unwrap();
            prop_assert_eq!(adaptive, sa);
        }

        /// Under random node and switch fault churn the search still
        /// returns exactly N distinct free, healthy nodes — never a downed
        /// or masked one.
        #[test]
        fn valid_placement_under_fault_churn(
            sizes in arb_leaf_sizes(),
            occ in 0u8..50,
            seed in any::<u64>(),
            sa_seed in any::<u64>(),
            want in 1usize..16,
            downs in proptest::collection::vec(any::<u32>(), 0..12),
            down_leaf in any::<bool>(),
        ) {
            let (tree, mut st) = sa_scenario(&sizes, occ, seed);
            for d in downs {
                let n = NodeId(d as usize % tree.num_nodes());
                let _ = st.set_down(&tree, n);
            }
            if down_leaf {
                let _ = st.set_switch_down(&tree, tree.leaf(0));
            }
            st.check_invariants(&tree).unwrap();
            let req = AllocRequest::comm(JobId(5), want)
                .with_pattern(CollectiveSpec::new(Pattern::Rhvd, 1 << 16));
            let res = SaSelector::new(SaBudget::with_evals(64), sa_seed)
                .select(&tree, &st, &req);
            if want > st.free_total() {
                prop_assert!(res.is_err());
            } else {
                let got = res.unwrap();
                prop_assert_eq!(got.len(), want);
                let mut uniq = got.clone();
                uniq.sort_unstable();
                uniq.dedup();
                prop_assert_eq!(uniq.len(), want, "duplicate nodes in placement");
                for n in &got {
                    prop_assert!(st.is_free(*n), "allocated busy/unavailable node {}", n);
                    prop_assert!(!st.is_masked(*n), "allocated masked node {}", n);
                    prop_assert_eq!(
                        st.effective_health(*n),
                        crate::NodeHealth::Up,
                        "allocated unhealthy node {}", n
                    );
                }
            }
        }

        /// `evaluate_grouped` on per-leaf counts is bit-identical to
        /// `evaluate` on the materialized node set (the built-in tree
        /// constructors number nodes leaf by leaf) — the equivalence the
        /// annealing hot loop rests on.
        #[test]
        fn grouped_eval_matches_materialized(
            sizes in arb_leaf_sizes(),
            occ in 0u8..70,
            seed in any::<u64>(),
            want in 1usize..24,
            logm in 10u32..22,
        ) {
            let (tree, st) = sa_scenario(&sizes, occ, seed);
            prop_assume!(want <= st.free_total());
            // A take vector over the leaves: greedily fill in ordinal order.
            let mut groups: Vec<(usize, u32)> = Vec::new();
            let mut nodes: Vec<NodeId> = Vec::new();
            let mut left = want;
            for k in 0..tree.num_leaves() {
                let free = st.leaf_free(k) as usize;
                let t = free.min(left);
                if t > 0 {
                    groups.push((k, t as u32));
                    nodes.extend(st.free_nodes_on_leaf(&tree, k, t));
                    left -= t;
                }
            }
            prop_assert_eq!(left, 0);
            let spec = CollectiveSpec::new(Pattern::Rhvd, 1u64 << logm);
            let mut eval = PlacementEvaluator::new();
            let d = CostModel::HOP_BYTES.trunk_discount;
            let grouped = eval.evaluate_grouped(&tree, &st, d, &groups, &spec);
            let materialized = eval.evaluate(&tree, &st, d, &nodes, &spec);
            prop_assert_eq!(grouped.raw_hops.to_bits(), materialized.raw_hops.to_bits());
            prop_assert_eq!(grouped.hop_bytes.to_bits(), materialized.hop_bytes.to_bits());
        }

        /// Distinct (job, attempt) pairs derive distinct search seeds —
        /// requeued attempts explore a different neighbourhood.
        #[test]
        fn derived_seeds_distinct_across_attempts(
            run_seed in any::<u64>(),
            job in 0u64..1_000_000,
            a1 in 0u32..16,
            a2 in 0u32..16,
        ) {
            prop_assume!(a1 != a2);
            prop_assert_ne!(
                derive_seed(run_seed, JobId(job), a1),
                derive_seed(run_seed, JobId(job), a2)
            );
        }
    }

    /// Requeue regression (the per-job RNG must fold in the attempt): on a
    /// contended cluster the retry's annealing walk differs from the first
    /// try's — observable as a different proposal stream in the stats.
    #[test]
    fn requeued_attempt_explores_different_neighborhood() {
        let (tree, st) = sa_scenario(&[16, 16, 16, 16], 40, 11);
        let sa = SaSelector::new(SaBudget::with_evals(64), 42);
        let req = AllocRequest::comm(JobId(9), 20)
            .with_pattern(CollectiveSpec::new(Pattern::Rhvd, 1 << 20));
        let first = sa.select(&tree, &st, &req).unwrap();
        let stats_first = sa.take_stats().expect("search ran");
        let retry_req = AllocRequest::comm(JobId(9), 20)
            .with_pattern(CollectiveSpec::new(Pattern::Rhvd, 1 << 20))
            .with_attempt(1);
        let retry = sa.select(&tree, &st, &retry_req).unwrap();
        let stats_retry = sa.take_stats().expect("search ran");
        assert_eq!(stats_first.attempt, 0);
        assert_eq!(stats_retry.attempt, 1);
        // Different seed, different walk: the accept/reject tallies (or
        // the placements themselves) must diverge.
        assert!(
            first != retry
                || (stats_first.accepted, stats_first.rejected)
                    != (stats_retry.accepted, stats_retry.rejected),
            "attempt 1 replayed attempt 0's search exactly"
        );
    }
}
