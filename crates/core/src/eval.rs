//! Fused single-pass placement evaluation.
//!
//! [`PlacementEvaluator`] walks a collective schedule **once** and returns
//! both Eq. 6 totals — raw effective hops and effective hop-bytes — from
//! the same traversal. The two default [`CostModel`]s differ only in the
//! per-step weighting (`worst` vs `worst * msize`); the per-step maximum
//! itself is identical whenever the trunk discounts match, so one pass over
//! the schedule yields both numbers bit-for-bit as the naive
//! [`CostModel::job_cost`] computes them.
//!
//! The evaluator never mutates the [`ClusterState`]. The hypothetical
//! job's own contribution to `L_comm` (the paper's worked example counts
//! the job's own nodes) is applied as an *overlay*: integer deltas added to
//! the `u32` leaf counters before the `f64` conversion, which is exactly
//! what a real allocation would have produced.
//!
//! Two memoization layers amortize repeated evaluations:
//!
//! * a **per-leaf-pair hop memo**, tagged with the state version, trunk
//!   discount and the exact overlay, so successive components of the same
//!   job (same allocation, same state) reuse hop values across collectives;
//! * a **schedule cache** keyed on `(pattern, ranks, msize)`, because
//!   [`CollectiveSpec::steps`] regenerates the full step list on every call
//!   and placement evaluates the same spec for several candidate
//!   allocations in a row.

use crate::cost::CostModel;
use crate::state::ClusterState;
use commsched_collectives::{CollectiveSpec, Pattern, Step};
use commsched_num::f64_of_u64;
use commsched_topology::{NodeId, Tree};
use std::collections::HashMap;
use std::sync::Arc;

/// Both Eq. 6 totals from one schedule traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalTotals {
    /// Σ per-step max effective hops (the paper's Eq. 6 as printed).
    pub raw_hops: f64,
    /// Σ per-step max effective hops × step message size (§5.3 hop-bytes).
    pub hop_bytes: f64,
}

impl EvalTotals {
    /// The total the given model would have reported from its own
    /// [`CostModel::job_cost`] traversal.
    #[inline]
    pub fn for_model(&self, model: &CostModel) -> f64 {
        if model.hop_bytes {
            self.hop_bytes
        } else {
            self.raw_hops
        }
    }
}

/// Upper bound on distinct cached schedules before the cache is cleared.
const MAX_CACHED_SCHEDULES: usize = 128;
/// Schedules with more total pairs than this are not cached (an alltoall
/// at large rank counts holds millions of pairs; regenerate those instead
/// of pinning the memory).
const MAX_CACHED_SCHEDULE_PAIRS: usize = 1 << 22;
/// Widest candidate (in touched leaf switches) whose canonical hop matrix
/// is filled eagerly before the pair sweep — at most 136 `hop_value`
/// calls, repaid many times over by dropping the per-pair stamp check.
const EAGER_MATRIX_MAX_TOUCHED: usize = 16;
/// Widest candidate (in *touched* leaf switches) served by the flat dense
/// hop memo; beyond this (8 MiB of table) a hash map takes over. The memo
/// is sized by the job's own leaf spread — never by the machine — so the
/// fast path holds even on the 1M-node presets, where a 4096-node job
/// spans at most a few hundred leaves.
const FLAT_MEMO_MAX_TOUCHED: usize = 1024;

/// Single-pass what-if cost evaluator (see module docs).
///
/// Reusable across placements; hold one per engine/selector and feed every
/// evaluation through it so the hop memo and schedule cache stay warm.
#[derive(Debug, Default)]
pub struct PlacementEvaluator {
    /// `(pattern, ranks, msize)` → generated steps.
    schedules: HashMap<(Pattern, usize, u64), Arc<Vec<Step>>>,
    /// Flat hop memo for canonical *touched-leaf* pairs: leaves are
    /// remapped to their dense position in the sorted overlay (the
    /// candidate's touched leaves), and the memo is indexed
    /// `da * touched + db` with `da <= db`. An entry is valid only when its
    /// stamp matches [`Self::stamp`], so invalidation is one counter bump,
    /// not a table wipe. The inner pair loop is the hottest code in
    /// placement — an array probe here beats a `HashMap` probe by an order
    /// of magnitude, and sizing by the job's leaf spread (not the machine's
    /// leaf count) keeps the table small on exascale trees.
    hop_stamp: Vec<u64>,
    hop_vals: Vec<f64>,
    stamp: u64,
    /// Fallback memo (keyed by canonical leaf ordinals) for candidates
    /// spread over more leaves than the flat table serves.
    hop_map: HashMap<(usize, usize), f64>,
    /// Touched-leaf count the flat memo is sized for.
    dense_dim: usize,
    /// `(state version, trunk discount bits)` the hop memo was filled under.
    tag: Option<(u64, u64)>,
    /// Exact overlay the hop memo was filled under (sorted leaf deltas).
    tag_overlay: Vec<(usize, u32)>,
    /// Scratch: sorted `(leaf ordinal, +comm delta)` of the candidate.
    overlay: Vec<(usize, u32)>,
    /// Scratch: candidate nodes sorted into rank order.
    ranked: Vec<NodeId>,
    /// Scratch: leaf ordinal of each rank.
    leaf_of_rank: Vec<usize>,
    /// Scratch: dense overlay position of each rank's leaf.
    dense_of_rank: Vec<usize>,
}

impl PlacementEvaluator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate placing `nodes` as a communication-intensive job running
    /// `spec`, without mutating `state`. Returns both Eq. 6 totals.
    ///
    /// Equivalent (bit-for-bit) to allocating `nodes` on a copy of `state`
    /// and calling [`CostModel::job_cost`] once per model with
    /// `trunk_discount`, but in a single traversal of the schedule.
    pub fn evaluate(
        &mut self,
        tree: &Tree,
        state: &ClusterState,
        trunk_discount: f64,
        nodes: &[NodeId],
        spec: &CollectiveSpec,
    ) -> EvalTotals {
        self.ranked.clear();
        self.ranked.extend_from_slice(nodes);
        self.ranked.sort_unstable();
        self.leaf_of_rank.clear();
        self.leaf_of_rank
            .extend(self.ranked.iter().map(|n| tree.leaf_ordinal_of(*n)));

        // Overlay: how the candidate itself would bump each leaf's L_comm.
        self.overlay.clear();
        for &k in &self.leaf_of_rank {
            self.overlay.push((k, 1));
        }
        self.overlay.sort_unstable();
        self.overlay.dedup_by(|next, acc| {
            if acc.0 == next.0 {
                acc.1 += next.1;
                true
            } else {
                false
            }
        });

        // Dense remap: each rank's leaf → its position in the sorted
        // overlay. The remap is order-preserving, so canonicalizing on
        // dense positions canonicalizes on leaf ordinals too.
        self.dense_of_rank.clear();
        for i in 0..self.leaf_of_rank.len() {
            let k = self.leaf_of_rank[i];
            // Every rank's leaf is in the overlay by construction.
            if let Ok(d) = self.overlay.binary_search_by_key(&k, |&(leaf, _)| leaf) {
                self.dense_of_rank.push(d);
            }
        }
        self.sweep(tree, state, trunk_discount, spec)
    }

    /// Evaluate a candidate given as per-leaf node counts instead of
    /// materialized nodes: `groups` holds `(leaf ordinal, count)` pairs in
    /// strictly ascending ordinal order with every count positive.
    ///
    /// When node ids are grouped by ascending leaf ordinal — true for
    /// every built-in topology constructor — this is float-op-identical
    /// to materializing `count` nodes per leaf and calling
    /// [`Self::evaluate`]: the rank→leaf mapping is the same step
    /// function either way. Skipping the materialization, the sort and
    /// the per-rank overlay rebuild is what makes annealing proposals
    /// cheap (the `SaSelector` hot loop).
    pub fn evaluate_grouped(
        &mut self,
        tree: &Tree,
        state: &ClusterState,
        trunk_discount: f64,
        groups: &[(usize, u32)],
        spec: &CollectiveSpec,
    ) -> EvalTotals {
        // The groups *are* the sorted, deduplicated overlay.
        self.overlay.clear();
        self.overlay.extend_from_slice(groups);
        self.dense_of_rank.clear();
        for (d, &(_, count)) in groups.iter().enumerate() {
            for _ in 0..count {
                self.dense_of_rank.push(d);
            }
        }
        self.sweep(tree, state, trunk_discount, spec)
    }

    /// The shared schedule traversal: assumes `self.overlay` (sorted leaf
    /// deltas) and `self.dense_of_rank` (each rank's overlay position) are
    /// prepared. Both public entry points funnel here, so a grouped
    /// evaluation and a materialized one run the identical float ops.
    fn sweep(
        &mut self,
        tree: &Tree,
        state: &ClusterState,
        trunk_discount: f64,
        spec: &CollectiveSpec,
    ) -> EvalTotals {
        // The hop memo survives across calls only while the contention
        // context is unchanged: same state version, same discount, and the
        // same overlay (compared exactly — no fingerprint collisions).
        let tag = (state.version(), trunk_discount.to_bits());
        if self.tag != Some(tag) || self.tag_overlay != self.overlay {
            self.stamp += 1;
            self.hop_map.clear();
            self.tag = Some(tag);
            self.tag_overlay.clear();
            self.tag_overlay.extend_from_slice(&self.overlay);
        }
        let m = self.overlay.len();
        let flat = m <= FLAT_MEMO_MAX_TOUCHED;
        if flat && self.dense_dim != m {
            self.dense_dim = m;
            self.hop_stamp.clear();
            self.hop_stamp.resize(m * m, 0);
            self.hop_vals.clear();
            self.hop_vals.resize(m * m, 0.0);
            self.stamp += 1;
        }

        let steps = self.schedule(spec, self.dense_of_rank.len());
        let contention = CostModel {
            hop_bytes: false,
            trunk_discount,
        };

        // Narrow spreads (the common case: power-of-two jobs touch a
        // handful of large leaves) fill the whole canonical matrix up
        // front — the inner pair loop then degenerates to one array load,
        // with no per-pair stamp check. Values are identical: the same
        // [`Self::hop_value`] per canonical pair, only computed eagerly.
        let eager = flat && m <= EAGER_MATRIX_MAX_TOUCHED;
        let mut matrix_max = f64::NEG_INFINITY;
        if eager {
            for da in 0..m {
                let (la, delta_a) = self.overlay[da];
                for db in da..m {
                    let idx = da * m + db;
                    if self.hop_stamp[idx] != self.stamp {
                        let (lb, delta_b) = self.overlay[db];
                        self.hop_vals[idx] =
                            Self::hop_value(tree, state, &contention, la, lb, delta_a, delta_b);
                        self.hop_stamp[idx] = self.stamp;
                    }
                    if self.hop_vals[idx] > matrix_max {
                        matrix_max = self.hop_vals[idx];
                    }
                }
            }
        }

        let mut raw_hops = 0.0;
        let mut hop_bytes = 0.0;
        for step in steps.iter() {
            let mut worst: f64 = 0.0;
            for &(ri, rj) in &step.pairs {
                let (da, db) = {
                    let (a, b) = (self.dense_of_rank[ri], self.dense_of_rank[rj]);
                    if a <= b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                };
                let hops = if eager {
                    let h = self.hop_vals[da * m + db];
                    if h >= matrix_max {
                        // No pair type can beat the matrix maximum: the
                        // step's max is decided, and the remaining pairs
                        // cannot change it — an exact early exit.
                        worst = h;
                        break;
                    }
                    h
                } else if flat {
                    let idx = da * m + db;
                    if self.hop_stamp[idx] == self.stamp {
                        self.hop_vals[idx]
                    } else {
                        let (la, delta_a) = self.overlay[da];
                        let (lb, delta_b) = self.overlay[db];
                        let h = Self::hop_value(tree, state, &contention, la, lb, delta_a, delta_b);
                        self.hop_stamp[idx] = self.stamp;
                        self.hop_vals[idx] = h;
                        h
                    }
                } else {
                    let (la, delta_a) = self.overlay[da];
                    let (lb, delta_b) = self.overlay[db];
                    match self.hop_map.get(&(la, lb)) {
                        Some(&h) => h,
                        None => {
                            let h =
                                Self::hop_value(tree, state, &contention, la, lb, delta_a, delta_b);
                            self.hop_map.insert((la, lb), h);
                            h
                        }
                    }
                };
                if hops > worst {
                    worst = hops;
                }
            }
            raw_hops += worst;
            hop_bytes += worst * f64_of_u64(step.msize);
        }
        EvalTotals {
            raw_hops,
            hop_bytes,
        }
    }

    /// Eq. 5 for a canonical leaf pair under the candidate's own `L_comm`
    /// deltas — float-op-identical to the expression inside the naive
    /// [`CostModel::job_cost`] memo fill.
    #[inline]
    fn hop_value(
        tree: &Tree,
        state: &ClusterState,
        contention: &CostModel,
        la: usize,
        lb: usize,
        delta_a: u32,
        delta_b: u32,
    ) -> f64 {
        let d = if la == lb {
            2.0
        } else {
            f64::from(2 * tree.leaf_lca_level(la, lb))
        };
        let comm_a = state.leaf_comm(la) + delta_a;
        let comm_b = state.leaf_comm(lb) + delta_b;
        d * (1.0 + contention.leaf_contention_counts(tree, la, lb, comm_a, comm_b))
    }

    fn schedule(&mut self, spec: &CollectiveSpec, ranks: usize) -> Arc<Vec<Step>> {
        let key = (spec.pattern, ranks, spec.msize);
        if let Some(steps) = self.schedules.get(&key) {
            return Arc::clone(steps);
        }
        let steps = Arc::new(spec.steps(ranks));
        let pairs: usize = steps.iter().map(|s| s.pairs.len()).sum();
        if pairs <= MAX_CACHED_SCHEDULE_PAIRS {
            if self.schedules.len() >= MAX_CACHED_SCHEDULES {
                self.schedules.clear();
            }
            self.schedules.insert(key, Arc::clone(&steps));
        }
        steps
    }
}
