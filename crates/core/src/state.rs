//! Cluster occupancy state: which nodes are busy, and the per-leaf counters
//! (`L_nodes`, `L_busy`, `L_comm`) that drive the paper's Eqs. 1–3.

use commsched_topology::{NodeId, SwitchId, Tree};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Scheduler-wide job identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// The paper's binary job classification (§4): supplied by the user or
/// deduced from MPI profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobNature {
    /// Dominated by MPI communication; benefits from contention avoidance.
    CommIntensive,
    /// Dominated by computation; insensitive to placement.
    ComputeIntensive,
}

impl JobNature {
    /// True for [`JobNature::CommIntensive`].
    #[inline]
    pub fn is_comm(self) -> bool {
        matches!(self, JobNature::CommIntensive)
    }
}

/// A recorded allocation: the nodes a job occupies and its nature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Nodes held by the job, sorted.
    pub nodes: Vec<NodeId>,
    /// Job classification at allocation time.
    pub nature: JobNature,
}

/// Errors from state mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// Tried to allocate a node that is already busy.
    NodeBusy(NodeId),
    /// Tried to allocate under a job id that already holds nodes.
    JobExists(JobId),
    /// Tried to release a job with no recorded allocation.
    UnknownJob(JobId),
    /// Empty allocation.
    EmptyAllocation(JobId),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NodeBusy(n) => write!(f, "{n} is already allocated"),
            Self::JobExists(j) => write!(f, "{j} already holds an allocation"),
            Self::UnknownJob(j) => write!(f, "{j} has no allocation"),
            Self::EmptyAllocation(j) => write!(f, "refusing empty allocation for {j}"),
        }
    }
}

impl std::error::Error for StateError {}

/// Mutable occupancy state over an immutable [`Tree`].
///
/// Keeps per-node free/busy bits and the three per-leaf counters the paper's
/// formulas read. Cloning is cheap enough for the adaptive selector's
/// what-if evaluations (a few `Vec` memcpys).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    /// Per-node: is the node free?
    node_free: Vec<bool>,
    /// Per-leaf-ordinal: free node count.
    leaf_free: Vec<u32>,
    /// Per-leaf-ordinal: busy node count (the paper's `L_busy`).
    leaf_busy: Vec<u32>,
    /// Per-leaf-ordinal: nodes running communication-intensive jobs
    /// (the paper's `L_comm`).
    leaf_comm: Vec<u32>,
    free_total: usize,
    allocs: HashMap<JobId, Allocation>,
}

impl ClusterState {
    /// A fully-free cluster over `tree`.
    pub fn new(tree: &Tree) -> Self {
        let leaves = tree.num_leaves();
        let mut leaf_free = vec![0u32; leaves];
        for (k, lf) in leaf_free.iter_mut().enumerate() {
            *lf = tree.leaf_size(k) as u32;
        }
        ClusterState {
            node_free: vec![true; tree.num_nodes()],
            leaf_free,
            leaf_busy: vec![0; leaves],
            leaf_comm: vec![0; leaves],
            free_total: tree.num_nodes(),
            allocs: HashMap::new(),
        }
    }

    /// Total free nodes in the cluster.
    #[inline]
    pub fn free_total(&self) -> usize {
        self.free_total
    }

    /// Total busy nodes in the cluster.
    #[inline]
    pub fn busy_total(&self) -> usize {
        self.node_free.len() - self.free_total
    }

    /// Is this node free?
    #[inline]
    pub fn is_free(&self, n: NodeId) -> bool {
        self.node_free[n.0]
    }

    /// Free nodes on leaf ordinal `k` (the complement of `L_busy`).
    #[inline]
    pub fn leaf_free(&self, k: usize) -> u32 {
        self.leaf_free[k]
    }

    /// The paper's `L_busy` for leaf ordinal `k`.
    #[inline]
    pub fn leaf_busy(&self, k: usize) -> u32 {
        self.leaf_busy[k]
    }

    /// The paper's `L_comm` for leaf ordinal `k`.
    #[inline]
    pub fn leaf_comm(&self, k: usize) -> u32 {
        self.leaf_comm[k]
    }

    /// Number of jobs currently holding allocations.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.allocs.len()
    }

    /// The allocation held by `job`, if any.
    pub fn allocation(&self, job: JobId) -> Option<&Allocation> {
        self.allocs.get(&job)
    }

    /// Iterate over all current allocations.
    pub fn allocations(&self) -> impl Iterator<Item = (JobId, &Allocation)> {
        self.allocs.iter().map(|(j, a)| (*j, a))
    }

    /// Eq. 1 — the *communication ratio* of leaf ordinal `k`:
    /// `L_comm / L_busy + L_busy / L_nodes`.
    ///
    /// An idle leaf (`L_busy == 0`) has ratio 0: no contention, everything
    /// free — the most attractive leaf for a communication-intensive job.
    pub fn communication_ratio(&self, tree: &Tree, k: usize) -> f64 {
        let busy = f64::from(self.leaf_busy[k]);
        let nodes = tree.leaf_size(k) as f64;
        if self.leaf_busy[k] == 0 {
            0.0
        } else {
            f64::from(self.leaf_comm[k]) / busy + busy / nodes
        }
    }

    /// Free nodes in the subtree of `s`.
    pub fn subtree_free(&self, tree: &Tree, s: SwitchId) -> usize {
        tree.leaf_ordinals_under(s)
            .iter()
            .map(|&k| self.leaf_free[k] as usize)
            .sum()
    }

    /// The first `want` free nodes on leaf ordinal `k`, lowest node id first
    /// (SLURM's bitmap order).
    pub fn free_nodes_on_leaf(&self, tree: &Tree, k: usize, want: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(want);
        for &n in tree.leaf_nodes(k) {
            if out.len() == want {
                break;
            }
            if self.node_free[n.0] {
                out.push(n);
            }
        }
        out
    }

    /// Record an allocation: mark `nodes` busy under `job` with `nature`.
    pub fn allocate(
        &mut self,
        tree: &Tree,
        job: JobId,
        nodes: &[NodeId],
        nature: JobNature,
    ) -> Result<(), StateError> {
        if nodes.is_empty() {
            return Err(StateError::EmptyAllocation(job));
        }
        if self.allocs.contains_key(&job) {
            return Err(StateError::JobExists(job));
        }
        for &n in nodes {
            if !self.node_free[n.0] {
                return Err(StateError::NodeBusy(n));
            }
        }
        for &n in nodes {
            self.node_free[n.0] = false;
            let k = tree.leaf_ordinal_of(n);
            self.leaf_free[k] -= 1;
            self.leaf_busy[k] += 1;
            if nature.is_comm() {
                self.leaf_comm[k] += 1;
            }
        }
        self.free_total -= nodes.len();
        let mut sorted = nodes.to_vec();
        sorted.sort_unstable();
        self.allocs.insert(
            job,
            Allocation {
                nodes: sorted,
                nature,
            },
        );
        Ok(())
    }

    /// Release the allocation held by `job`, returning it.
    pub fn release(&mut self, tree: &Tree, job: JobId) -> Result<Allocation, StateError> {
        let alloc = self
            .allocs
            .remove(&job)
            .ok_or(StateError::UnknownJob(job))?;
        for &n in &alloc.nodes {
            debug_assert!(!self.node_free[n.0]);
            self.node_free[n.0] = true;
            let k = tree.leaf_ordinal_of(n);
            self.leaf_free[k] += 1;
            self.leaf_busy[k] -= 1;
            if alloc.nature.is_comm() {
                self.leaf_comm[k] -= 1;
            }
        }
        self.free_total += alloc.nodes.len();
        Ok(alloc)
    }

    /// Debug invariant check: counters agree with the per-node bits.
    ///
    /// Used by tests and `debug_assert!`s in the engine; O(nodes).
    pub fn check_invariants(&self, tree: &Tree) -> Result<(), String> {
        let mut free = vec![0u32; tree.num_leaves()];
        for (i, &f) in self.node_free.iter().enumerate() {
            if f {
                free[tree.leaf_ordinal_of(NodeId(i))] += 1;
            }
        }
        for k in 0..tree.num_leaves() {
            if free[k] != self.leaf_free[k] {
                return Err(format!(
                    "leaf {k}: counted {} free, recorded {}",
                    free[k], self.leaf_free[k]
                ));
            }
            if self.leaf_free[k] + self.leaf_busy[k] != tree.leaf_size(k) as u32 {
                return Err(format!("leaf {k}: free + busy != size"));
            }
            if self.leaf_comm[k] > self.leaf_busy[k] {
                return Err(format!("leaf {k}: comm > busy"));
            }
        }
        let total: usize = self.node_free.iter().filter(|f| **f).count();
        if total != self.free_total {
            return Err(format!(
                "free_total {} != counted {}",
                self.free_total, total
            ));
        }
        let held: usize = self.allocs.values().map(|a| a.nodes.len()).sum();
        if held != self.busy_total() {
            return Err(format!(
                "allocations hold {held} nodes but {} are busy",
                self.busy_total()
            ));
        }
        Ok(())
    }
}
