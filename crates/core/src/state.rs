//! Cluster occupancy state: which nodes are busy, and the per-leaf counters
//! (`L_nodes`, `L_busy`, `L_comm`) that drive the paper's Eqs. 1–3.

use commsched_topology::{NodeId, SwitchId, Tree};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Globally unique version tokens: every mutation of any [`ClusterState`]
/// instance gets a fresh one, so caches keyed on a version can never
/// confuse two different occupancies — not across mutations of one state,
/// and not across distinct instances (or clones that later diverge).
fn next_version() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Scheduler-wide job identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// The paper's binary job classification (§4): supplied by the user or
/// deduced from MPI profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobNature {
    /// Dominated by MPI communication; benefits from contention avoidance.
    CommIntensive,
    /// Dominated by computation; insensitive to placement.
    ComputeIntensive,
}

impl JobNature {
    /// True for [`JobNature::CommIntensive`].
    #[inline]
    pub fn is_comm(self) -> bool {
        matches!(self, JobNature::CommIntensive)
    }
}

/// A recorded allocation: the nodes a job occupies and its nature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Nodes held by the job, sorted.
    pub nodes: Vec<NodeId>,
    /// Job classification at allocation time.
    pub nature: JobNature,
}

/// Errors from state mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// Tried to allocate a node that is already busy.
    NodeBusy(NodeId),
    /// Tried to allocate under a job id that already holds nodes.
    JobExists(JobId),
    /// Tried to release a job with no recorded allocation.
    UnknownJob(JobId),
    /// Empty allocation.
    EmptyAllocation(JobId),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NodeBusy(n) => write!(f, "{n} is already allocated"),
            Self::JobExists(j) => write!(f, "{j} already holds an allocation"),
            Self::UnknownJob(j) => write!(f, "{j} has no allocation"),
            Self::EmptyAllocation(j) => write!(f, "refusing empty allocation for {j}"),
        }
    }
}

impl std::error::Error for StateError {}

/// Mutable occupancy state over an immutable [`Tree`].
///
/// Keeps per-node free/busy bits, the three per-leaf counters the paper's
/// formulas read, and an incremental per-switch free counter so
/// [`ClusterState::subtree_free`] — the inner loop of switch selection —
/// is an O(1) lookup instead of a per-leaf scan. What-if evaluation goes
/// through [`ClusterState::scratch_alloc`] rather than cloning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterState {
    /// Per-node: is the node free?
    node_free: Vec<bool>,
    /// Per-leaf-ordinal: free node count.
    leaf_free: Vec<u32>,
    /// Per-leaf-ordinal: busy node count (the paper's `L_busy`).
    leaf_busy: Vec<u32>,
    /// Per-leaf-ordinal: nodes running communication-intensive jobs
    /// (the paper's `L_comm`).
    leaf_comm: Vec<u32>,
    /// Per-switch: free nodes in the whole subtree, maintained on every
    /// allocate/release by walking the touched leaves' ancestor chains.
    switch_free: Vec<u32>,
    free_total: usize,
    allocs: HashMap<JobId, Allocation>,
    /// Cache-invalidation token (see [`ClusterState::version`]). Not part
    /// of the state's identity: excluded from `PartialEq`.
    #[serde(skip)]
    version: u64,
}

/// Occupancy equality ignores the `version` token: two states with the same
/// node bits, counters and allocations are equal even if they got there
/// through different mutation histories.
impl PartialEq for ClusterState {
    fn eq(&self, other: &Self) -> bool {
        self.node_free == other.node_free
            && self.leaf_free == other.leaf_free
            && self.leaf_busy == other.leaf_busy
            && self.leaf_comm == other.leaf_comm
            && self.switch_free == other.switch_free
            && self.free_total == other.free_total
            && self.allocs == other.allocs
    }
}

impl ClusterState {
    /// A fully-free cluster over `tree`.
    pub fn new(tree: &Tree) -> Self {
        let leaves = tree.num_leaves();
        let mut leaf_free = vec![0u32; leaves];
        for (k, lf) in leaf_free.iter_mut().enumerate() {
            *lf = tree.leaf_size(k) as u32;
        }
        let switch_free = tree
            .switches()
            .iter()
            .map(|s| s.subtree_nodes as u32)
            .collect();
        ClusterState {
            node_free: vec![true; tree.num_nodes()],
            leaf_free,
            leaf_busy: vec![0; leaves],
            leaf_comm: vec![0; leaves],
            switch_free,
            free_total: tree.num_nodes(),
            allocs: HashMap::new(),
            version: next_version(),
        }
    }

    /// Opaque memoization token: changes on every mutation (including
    /// scratch apply/revert) and is globally unique, so a cache tagged with
    /// a version may be reused exactly when the tag still matches. A clone
    /// shares its source's version until either side mutates — correct,
    /// because their occupancies are identical at that version.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total free nodes in the cluster.
    #[inline]
    pub fn free_total(&self) -> usize {
        self.free_total
    }

    /// Total busy nodes in the cluster.
    #[inline]
    pub fn busy_total(&self) -> usize {
        self.node_free.len() - self.free_total
    }

    /// Is this node free?
    #[inline]
    pub fn is_free(&self, n: NodeId) -> bool {
        self.node_free[n.0]
    }

    /// Free nodes on leaf ordinal `k` (the complement of `L_busy`).
    #[inline]
    pub fn leaf_free(&self, k: usize) -> u32 {
        self.leaf_free[k]
    }

    /// The paper's `L_busy` for leaf ordinal `k`.
    #[inline]
    pub fn leaf_busy(&self, k: usize) -> u32 {
        self.leaf_busy[k]
    }

    /// The paper's `L_comm` for leaf ordinal `k`.
    #[inline]
    pub fn leaf_comm(&self, k: usize) -> u32 {
        self.leaf_comm[k]
    }

    /// Number of jobs currently holding allocations.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.allocs.len()
    }

    /// The allocation held by `job`, if any.
    pub fn allocation(&self, job: JobId) -> Option<&Allocation> {
        self.allocs.get(&job)
    }

    /// Iterate over all current allocations.
    pub fn allocations(&self) -> impl Iterator<Item = (JobId, &Allocation)> {
        self.allocs.iter().map(|(j, a)| (*j, a))
    }

    /// Eq. 1 — the *communication ratio* of leaf ordinal `k`:
    /// `L_comm / L_busy + L_busy / L_nodes`.
    ///
    /// An idle leaf (`L_busy == 0`) has ratio 0: no contention, everything
    /// free — the most attractive leaf for a communication-intensive job.
    pub fn communication_ratio(&self, tree: &Tree, k: usize) -> f64 {
        let busy = f64::from(self.leaf_busy[k]);
        let nodes = tree.leaf_size(k) as f64;
        if self.leaf_busy[k] == 0 {
            0.0
        } else {
            f64::from(self.leaf_comm[k]) / busy + busy / nodes
        }
    }

    /// Free nodes in the subtree of `s` — O(1), read from the incremental
    /// per-switch counter.
    #[inline]
    pub fn subtree_free(&self, tree: &Tree, s: SwitchId) -> usize {
        let _ = tree; // counters are maintained against the same tree
        self.switch_free[s.0] as usize
    }

    /// Reference implementation of [`ClusterState::subtree_free`]: recount
    /// the per-leaf free counters under `s`. Kept for invariant checks and
    /// the fast-vs-naive benchmarks; O(leaves under `s`).
    pub fn subtree_free_naive(&self, tree: &Tree, s: SwitchId) -> usize {
        tree.leaf_ordinals_under(s)
            .iter()
            .map(|&k| self.leaf_free[k] as usize)
            .sum()
    }

    /// The first `want` free nodes on leaf ordinal `k`, lowest node id first
    /// (SLURM's bitmap order).
    pub fn free_nodes_on_leaf(&self, tree: &Tree, k: usize, want: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(want);
        for &n in tree.leaf_nodes(k) {
            if out.len() == want {
                break;
            }
            if self.node_free[n.0] {
                out.push(n);
            }
        }
        out
    }

    /// Flip one free node to busy across every counter (node bit, leaf
    /// counters, the ancestor chain of switch counters, the total).
    #[inline]
    fn occupy(&mut self, tree: &Tree, n: NodeId, comm: bool) {
        debug_assert!(self.node_free[n.0]);
        self.node_free[n.0] = false;
        let k = tree.leaf_ordinal_of(n);
        self.leaf_free[k] -= 1;
        self.leaf_busy[k] += 1;
        if comm {
            self.leaf_comm[k] += 1;
        }
        let mut s = Some(tree.leaf_of(n));
        while let Some(id) = s {
            self.switch_free[id.0] -= 1;
            s = tree.switch(id).parent;
        }
        self.free_total -= 1;
    }

    /// Inverse of [`ClusterState::occupy`].
    #[inline]
    fn vacate(&mut self, tree: &Tree, n: NodeId, comm: bool) {
        debug_assert!(!self.node_free[n.0]);
        self.node_free[n.0] = true;
        let k = tree.leaf_ordinal_of(n);
        self.leaf_free[k] += 1;
        self.leaf_busy[k] -= 1;
        if comm {
            self.leaf_comm[k] -= 1;
        }
        let mut s = Some(tree.leaf_of(n));
        while let Some(id) = s {
            self.switch_free[id.0] += 1;
            s = tree.switch(id).parent;
        }
        self.free_total += 1;
    }

    /// Record an allocation: mark `nodes` busy under `job` with `nature`.
    pub fn allocate(
        &mut self,
        tree: &Tree,
        job: JobId,
        nodes: &[NodeId],
        nature: JobNature,
    ) -> Result<(), StateError> {
        if nodes.is_empty() {
            return Err(StateError::EmptyAllocation(job));
        }
        if self.allocs.contains_key(&job) {
            return Err(StateError::JobExists(job));
        }
        for &n in nodes {
            if !self.node_free[n.0] {
                return Err(StateError::NodeBusy(n));
            }
        }
        for &n in nodes {
            self.occupy(tree, n, nature.is_comm());
        }
        let mut sorted = nodes.to_vec();
        sorted.sort_unstable();
        self.allocs.insert(
            job,
            Allocation {
                nodes: sorted,
                nature,
            },
        );
        self.version = next_version();
        Ok(())
    }

    /// Release the allocation held by `job`, returning it.
    pub fn release(&mut self, tree: &Tree, job: JobId) -> Result<Allocation, StateError> {
        let alloc = self
            .allocs
            .remove(&job)
            .ok_or(StateError::UnknownJob(job))?;
        for &n in &alloc.nodes {
            self.vacate(tree, n, alloc.nature.is_comm());
        }
        self.version = next_version();
        Ok(alloc)
    }

    /// Apply a *hypothetical* allocation's counters in place, returning an
    /// RAII guard that reverts them on drop — the cheap replacement for
    /// cloning the whole state before a what-if cost evaluation.
    ///
    /// The guard updates every occupancy counter (node bits, leaf counters,
    /// switch counters, the free total) exactly as [`ClusterState::allocate`]
    /// would, but records nothing in the job table; consequently
    /// [`ClusterState::check_invariants`], which reconciles counters against
    /// held allocations, only holds again once the guard drops. All `nodes`
    /// must currently be free.
    pub fn scratch_alloc<'s, 't>(
        &'s mut self,
        tree: &'t Tree,
        nodes: &[NodeId],
        nature: JobNature,
    ) -> ScratchAlloc<'s, 't> {
        let comm = nature.is_comm();
        for &n in nodes {
            assert!(self.node_free[n.0], "scratch allocation over busy {n}");
            self.occupy(tree, n, comm);
        }
        self.version = next_version();
        ScratchAlloc {
            state: self,
            tree,
            nodes: nodes.to_vec(),
            comm,
        }
    }

    /// Debug invariant check: counters agree with the per-node bits.
    ///
    /// Used by tests and `debug_assert!`s in the engine; O(nodes).
    pub fn check_invariants(&self, tree: &Tree) -> Result<(), String> {
        let mut free = vec![0u32; tree.num_leaves()];
        for (i, &f) in self.node_free.iter().enumerate() {
            if f {
                free[tree.leaf_ordinal_of(NodeId(i))] += 1;
            }
        }
        for (k, &counted) in free.iter().enumerate() {
            if counted != self.leaf_free[k] {
                return Err(format!(
                    "leaf {k}: counted {counted} free, recorded {}",
                    self.leaf_free[k]
                ));
            }
            if self.leaf_free[k] + self.leaf_busy[k] != tree.leaf_size(k) as u32 {
                return Err(format!("leaf {k}: free + busy != size"));
            }
            if self.leaf_comm[k] > self.leaf_busy[k] {
                return Err(format!("leaf {k}: comm > busy"));
            }
        }
        for id in 0..tree.num_switches() {
            let s = SwitchId(id);
            let naive = self.subtree_free_naive(tree, s);
            if self.switch_free[id] as usize != naive {
                return Err(format!(
                    "switch {id}: counter {} free, recounted {naive}",
                    self.switch_free[id]
                ));
            }
        }
        let total: usize = self.node_free.iter().filter(|f| **f).count();
        if total != self.free_total {
            return Err(format!(
                "free_total {} != counted {}",
                self.free_total, total
            ));
        }
        let held: usize = self.allocs.values().map(|a| a.nodes.len()).sum();
        if held != self.busy_total() {
            return Err(format!(
                "allocations hold {held} nodes but {} are busy",
                self.busy_total()
            ));
        }
        Ok(())
    }
}

/// RAII what-if guard from [`ClusterState::scratch_alloc`]: while alive, the
/// borrowed state's counters include a hypothetical allocation; dropping the
/// guard reverts every counter to its previous value (only the opaque
/// [`ClusterState::version`] token moves forward, so caches never mistake
/// the scratch occupancy for the restored one).
///
/// Dereferences to the underlying [`ClusterState`] for read access.
#[derive(Debug)]
pub struct ScratchAlloc<'s, 't> {
    state: &'s mut ClusterState,
    tree: &'t Tree,
    nodes: Vec<NodeId>,
    comm: bool,
}

impl std::ops::Deref for ScratchAlloc<'_, '_> {
    type Target = ClusterState;

    fn deref(&self) -> &ClusterState {
        self.state
    }
}

impl Drop for ScratchAlloc<'_, '_> {
    fn drop(&mut self) {
        for &n in &self.nodes {
            self.state.vacate(self.tree, n, self.comm);
        }
        self.state.version = next_version();
    }
}
