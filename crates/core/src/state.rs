//! Cluster occupancy state: which nodes are busy, and the per-leaf counters
//! (`L_nodes`, `L_busy`, `L_comm`) that drive the paper's Eqs. 1–3.

use crate::index::{ratio_key, FreeIndex};
use commsched_num::{f64_of_usize, u32_of_usize, usize_of_u32};
use commsched_topology::{NodeId, SwitchId, Tree};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Globally unique version tokens: every mutation of any [`ClusterState`]
/// instance gets a fresh one, so caches keyed on a version can never
/// confuse two different occupancies — not across mutations of one state,
/// and not across distinct instances (or clones that later diverge).
fn next_version() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Scheduler-wide job identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// The paper's binary job classification (§4): supplied by the user or
/// deduced from MPI profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobNature {
    /// Dominated by MPI communication; benefits from contention avoidance.
    CommIntensive,
    /// Dominated by computation; insensitive to placement.
    ComputeIntensive,
}

impl JobNature {
    /// True for [`JobNature::CommIntensive`].
    #[inline]
    pub fn is_comm(self) -> bool {
        matches!(self, JobNature::CommIntensive)
    }
}

/// A recorded allocation: the nodes a job occupies and its nature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Nodes held by the job, sorted.
    pub nodes: Vec<NodeId>,
    /// Job classification at allocation time.
    pub nature: JobNature,
}

/// Errors from state mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// Tried to allocate a node that is already busy.
    NodeBusy(NodeId),
    /// Tried to allocate under a job id that already holds nodes.
    JobExists(JobId),
    /// Tried to release a job with no recorded allocation.
    UnknownJob(JobId),
    /// Empty allocation.
    EmptyAllocation(JobId),
    /// Tried to allocate or drain a node that is down.
    NodeDown(NodeId),
    /// Tried to recover a node that is not down (or draining).
    NodeNotDown(NodeId),
    /// Tried to down a switch that is already down.
    SwitchDown(SwitchId),
    /// Tried to bring up a switch that is not down.
    SwitchNotDown(SwitchId),
    /// Tried to down a switch while a job still holds a descendant node —
    /// the caller must kill or release the job first.
    SwitchBusy {
        /// The switch being downed.
        switch: SwitchId,
        /// The first busy descendant node found.
        node: NodeId,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NodeBusy(n) => write!(f, "{n} is already allocated"),
            Self::JobExists(j) => write!(f, "{j} already holds an allocation"),
            Self::UnknownJob(j) => write!(f, "{j} has no allocation"),
            Self::EmptyAllocation(j) => write!(f, "refusing empty allocation for {j}"),
            Self::NodeDown(n) => write!(f, "{n} is down"),
            Self::NodeNotDown(n) => write!(f, "{n} is not down"),
            Self::SwitchDown(s) => write!(f, "{s} is already down"),
            Self::SwitchNotDown(s) => write!(f, "{s} is not down"),
            Self::SwitchBusy { switch, node } => {
                write!(f, "{switch} still has busy descendant {node}")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// Lifecycle of a node under the fault model: healthy, scheduled to go
/// down once its current job releases it, or failed.
///
/// Only `Up` nodes can ever be free; `Down` and `Draining` nodes are
/// excluded from every free counter the selectors read
/// ([`ClusterState::subtree_free`], [`ClusterState::leaf_free`],
/// [`ClusterState::free_total`]), so placement transparently avoids them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NodeHealth {
    /// Healthy; schedulable.
    #[default]
    Up,
    /// Busy with a job; will transition to `Down` when the job releases.
    Draining,
    /// Failed; invisible to selectors until recovered.
    Down,
}

/// Mutable occupancy state over an immutable [`Tree`].
///
/// Keeps per-node free/busy bits, the three per-leaf counters the paper's
/// formulas read, and an incremental per-switch free counter so
/// [`ClusterState::subtree_free`] — the inner loop of switch selection —
/// is an O(1) lookup instead of a per-leaf scan. What-if evaluation goes
/// through [`ClusterState::scratch_alloc`] rather than cloning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterState {
    /// Per-node: is the node free?
    node_free: Vec<bool>,
    /// Per-leaf-ordinal: free node count.
    leaf_free: Vec<u32>,
    /// Per-leaf-ordinal: busy node count (the paper's `L_busy`).
    leaf_busy: Vec<u32>,
    /// Per-leaf-ordinal: nodes running communication-intensive jobs
    /// (the paper's `L_comm`).
    leaf_comm: Vec<u32>,
    /// Per-switch: free nodes in the whole subtree, maintained on every
    /// allocate/release by walking the touched leaves' ancestor chains.
    switch_free: Vec<u32>,
    free_total: usize,
    /// Per-node lifecycle state (fault model).
    node_health: Vec<NodeHealth>,
    /// Per-leaf-ordinal: nodes that are down (neither free nor busy).
    leaf_down: Vec<u32>,
    /// Total down nodes (intrinsically failed *or* masked by a down
    /// switch; see `node_mask`).
    down_total: usize,
    /// Total draining nodes (busy, will go down on release).
    draining_total: usize,
    /// Per-switch: is the switch itself failed? A down switch transitively
    /// excludes every descendant node from the free counters.
    switch_down: Vec<bool>,
    /// Per-node: number of down *ancestor* switches masking this node.
    /// While positive the node is effectively down (counted in `leaf_down`
    /// and `down_total`) regardless of its intrinsic `node_health`, which
    /// is preserved so recoveries compose in either order.
    node_mask: Vec<u32>,
    /// Total switches currently down.
    switches_down_total: usize,
    /// Ordered so that iteration (serialization, invariant sweeps) is
    /// deterministic regardless of insertion history.
    allocs: BTreeMap<JobId, Allocation>,
    /// Cache-invalidation token (see [`ClusterState::version`]). Not part
    /// of the state's identity: excluded from `PartialEq`.
    #[serde(skip)]
    version: u64,
    /// Hierarchical free-count index over the counters above (see
    /// [`crate::index`]). Derived data: excluded from `PartialEq` and
    /// serialization like the version token.
    #[serde(skip)]
    index: FreeIndex,
}

/// Occupancy equality ignores the `version` token: two states with the same
/// node bits, counters and allocations are equal even if they got there
/// through different mutation histories.
impl PartialEq for ClusterState {
    fn eq(&self, other: &Self) -> bool {
        self.node_free == other.node_free
            && self.leaf_free == other.leaf_free
            && self.leaf_busy == other.leaf_busy
            && self.leaf_comm == other.leaf_comm
            && self.switch_free == other.switch_free
            && self.free_total == other.free_total
            && self.node_health == other.node_health
            && self.leaf_down == other.leaf_down
            && self.down_total == other.down_total
            && self.draining_total == other.draining_total
            && self.switch_down == other.switch_down
            && self.node_mask == other.node_mask
            && self.switches_down_total == other.switches_down_total
            && self.allocs == other.allocs
    }
}

impl ClusterState {
    /// A fully-free cluster over `tree`.
    pub fn new(tree: &Tree) -> Self {
        let leaves = tree.num_leaves();
        let mut leaf_free = vec![0u32; leaves];
        for (k, lf) in leaf_free.iter_mut().enumerate() {
            *lf = u32_of_usize(tree.leaf_size(k));
        }
        let switch_free = tree
            .switches()
            .iter()
            .map(|s| u32_of_usize(s.subtree_nodes))
            .collect();
        let mut state = ClusterState {
            node_free: vec![true; tree.num_nodes()],
            leaf_free,
            leaf_busy: vec![0; leaves],
            leaf_comm: vec![0; leaves],
            switch_free,
            free_total: tree.num_nodes(),
            node_health: vec![NodeHealth::Up; tree.num_nodes()],
            leaf_down: vec![0; leaves],
            down_total: 0,
            draining_total: 0,
            switch_down: vec![false; tree.num_switches()],
            node_mask: vec![0; tree.num_nodes()],
            switches_down_total: 0,
            allocs: BTreeMap::new(),
            version: next_version(),
            index: FreeIndex::default(),
        };
        state.reindex(tree);
        state
    }

    /// Restore this state to exactly what [`ClusterState::new`] would
    /// build for `tree`, reusing the existing buffers — the allocation-free
    /// path for sweep harnesses that run thousands of fresh states. The
    /// version token is refreshed (tokens are process-unique), so cached
    /// evaluations tagged with any previous life of this state can never
    /// match the recycled one.
    pub fn reset(&mut self, tree: &Tree) {
        let nodes = tree.num_nodes();
        let leaves = tree.num_leaves();
        self.node_free.clear();
        self.node_free.resize(nodes, true);
        self.leaf_free.clear();
        self.leaf_free
            .extend((0..leaves).map(|k| u32_of_usize(tree.leaf_size(k))));
        self.leaf_busy.clear();
        self.leaf_busy.resize(leaves, 0);
        self.leaf_comm.clear();
        self.leaf_comm.resize(leaves, 0);
        self.switch_free.clear();
        self.switch_free.extend(
            tree.switches()
                .iter()
                .map(|s| u32_of_usize(s.subtree_nodes)),
        );
        self.free_total = nodes;
        self.node_health.clear();
        self.node_health.resize(nodes, NodeHealth::Up);
        self.leaf_down.clear();
        self.leaf_down.resize(leaves, 0);
        self.down_total = 0;
        self.draining_total = 0;
        self.switch_down.clear();
        self.switch_down.resize(tree.num_switches(), false);
        self.node_mask.clear();
        self.node_mask.resize(nodes, 0);
        self.switches_down_total = 0;
        self.allocs.clear();
        self.version = next_version();
        self.reindex(tree);
    }

    /// Rebuild the free-count index from the counters (construction and
    /// reset; incremental maintenance covers everything else).
    fn reindex(&mut self, tree: &Tree) {
        let Self {
            index,
            leaf_free,
            leaf_busy,
            leaf_comm,
            switch_free,
            ..
        } = self;
        index.rebuild(tree, leaf_free, switch_free, |k| {
            ratio_value(leaf_busy[k], leaf_comm[k], f64_of_usize(tree.leaf_size(k)))
        });
    }

    /// Record leaf `k`'s current index keys before mutating its counters.
    #[inline]
    fn note_leaf_dirty(&mut self, tree: &Tree, k: usize) {
        let rkey = ratio_key(ratio_value(
            self.leaf_busy[k],
            self.leaf_comm[k],
            f64_of_usize(tree.leaf_size(k)),
        ));
        self.index
            .note_leaf(u32_of_usize(k), self.leaf_free[k], rkey);
    }

    /// Fold the pending counter mutations into the free-count index. Every
    /// public `&mut self` method ends with this, so `&self` readers always
    /// see a clean index.
    fn flush_index(&mut self, tree: &Tree) {
        if !self.index.is_dirty() {
            return;
        }
        let (switches, leaves) = self.index.take_dirty();
        for (id, old_free) in switches {
            let level = tree.switch(SwitchId(usize_of_u32(id))).level;
            self.index
                .apply_switch(level, id, old_free, self.switch_free[usize_of_u32(id)]);
        }
        for (ord, old) in leaves {
            let k = usize_of_u32(ord);
            let new_rkey = ratio_key(ratio_value(
                self.leaf_busy[k],
                self.leaf_comm[k],
                f64_of_usize(tree.leaf_size(k)),
            ));
            self.index
                .apply_leaf(tree, ord, old, (self.leaf_free[k], new_rkey));
        }
    }

    /// Read access to the free-count index for the selectors.
    #[inline]
    pub(crate) fn index(&self) -> &FreeIndex {
        &self.index
    }

    /// Opaque memoization token: changes on every mutation (including
    /// scratch apply/revert) and is globally unique, so a cache tagged with
    /// a version may be reused exactly when the tag still matches. A clone
    /// shares its source's version until either side mutates — correct,
    /// because their occupancies are identical at that version.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total free nodes in the cluster.
    #[inline]
    pub fn free_total(&self) -> usize {
        self.free_total
    }

    /// Total busy nodes in the cluster (held by jobs; excludes down nodes).
    #[inline]
    pub fn busy_total(&self) -> usize {
        self.node_free.len() - self.free_total - self.down_total
    }

    /// Total down nodes in the cluster.
    #[inline]
    pub fn down_total(&self) -> usize {
        self.down_total
    }

    /// Total draining nodes in the cluster (busy, will go down on release).
    #[inline]
    pub fn draining_total(&self) -> usize {
        self.draining_total
    }

    /// Is this node free?
    #[inline]
    pub fn is_free(&self, n: NodeId) -> bool {
        self.node_free[n.0]
    }

    /// Lifecycle state of node `n`.
    #[inline]
    pub fn health(&self, n: NodeId) -> NodeHealth {
        self.node_health[n.0]
    }

    /// Down nodes on leaf ordinal `k` (intrinsic failures plus nodes
    /// masked by a down ancestor switch).
    #[inline]
    pub fn leaf_down(&self, k: usize) -> u32 {
        self.leaf_down[k]
    }

    /// Is switch `s` itself down?
    #[inline]
    pub fn switch_is_down(&self, s: SwitchId) -> bool {
        self.switch_down[s.0]
    }

    /// Number of switches currently down.
    #[inline]
    pub fn switches_down_total(&self) -> usize {
        self.switches_down_total
    }

    /// Is node `n` masked out by at least one down ancestor switch?
    #[inline]
    pub fn is_masked(&self, n: NodeId) -> bool {
        self.node_mask[n.0] > 0
    }

    /// The node's *effective* lifecycle state: `Down` while any ancestor
    /// switch is down, otherwise its intrinsic [`ClusterState::health`].
    #[inline]
    pub fn effective_health(&self, n: NodeId) -> NodeHealth {
        if self.node_mask[n.0] > 0 {
            NodeHealth::Down
        } else {
            self.node_health[n.0]
        }
    }

    /// The job holding node `n`, if any. O(allocations); at most one job
    /// can hold a node, so the answer is unique and deterministic.
    pub fn job_on(&self, n: NodeId) -> Option<JobId> {
        self.allocs
            .iter()
            .find(|(_, a)| a.nodes.binary_search(&n).is_ok())
            .map(|(j, _)| *j)
    }

    /// Free nodes on leaf ordinal `k` (the complement of `L_busy`).
    #[inline]
    pub fn leaf_free(&self, k: usize) -> u32 {
        self.leaf_free[k]
    }

    /// The paper's `L_busy` for leaf ordinal `k`.
    #[inline]
    pub fn leaf_busy(&self, k: usize) -> u32 {
        self.leaf_busy[k]
    }

    /// The paper's `L_comm` for leaf ordinal `k`.
    #[inline]
    pub fn leaf_comm(&self, k: usize) -> u32 {
        self.leaf_comm[k]
    }

    /// Number of jobs currently holding allocations.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.allocs.len()
    }

    /// The allocation held by `job`, if any.
    pub fn allocation(&self, job: JobId) -> Option<&Allocation> {
        self.allocs.get(&job)
    }

    /// Iterate over all current allocations.
    pub fn allocations(&self) -> impl Iterator<Item = (JobId, &Allocation)> {
        self.allocs.iter().map(|(j, a)| (*j, a))
    }

    /// Eq. 1 — the *communication ratio* of leaf ordinal `k`:
    /// `L_comm / L_busy + L_busy / L_nodes`.
    ///
    /// An idle leaf (`L_busy == 0`) has ratio 0: no contention, everything
    /// free — the most attractive leaf for a communication-intensive job.
    pub fn communication_ratio(&self, tree: &Tree, k: usize) -> f64 {
        ratio_value(
            self.leaf_busy[k],
            self.leaf_comm[k],
            f64_of_usize(tree.leaf_size(k)),
        )
    }

    /// Free nodes in the subtree of `s` — O(1), read from the incremental
    /// per-switch counter.
    #[inline]
    pub fn subtree_free(&self, tree: &Tree, s: SwitchId) -> usize {
        let _ = tree; // counters are maintained against the same tree
        usize_of_u32(self.switch_free[s.0])
    }

    /// Reference implementation of [`ClusterState::subtree_free`]: recount
    /// the per-leaf free counters under `s`. Kept for invariant checks and
    /// the fast-vs-naive benchmarks; O(leaves under `s`).
    pub fn subtree_free_naive(&self, tree: &Tree, s: SwitchId) -> usize {
        tree.leaf_ordinals_under(s)
            .iter()
            .map(|&k| usize_of_u32(self.leaf_free[k]))
            .sum()
    }

    /// The first `want` free nodes on leaf ordinal `k`, lowest node id first
    /// (SLURM's bitmap order).
    pub fn free_nodes_on_leaf(&self, tree: &Tree, k: usize, want: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(want);
        for &n in tree.leaf_nodes(k) {
            if out.len() == want {
                break;
            }
            if self.node_free[n.0] {
                out.push(n);
            }
        }
        out
    }

    /// Flip one free node to busy across every counter (node bit, leaf
    /// counters, the ancestor chain of switch counters, the total).
    #[inline]
    fn occupy(&mut self, tree: &Tree, n: NodeId, comm: bool) {
        debug_assert!(self.node_free[n.0]);
        self.node_free[n.0] = false;
        let k = tree.leaf_ordinal_of(n);
        self.note_leaf_dirty(tree, k);
        self.leaf_free[k] -= 1;
        self.leaf_busy[k] += 1;
        if comm {
            self.leaf_comm[k] += 1;
        }
        let mut s = Some(tree.leaf_of(n));
        while let Some(id) = s {
            self.index
                .note_switch(u32_of_usize(id.0), self.switch_free[id.0]);
            self.switch_free[id.0] -= 1;
            s = tree.switch(id).parent;
        }
        self.free_total -= 1;
    }

    /// Inverse of [`ClusterState::occupy`].
    #[inline]
    fn vacate(&mut self, tree: &Tree, n: NodeId, comm: bool) {
        debug_assert!(!self.node_free[n.0]);
        self.node_free[n.0] = true;
        let k = tree.leaf_ordinal_of(n);
        self.note_leaf_dirty(tree, k);
        self.leaf_free[k] += 1;
        self.leaf_busy[k] -= 1;
        if comm {
            self.leaf_comm[k] -= 1;
        }
        let mut s = Some(tree.leaf_of(n));
        while let Some(id) = s {
            self.index
                .note_switch(u32_of_usize(id.0), self.switch_free[id.0]);
            self.switch_free[id.0] += 1;
            s = tree.switch(id).parent;
        }
        self.free_total += 1;
    }

    /// Record an allocation: mark `nodes` busy under `job` with `nature`.
    pub fn allocate(
        &mut self,
        tree: &Tree,
        job: JobId,
        nodes: &[NodeId],
        nature: JobNature,
    ) -> Result<(), StateError> {
        if nodes.is_empty() {
            return Err(StateError::EmptyAllocation(job));
        }
        if self.allocs.contains_key(&job) {
            return Err(StateError::JobExists(job));
        }
        for &n in nodes {
            if !self.node_free[n.0] {
                let down = self.node_health[n.0] == NodeHealth::Down || self.node_mask[n.0] > 0;
                return Err(if down {
                    StateError::NodeDown(n)
                } else {
                    StateError::NodeBusy(n)
                });
            }
        }
        for &n in nodes {
            self.occupy(tree, n, nature.is_comm());
        }
        let mut sorted = nodes.to_vec();
        sorted.sort_unstable();
        self.allocs.insert(
            job,
            Allocation {
                nodes: sorted,
                nature,
            },
        );
        self.flush_index(tree);
        self.version = next_version();
        Ok(())
    }

    /// Release the allocation held by `job`, returning it.
    ///
    /// Nodes marked [`NodeHealth::Draining`] do not return to the free
    /// pool: they transition straight to [`NodeHealth::Down`].
    pub fn release(&mut self, tree: &Tree, job: JobId) -> Result<Allocation, StateError> {
        let alloc = self
            .allocs
            .remove(&job)
            .ok_or(StateError::UnknownJob(job))?;
        for &n in &alloc.nodes {
            if self.node_health[n.0] == NodeHealth::Draining {
                // Busy -> down: the node leaves the busy counters but never
                // re-enters the free ones, so switch_free/free_total are
                // untouched (it was not free before and is not free now).
                // The busy/comm change still moves the leaf's ratio key.
                let k = tree.leaf_ordinal_of(n);
                self.note_leaf_dirty(tree, k);
                self.leaf_busy[k] -= 1;
                if alloc.nature.is_comm() {
                    self.leaf_comm[k] -= 1;
                }
                self.leaf_down[k] += 1;
                self.node_health[n.0] = NodeHealth::Down;
                self.down_total += 1;
                self.draining_total -= 1;
            } else {
                self.vacate(tree, n, alloc.nature.is_comm());
            }
        }
        self.flush_index(tree);
        self.version = next_version();
        Ok(alloc)
    }

    /// Free -> down counter move: leaves every free counter exactly like
    /// occupy, but lands in `leaf_down` instead of `leaf_busy`. Touches
    /// neither `node_health` nor `node_mask`; callers record *why* the
    /// node left service.
    #[inline]
    fn free_to_down(&mut self, tree: &Tree, n: NodeId) {
        debug_assert!(self.node_free[n.0]);
        self.node_free[n.0] = false;
        let k = tree.leaf_ordinal_of(n);
        self.note_leaf_dirty(tree, k);
        self.leaf_free[k] -= 1;
        self.leaf_down[k] += 1;
        let mut s = Some(tree.leaf_of(n));
        while let Some(id) = s {
            self.index
                .note_switch(u32_of_usize(id.0), self.switch_free[id.0]);
            self.switch_free[id.0] -= 1;
            s = tree.switch(id).parent;
        }
        self.free_total -= 1;
        self.down_total += 1;
    }

    /// Inverse of [`ClusterState::free_to_down`].
    #[inline]
    fn down_to_free(&mut self, tree: &Tree, n: NodeId) {
        debug_assert!(!self.node_free[n.0]);
        self.node_free[n.0] = true;
        let k = tree.leaf_ordinal_of(n);
        self.note_leaf_dirty(tree, k);
        self.leaf_down[k] -= 1;
        self.leaf_free[k] += 1;
        let mut s = Some(tree.leaf_of(n));
        while let Some(id) = s {
            self.index
                .note_switch(u32_of_usize(id.0), self.switch_free[id.0]);
            self.switch_free[id.0] += 1;
            s = tree.switch(id).parent;
        }
        self.free_total += 1;
        self.down_total -= 1;
    }

    /// Take a *free* node out of service (fault-injection `Fail` on an idle
    /// node, or the second half of killing the job that held it).
    ///
    /// On a node masked by a down ancestor switch only the intrinsic
    /// health flips to `Down` (the counters already exclude it), so the
    /// node stays down when the switch later comes back up.
    ///
    /// Errors with [`StateError::NodeBusy`] if a job still holds the node —
    /// the caller must release (kill) the job first — and with
    /// [`StateError::NodeDown`] if the node is already down.
    pub fn set_down(&mut self, tree: &Tree, n: NodeId) -> Result<(), StateError> {
        match self.node_health[n.0] {
            NodeHealth::Down => return Err(StateError::NodeDown(n)),
            // A masked node is never busy or draining: record the
            // intrinsic failure without touching the counters.
            NodeHealth::Up if self.node_mask[n.0] > 0 => {
                self.node_health[n.0] = NodeHealth::Down;
                self.version = next_version();
                return Ok(());
            }
            NodeHealth::Up | NodeHealth::Draining if !self.node_free[n.0] => {
                return Err(StateError::NodeBusy(n));
            }
            _ => {}
        }
        self.free_to_down(tree, n);
        self.node_health[n.0] = NodeHealth::Down;
        self.flush_index(tree);
        self.version = next_version();
        Ok(())
    }

    /// Return a down node to service (fault-injection `Recover`), or cancel
    /// a pending drain on a still-busy `Draining` node.
    ///
    /// Errors with [`StateError::NodeNotDown`] if the node is already up.
    pub fn set_up(&mut self, tree: &Tree, n: NodeId) -> Result<(), StateError> {
        match self.node_health[n.0] {
            NodeHealth::Up => Err(StateError::NodeNotDown(n)),
            NodeHealth::Draining => {
                self.node_health[n.0] = NodeHealth::Up;
                self.draining_total -= 1;
                self.version = next_version();
                Ok(())
            }
            // Intrinsic recovery under a still-down switch: the node stays
            // effectively down (counters untouched) until the switch
            // returns to service.
            NodeHealth::Down if self.node_mask[n.0] > 0 => {
                self.node_health[n.0] = NodeHealth::Up;
                self.version = next_version();
                Ok(())
            }
            NodeHealth::Down => {
                self.down_to_free(tree, n);
                self.node_health[n.0] = NodeHealth::Up;
                self.flush_index(tree);
                self.version = next_version();
                Ok(())
            }
        }
    }

    /// Fail switch `s`: every descendant node leaves the free counters
    /// (correlated failure), exactly as if each free node had gone down,
    /// while keeping the nodes' intrinsic health so
    /// [`ClusterState::set_switch_up`] can restore exactly the survivors.
    /// Masking nests: a node under two down switches needs both back up.
    ///
    /// Errors with [`StateError::SwitchDown`] if `s` is already down and
    /// with [`StateError::SwitchBusy`] while any descendant node is still
    /// held by a job — the caller must kill or release those jobs first,
    /// mirroring the node-level [`ClusterState::set_down`] contract.
    pub fn set_switch_down(&mut self, tree: &Tree, s: SwitchId) -> Result<(), StateError> {
        if self.switch_down[s.0] {
            return Err(StateError::SwitchDown(s));
        }
        for &k in tree.leaf_ordinals_under(s) {
            for &n in tree.leaf_nodes(k) {
                let busy = !self.node_free[n.0]
                    && self.node_mask[n.0] == 0
                    && self.node_health[n.0] != NodeHealth::Down;
                if busy {
                    return Err(StateError::SwitchBusy { switch: s, node: n });
                }
            }
        }
        for &k in tree.leaf_ordinals_under(s) {
            for &n in tree.leaf_nodes(k) {
                self.node_mask[n.0] += 1;
                if self.node_mask[n.0] == 1 && self.node_health[n.0] == NodeHealth::Up {
                    // First mask over a healthy (therefore free) node.
                    self.free_to_down(tree, n);
                }
            }
        }
        self.switch_down[s.0] = true;
        self.switches_down_total += 1;
        self.flush_index(tree);
        self.version = next_version();
        Ok(())
    }

    /// Return switch `s` to service: descendant nodes whose *only* reason
    /// for being down was this switch (intrinsically `Up`, no other down
    /// ancestor) re-enter the free counters; nodes that failed on their
    /// own stay down until their own `Recover`.
    ///
    /// Errors with [`StateError::SwitchNotDown`] if `s` is not down.
    pub fn set_switch_up(&mut self, tree: &Tree, s: SwitchId) -> Result<(), StateError> {
        if !self.switch_down[s.0] {
            return Err(StateError::SwitchNotDown(s));
        }
        for &k in tree.leaf_ordinals_under(s) {
            for &n in tree.leaf_nodes(k) {
                self.node_mask[n.0] -= 1;
                if self.node_mask[n.0] == 0 && self.node_health[n.0] == NodeHealth::Up {
                    self.down_to_free(tree, n);
                }
            }
        }
        self.switch_down[s.0] = false;
        self.switches_down_total -= 1;
        self.flush_index(tree);
        self.version = next_version();
        Ok(())
    }

    /// Gracefully drain node `n`: a free node goes straight down (returns
    /// `true`); a busy node is marked [`NodeHealth::Draining`] and will go
    /// down when its job releases (returns `false`, also for a node already
    /// draining). Errors with [`StateError::NodeDown`] if already down.
    pub fn set_draining(&mut self, tree: &Tree, n: NodeId) -> Result<bool, StateError> {
        match self.node_health[n.0] {
            NodeHealth::Down => Err(StateError::NodeDown(n)),
            NodeHealth::Draining => Ok(false),
            // Effectively down already (masked, so idle): draining it is a
            // hard down — the node must not return at switch-up.
            NodeHealth::Up if self.node_mask[n.0] > 0 => {
                self.node_health[n.0] = NodeHealth::Down;
                self.version = next_version();
                Ok(true)
            }
            NodeHealth::Up if self.node_free[n.0] => {
                self.set_down(tree, n)?;
                Ok(true)
            }
            NodeHealth::Up => {
                self.node_health[n.0] = NodeHealth::Draining;
                self.draining_total += 1;
                self.version = next_version();
                Ok(false)
            }
        }
    }

    /// Apply a *hypothetical* allocation's counters in place, returning an
    /// RAII guard that reverts them on drop — the cheap replacement for
    /// cloning the whole state before a what-if cost evaluation.
    ///
    /// The guard updates every occupancy counter (node bits, leaf counters,
    /// switch counters, the free total) exactly as [`ClusterState::allocate`]
    /// would, but records nothing in the job table; consequently
    /// [`ClusterState::check_invariants`], which reconciles counters against
    /// held allocations, only holds again once the guard drops. All `nodes`
    /// must currently be free.
    pub fn scratch_alloc<'s, 't>(
        &'s mut self,
        tree: &'t Tree,
        nodes: &[NodeId],
        nature: JobNature,
    ) -> ScratchAlloc<'s, 't> {
        let comm = nature.is_comm();
        for &n in nodes {
            assert!(self.node_free[n.0], "scratch allocation over busy {n}");
            self.occupy(tree, n, comm);
        }
        self.flush_index(tree);
        self.version = next_version();
        ScratchAlloc {
            state: self,
            tree,
            nodes: nodes.to_vec(),
            comm,
        }
    }

    /// Debug invariant check: counters agree with the per-node bits.
    ///
    /// Used by tests and `debug_assert!`s in the engine; O(nodes).
    pub fn check_invariants(&self, tree: &Tree) -> Result<(), String> {
        let mut free = vec![0u32; tree.num_leaves()];
        for (i, &f) in self.node_free.iter().enumerate() {
            if f {
                free[tree.leaf_ordinal_of(NodeId(i))] += 1;
            }
        }
        for (k, &counted) in free.iter().enumerate() {
            if counted != self.leaf_free[k] {
                return Err(format!(
                    "leaf {k}: counted {counted} free, recorded {}",
                    self.leaf_free[k]
                ));
            }
            if self.leaf_free[k] + self.leaf_busy[k] + self.leaf_down[k]
                != u32_of_usize(tree.leaf_size(k))
            {
                return Err(format!("leaf {k}: free + busy + down != size"));
            }
            if self.leaf_comm[k] > self.leaf_busy[k] {
                return Err(format!("leaf {k}: comm > busy"));
            }
        }
        // Recount the per-node switch masks from the per-switch down bits,
        // then recount the down counters against *effective* health: a node
        // is down when it failed intrinsically or any ancestor switch did.
        let mut mask = vec![0u32; self.node_mask.len()];
        let mut switches_down = 0usize;
        for (id, &sd) in self.switch_down.iter().enumerate() {
            if !sd {
                continue;
            }
            switches_down += 1;
            for &k in tree.leaf_ordinals_under(SwitchId(id)) {
                for &n in tree.leaf_nodes(k) {
                    mask[n.0] += 1;
                }
            }
        }
        if mask != self.node_mask {
            return Err("node_mask disagrees with a recount from switch_down".into());
        }
        if switches_down != self.switches_down_total {
            return Err(format!(
                "switches_down_total {} != counted {switches_down}",
                self.switches_down_total
            ));
        }
        let mut down = vec![0u32; tree.num_leaves()];
        let mut down_count = 0usize;
        let mut draining_count = 0usize;
        for (i, &h) in self.node_health.iter().enumerate() {
            let masked = mask[i] > 0;
            if masked {
                if self.node_free[i] {
                    return Err(format!("node {i}: masked by a down switch but marked free"));
                }
                if h == NodeHealth::Draining {
                    return Err(format!("node {i}: masked by a down switch but draining"));
                }
            }
            if masked || h == NodeHealth::Down {
                if self.node_free[i] {
                    return Err(format!("node {i}: down but marked free"));
                }
                down[tree.leaf_ordinal_of(NodeId(i))] += 1;
                down_count += 1;
            } else if h == NodeHealth::Draining {
                if self.node_free[i] {
                    return Err(format!("node {i}: draining but marked free"));
                }
                draining_count += 1;
            }
        }
        for (k, &counted) in down.iter().enumerate() {
            if counted != self.leaf_down[k] {
                return Err(format!(
                    "leaf {k}: counted {counted} down, recorded {}",
                    self.leaf_down[k]
                ));
            }
        }
        if down_count != self.down_total {
            return Err(format!(
                "down_total {} != counted {down_count}",
                self.down_total
            ));
        }
        if draining_count != self.draining_total {
            return Err(format!(
                "draining_total {} != counted {draining_count}",
                self.draining_total
            ));
        }
        for id in 0..tree.num_switches() {
            let s = SwitchId(id);
            let naive = self.subtree_free_naive(tree, s);
            if usize_of_u32(self.switch_free[id]) != naive {
                return Err(format!(
                    "switch {id}: counter {} free, recounted {naive}",
                    self.switch_free[id]
                ));
            }
            if self.switch_down[id] && self.switch_free[id] != 0 {
                return Err(format!(
                    "switch {id}: down but reports {} free descendants",
                    self.switch_free[id]
                ));
            }
        }
        let total: usize = self.node_free.iter().filter(|f| **f).count();
        if total != self.free_total {
            return Err(format!(
                "free_total {} != counted {}",
                self.free_total, total
            ));
        }
        let held: usize = self.allocs.values().map(|a| a.nodes.len()).sum();
        if held != self.busy_total() {
            return Err(format!(
                "allocations hold {held} nodes but {} are busy",
                self.busy_total()
            ));
        }
        if self.index.is_dirty() {
            return Err("free-count index has unflushed notes".into());
        }
        let mut expect = FreeIndex::default();
        expect.rebuild(tree, &self.leaf_free, &self.switch_free, |k| {
            self.communication_ratio(tree, k)
        });
        if expect != self.index {
            return Err("free-count index disagrees with a from-scratch rebuild".into());
        }
        Ok(())
    }
}

/// Eq. 1 evaluated from raw counters — shared by
/// [`ClusterState::communication_ratio`] and the index maintenance so the
/// stored ratio keys are bit-identical to the live computation.
#[inline]
fn ratio_value(busy: u32, comm: u32, nodes: f64) -> f64 {
    let busy_f = f64::from(busy);
    if busy == 0 {
        0.0
    } else {
        f64::from(comm) / busy_f + busy_f / nodes
    }
}

/// RAII what-if guard from [`ClusterState::scratch_alloc`]: while alive, the
/// borrowed state's counters include a hypothetical allocation; dropping the
/// guard reverts every counter to its previous value (only the opaque
/// [`ClusterState::version`] token moves forward, so caches never mistake
/// the scratch occupancy for the restored one).
///
/// Dereferences to the underlying [`ClusterState`] for read access.
#[derive(Debug)]
pub struct ScratchAlloc<'s, 't> {
    state: &'s mut ClusterState,
    tree: &'t Tree,
    nodes: Vec<NodeId>,
    comm: bool,
}

impl std::ops::Deref for ScratchAlloc<'_, '_> {
    type Target = ClusterState;

    fn deref(&self) -> &ClusterState {
        self.state
    }
}

impl Drop for ScratchAlloc<'_, '_> {
    fn drop(&mut self) {
        for &n in &self.nodes {
            self.state.vacate(self.tree, n, self.comm);
        }
        self.state.flush_index(self.tree);
        self.state.version = next_version();
    }
}
