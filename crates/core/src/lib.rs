//! Communication-aware node allocation — the paper's core contribution.
//!
//! This crate implements Section 4 of *"Communication-aware Job Scheduling
//! using SLURM"* (Mishra, Agrawal, Malakar — ICPP Workshops 2020):
//!
//! * [`ClusterState`] — per-leaf occupancy counters (`L_nodes`, `L_busy`,
//!   `L_comm`) over a [`commsched_topology::Tree`], and the *communication
//!   ratio* of Eq. 1;
//! * [`CostModel`] — the contention factor (Eqs. 2–3), effective hops
//!   (Eq. 5) and per-job communication cost (Eq. 6) evaluated over the
//!   step schedule of the job's dominant collective;
//! * four [`NodeSelector`]s:
//!   [`DefaultTreeSelector`] (SLURM `topology/tree` best-fit — the paper's
//!   baseline), [`GreedySelector`] (Algorithm 1), [`BalancedSelector`]
//!   (Algorithm 2) and [`AdaptiveSelector`] (§4.3).
//!
//! # Example: the paper's Table 2
//!
//! A communication-intensive job asks for 512 nodes; the leaves under the
//! chosen switch have 160, 150, 100, 80, 70, 50 and 40 free nodes. Balanced
//! allocation splits the request into powers of two per leaf:
//!
//! ```
//! use commsched_core::{AllocRequest, BalancedSelector, ClusterState,
//!                      JobId, JobNature, NodeSelector};
//! use commsched_topology::Tree;
//!
//! let tree = Tree::irregular_two_level(&[160, 150, 100, 80, 70, 50, 40]);
//! let state = ClusterState::new(&tree);
//! let req = AllocRequest::comm(JobId(1), 512);
//! let nodes = BalancedSelector.select(&tree, &state, &req).unwrap();
//!
//! let mut per_leaf = vec![0usize; tree.num_leaves()];
//! for n in &nodes {
//!     per_leaf[tree.leaf_ordinal_of(*n)] += 1;
//! }
//! assert_eq!(per_leaf, [128, 128, 64, 64, 64, 32, 32]); // Table 2
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
mod cost;
mod eval;
mod index;
pub mod mapping;
mod sa;
mod select;
pub mod select_scan;
mod state;

pub use cost::CostModel;
pub use eval::{EvalTotals, PlacementEvaluator};
pub use mapping::MappingStrategy;
pub use sa::{derive_seed, evals_per_sec, sa_search_with_stats, SaBudget, SaSelector, SaStats};
pub use select::{
    AdaptiveSelector, AllocRequest, BalancedSelector, DefaultTreeSelector, GreedySelector,
    NodeSelector, SelectError, SelectorKind,
};
pub use state::{Allocation, ClusterState, JobId, JobNature, NodeHealth, ScratchAlloc, StateError};

#[cfg(test)]
mod tests;
