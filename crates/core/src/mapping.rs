//! Process mapping after node allocation — the paper's §7 future work
//! ("Process mapping after node allocation can provide further
//! improvements").
//!
//! The engine's default is SLURM's **block** distribution: rank `r` runs on
//! the `r`-th allocated node in node-id order. That is already good when
//! the allocation is balanced, but an *unbalanced* allocation (say 3 + 5
//! nodes over two leaves) puts a rank-block boundary in the middle of a
//! leaf, so the small-distance steps of RD/RHVD — which carry the largest
//! payloads — cross switches.
//!
//! [`MappingStrategy::AlignedBlocks`] applies the paper's own Figure 4
//! subdivision to *rank blocks*: each leaf's slice of the allocation
//! receives the largest remaining power-of-two-aligned block of ranks that
//! fits it, so XOR partners at distance `< 2^a` stay inside a leaf holding
//! an aligned `2^a` block.
//!
//! Note that under Eq. 6's *max-per-step* metric a single crossing pair
//! costs a step as much as all pairs crossing, so alignment only pays when
//! it purges a step of crossings entirely — [`best_mapping`] evaluates the
//! candidates and returns the cheapest, which is therefore never worse
//! than the block default.

use crate::cost::CostModel;
use crate::state::ClusterState;
use commsched_collectives::CollectiveSpec;
use commsched_topology::{NodeId, Tree};

/// How ranks are laid out over an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingStrategy {
    /// SLURM block distribution: rank `r` on the `r`-th node in node-id
    /// order. The engine's (and the paper's) default.
    Block,
    /// Round-robin across leaf switches — a deliberately cache-hostile
    /// baseline: adjacent ranks land on different switches.
    RoundRobin,
    /// Power-of-two-aligned rank blocks per leaf (Figure 4 applied to the
    /// rank space). Never worse than [`MappingStrategy::Block`] for
    /// XOR-structured collectives on two-level trees.
    AlignedBlocks,
}

impl MappingStrategy {
    /// Every strategy, for sweeps.
    pub const ALL: [MappingStrategy; 3] = [
        MappingStrategy::Block,
        MappingStrategy::RoundRobin,
        MappingStrategy::AlignedBlocks,
    ];

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MappingStrategy::Block => "block",
            MappingStrategy::RoundRobin => "round-robin",
            MappingStrategy::AlignedBlocks => "aligned-blocks",
        }
    }
}

/// Compute the rank→node map for `nodes` under `strategy`.
///
/// The result is a permutation of `nodes`: entry `r` is rank `r`'s node.
pub fn map_ranks(tree: &Tree, nodes: &[NodeId], strategy: MappingStrategy) -> Vec<NodeId> {
    let mut sorted = nodes.to_vec();
    sorted.sort_unstable();
    match strategy {
        MappingStrategy::Block => sorted,
        MappingStrategy::RoundRobin => round_robin(tree, &sorted),
        MappingStrategy::AlignedBlocks => aligned_blocks(tree, &sorted),
    }
}

/// Eq. 6 cost of an allocation under a mapping strategy.
///
/// Like [`CostModel::job_cost`] but with an explicit rank layout instead of
/// the implicit block distribution.
pub fn mapped_cost(
    model: CostModel,
    tree: &Tree,
    state: &ClusterState,
    nodes: &[NodeId],
    spec: &CollectiveSpec,
    strategy: MappingStrategy,
) -> f64 {
    let ranked = map_ranks(tree, nodes, strategy);
    // `job_cost` re-sorts its input (block layout), so evaluate the steps
    // here against the explicit layout.
    let leaf_of_rank: Vec<usize> = ranked.iter().map(|n| tree.leaf_ordinal_of(*n)).collect();
    let mut cache = std::collections::HashMap::new();
    let mut total = 0.0;
    for step in spec.steps(ranked.len()) {
        let mut worst: f64 = 0.0;
        for &(ri, rj) in &step.pairs {
            let (a, b) = {
                let (a, b) = (leaf_of_rank[ri], leaf_of_rank[rj]);
                if a <= b {
                    (a, b)
                } else {
                    (b, a)
                }
            };
            let hops = *cache.entry((a, b)).or_insert_with(|| {
                let d = if a == b {
                    2.0
                } else {
                    f64::from(2 * tree.leaf_lca_level(a, b))
                };
                d * (1.0 + model.leaf_contention(tree, state, a, b))
            });
            if hops > worst {
                worst = hops;
            }
        }
        total += if model.hop_bytes {
            worst * step.msize as f64
        } else {
            worst
        };
    }
    total
}

/// Evaluate every strategy and return the cheapest layout with its cost.
///
/// Guaranteed no worse than [`MappingStrategy::Block`] (block is among the
/// candidates); ties break toward block, so the engine's default layout is
/// kept when mapping cannot help.
pub fn best_mapping(
    model: CostModel,
    tree: &Tree,
    state: &ClusterState,
    nodes: &[NodeId],
    spec: &CollectiveSpec,
) -> (MappingStrategy, Vec<NodeId>, f64) {
    let mut best = (
        MappingStrategy::Block,
        map_ranks(tree, nodes, MappingStrategy::Block),
        mapped_cost(model, tree, state, nodes, spec, MappingStrategy::Block),
    );
    for s in [MappingStrategy::AlignedBlocks, MappingStrategy::RoundRobin] {
        let cost = mapped_cost(model, tree, state, nodes, spec, s);
        if cost < best.2 {
            best = (s, map_ranks(tree, nodes, s), cost);
        }
    }
    best
}

/// Per-leaf groups of an allocation, in leaf-ordinal order.
fn leaf_groups(tree: &Tree, sorted: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    let mut last_leaf = usize::MAX;
    for &n in sorted {
        let k = tree.leaf_ordinal_of(n);
        if k != last_leaf {
            groups.push(Vec::new());
            last_leaf = k;
        }
        if let Some(group) = groups.last_mut() {
            group.push(n);
        }
    }
    groups
}

fn round_robin(tree: &Tree, sorted: &[NodeId]) -> Vec<NodeId> {
    let mut groups = leaf_groups(tree, sorted);
    let mut out = Vec::with_capacity(sorted.len());
    let mut g = 0;
    while out.len() < sorted.len() {
        if !groups[g].is_empty() {
            out.push(groups[g].remove(0));
        }
        g = (g + 1) % groups.len();
    }
    out
}

/// Figure 4 on the rank space: hand each leaf group the largest remaining
/// *aligned* power-of-two rank block that fits it; leftovers fill
/// whatever rank slots remain.
fn aligned_blocks(tree: &Tree, sorted: &[NodeId]) -> Vec<NodeId> {
    // The buddy invariants below guarantee `Some`; if they were ever
    // violated the plain block layout is a safe, deterministic fallback —
    // a worse mapping, never a crash.
    aligned_blocks_impl(tree, sorted).unwrap_or_else(|| sorted.to_vec())
}

fn aligned_blocks_impl(tree: &Tree, sorted: &[NodeId]) -> Option<Vec<NodeId>> {
    let n = sorted.len();
    let mut groups = leaf_groups(tree, sorted);
    // Largest groups claim blocks first.
    groups.sort_by_key(|g| std::cmp::Reverse(g.len()));

    let mut layout: Vec<Option<NodeId>> = vec![None; n];
    // Free aligned blocks, managed like a buddy allocator over [0, n).
    // Start from the aligned decomposition of [0, n).
    let mut free_blocks: Vec<(usize, usize)> = Vec::new(); // (start, len), len = pow2, start % len == 0
    {
        let mut start = 0usize;
        while start < n {
            let align = if start == 0 {
                usize::MAX
            } else {
                1 << start.trailing_zeros()
            };
            let mut len = (n - start).next_power_of_two();
            while len > n - start || len > align {
                len /= 2;
            }
            free_blocks.push((start, len));
            start += len;
        }
    }

    for group in &mut groups {
        let mut want = group.len();
        while want > 0 {
            // Largest power-of-two chunk of this group still unplaced.
            let mut chunk = want.next_power_of_two();
            if chunk > want {
                chunk /= 2;
            }
            // Find the smallest free block that fits the chunk, splitting
            // buddy-style; if none fits, halve the chunk.
            let candidate = free_blocks
                .iter()
                .enumerate()
                .filter(|(_, &(_, len))| len >= chunk)
                .min_by_key(|(_, &(_, len))| len)
                .map(|(i, _)| i);
            let Some(i) = candidate else {
                // No block of this size left anywhere: fall back to
                // single-slot placement for the rest of the group.
                chunk = 1;
                // Total free slots always equal unplaced ranks, so a
                // single-slot block must exist here.
                let j = free_blocks.iter().position(|&(_, len)| len >= 1)?;
                let (start, len) = free_blocks.swap_remove(j);
                layout[start] = Some(group.pop()?);
                if len > 1 {
                    // Return the tail as aligned sub-blocks.
                    push_aligned(&mut free_blocks, start + 1, len - 1);
                }
                want -= 1;
                continue;
            };
            let (mut start, mut len) = free_blocks.swap_remove(i);
            while len > chunk {
                len /= 2;
                free_blocks.push((start + len, len));
            }
            for slot in layout.iter_mut().skip(start).take(chunk) {
                *slot = Some(group.pop()?);
            }
            let _ = &mut start;
            want -= chunk;
        }
    }
    // `collect` over options doubles as the "every slot filled" check.
    layout.into_iter().collect()
}

/// Decompose `[start, start+len)` into maximal aligned power-of-two blocks.
fn push_aligned(free: &mut Vec<(usize, usize)>, mut start: usize, mut len: usize) {
    while len > 0 {
        let align = if start == 0 {
            usize::MAX
        } else {
            1 << start.trailing_zeros()
        };
        let mut block = len.next_power_of_two();
        while block > len || block > align {
            block /= 2;
        }
        free.push((start, block));
        start += block;
        len -= block;
    }
}
