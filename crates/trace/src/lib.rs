//! Deterministic, virtual-time structured event tracing.
//!
//! The simulators in this workspace are pure functions of their seeded
//! inputs; this crate makes their *internal decisions* observable without
//! giving up that purity. An [`Event`] is a virtual-time instant (`t_us`,
//! microseconds of simulated time) plus a sequence number and a typed
//! [`EventKind`] — job lifecycle transitions from the scheduling engine
//! (submit/eligible/place/start/finish/requeue/reject and node faults) and
//! flow-solver records from the network simulator (component solves, rate
//! recomputes, link saturation). Nothing in an event derives from wall
//! clocks, iteration order of unordered maps, or thread scheduling, so a
//! trace is a byte-identical artifact of the run it describes: the same
//! seed yields the same bytes at any thread count, which is what lets the
//! golden-trace conformance suite diff traces as test oracles.
//!
//! # Sinks
//!
//! Producers write through the [`Recorder`] trait:
//!
//! * [`NullRecorder`] — records nothing and masks every class, so an
//!   instrumented hot path costs a single integer test per event site.
//! * [`Capture`] — an in-memory `Vec<Event>`, for tests and for callers
//!   that post-process (e.g. Chrome export).
//! * [`JsonlRecorder`] — streams one JSON object per line to any
//!   `io::Write`, in a fixed key order (see [`Event::to_json_line`]).
//!
//! The [`Tracer`] wrapper caches the recorder's [`ClassMask`] and assigns
//! sequence numbers, so engines test `tracer.enabled(class)` before doing
//! any tracing-only work.
//!
//! # Chrome export
//!
//! [`chrome_trace`] renders a captured event list in the Chrome
//! `trace_event` JSON format: load the file in `about:tracing` or
//! <https://ui.perfetto.dev> to see per-job queued/run spans on a shared
//! virtual timeline.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod chrome;
mod event;
mod recorder;

pub use chrome::chrome_trace;
pub use event::{EndStatus, Event, EventClass, EventKind, FaultClass};
pub use recorder::{Capture, ClassMask, JsonlRecorder, NullRecorder, Recorder};

/// The producer-side handle: caches the sink's [`ClassMask`] and stamps
/// sequence numbers. With a [`NullRecorder`] (or [`Tracer::off`]) every
/// emit site reduces to one masked-bit test.
pub struct Tracer<'r> {
    rec: Option<&'r mut dyn Recorder>,
    mask: ClassMask,
    seq: u64,
}

impl<'r> Tracer<'r> {
    /// A tracer feeding `rec`, with the mask the recorder advertises.
    pub fn new(rec: &'r mut dyn Recorder) -> Self {
        let mask = rec.mask();
        Tracer {
            rec: Some(rec),
            mask,
            seq: 0,
        }
    }

    /// The disabled tracer: masks everything, records nothing.
    pub fn off() -> Tracer<'static> {
        Tracer {
            rec: None,
            mask: ClassMask::NONE,
            seq: 0,
        }
    }

    /// Is any sink listening for `class`? Guard tracing-only computation
    /// (e.g. link-saturation scans) behind this.
    #[inline]
    pub fn enabled(&self, class: EventClass) -> bool {
        self.mask.contains(class)
    }

    /// Number of events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Record `kind` at virtual time `t_us`, if its class is unmasked.
    /// Sequence numbers count only *recorded* events, so a filtered trace
    /// is still densely numbered.
    #[inline]
    pub fn emit(&mut self, t_us: u64, kind: EventKind) {
        if !self.mask.contains(kind.class()) {
            return;
        }
        if let Some(rec) = self.rec.as_deref_mut() {
            let ev = Event {
                t_us,
                seq: self.seq,
                kind,
            };
            self.seq += 1;
            rec.record(&ev);
        }
    }
}

#[cfg(test)]
mod tests;
