use crate::*;

fn sample_events() -> Vec<Event> {
    let mut cap = Capture::new();
    let mut tr = Tracer::new(&mut cap);
    tr.emit(0, EventKind::JobSubmit { job: 3, nodes: 4 });
    tr.emit(0, EventKind::JobEligible { job: 3, attempt: 0 });
    tr.emit(
        0,
        EventKind::JobPlace {
            job: 3,
            attempt: 0,
            nodes: 4,
            cost_actual: 12.0,
            cost_default: 12.5,
        },
    );
    tr.emit(
        0,
        EventKind::JobStart {
            job: 3,
            attempt: 0,
            nodes: 4,
            backfilled: false,
        },
    );
    tr.emit(
        5_000_000,
        EventKind::Fault {
            node: 1,
            kind: FaultClass::Fail,
        },
    );
    tr.emit(
        5_000_000,
        EventKind::JobRequeue {
            job: 3,
            attempt: 0,
            resubmit_us: 6_000_000,
        },
    );
    tr.emit(
        9_000_000,
        EventKind::JobFinish {
            job: 3,
            attempt: 1,
            status: EndStatus::Completed,
        },
    );
    cap.events
}

#[test]
fn json_lines_have_fixed_key_order() {
    let ev = Event {
        t_us: 7,
        seq: 2,
        kind: EventKind::JobPlace {
            job: 1,
            attempt: 0,
            nodes: 8,
            cost_actual: 3.25,
            cost_default: 4.0,
        },
    };
    assert_eq!(
        ev.to_json_line(),
        "{\"t_us\":7,\"seq\":2,\"ev\":\"place\",\"job\":1,\"attempt\":0,\"nodes\":8,\
         \"cost_actual\":3.25,\"cost_default\":4.0}"
    );
    // Integral floats keep the .0 (serde_json convention); non-finite
    // values degrade to null rather than producing invalid JSON.
    let ev = Event {
        t_us: 0,
        seq: 0,
        kind: EventKind::NetRates {
            flows: 2,
            min_rate: 125.0e6,
            max_rate: f64::INFINITY,
        },
    };
    assert_eq!(
        ev.to_json_line(),
        "{\"t_us\":0,\"seq\":0,\"ev\":\"net_rates\",\"flows\":2,\
         \"min_rate\":125000000.0,\"max_rate\":null}"
    );
}

#[test]
fn class_mask_parse_and_filtering() {
    assert_eq!(ClassMask::parse("").unwrap(), ClassMask::ALL);
    assert_eq!(ClassMask::parse("all").unwrap(), ClassMask::ALL);
    assert_eq!(ClassMask::parse("job").unwrap(), ClassMask::JOB);
    let jf = ClassMask::parse("job, fault").unwrap();
    assert!(jf.contains(EventClass::Job));
    assert!(jf.contains(EventClass::Fault));
    assert!(!jf.contains(EventClass::Net));
    assert!(ClassMask::parse("bogus").is_err());

    // A masked tracer records only matching classes, renumbering densely.
    let mut cap = Capture::with_mask(ClassMask::FAULT);
    let mut tr = Tracer::new(&mut cap);
    tr.emit(1, EventKind::JobSubmit { job: 1, nodes: 1 });
    tr.emit(
        2,
        EventKind::Fault {
            node: 0,
            kind: FaultClass::Drain,
        },
    );
    tr.emit(
        3,
        EventKind::NetLinks {
            active: 1,
            saturated: 0,
        },
    );
    assert_eq!(tr.emitted(), 1);
    assert_eq!(cap.events.len(), 1);
    assert_eq!(cap.events[0].seq, 0);
    assert_eq!(cap.events[0].t_us, 2);
}

#[test]
fn null_recorder_and_off_tracer_record_nothing() {
    let mut null = NullRecorder;
    let mut tr = Tracer::new(&mut null);
    assert!(!tr.enabled(EventClass::Job));
    tr.emit(0, EventKind::JobReject { job: 9 });
    assert_eq!(tr.emitted(), 0);

    let mut off = Tracer::off();
    assert!(!off.enabled(EventClass::Net));
    off.emit(
        0,
        EventKind::NetLinks {
            active: 0,
            saturated: 0,
        },
    );
    assert_eq!(off.emitted(), 0);
}

#[test]
fn capture_and_jsonl_sinks_agree_byte_for_byte() {
    let events = sample_events();

    // Replay the same emission sequence into a Jsonl sink.
    let mut buf: Vec<u8> = Vec::new();
    {
        let mut jsonl = JsonlRecorder::new(&mut buf);
        let mut tr = Tracer::new(&mut jsonl);
        for ev in &events {
            tr.emit(ev.t_us, ev.kind);
        }
        assert!(jsonl.take_error().is_none());
    }
    let mut cap = Capture::new();
    for ev in &events {
        cap.record(ev);
    }
    assert_eq!(String::from_utf8(buf).unwrap(), cap.to_jsonl());
}

#[test]
fn jsonl_recorder_surfaces_write_errors() {
    struct Failing;
    impl std::io::Write for Failing {
        fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let mut sink = JsonlRecorder::new(Failing);
    sink.record(&Event {
        t_us: 0,
        seq: 0,
        kind: EventKind::JobReject { job: 0 },
    });
    assert!(sink.take_error().is_some());
}

#[test]
fn chrome_export_balances_spans() {
    let events = sample_events();
    let doc = chrome_trace(&events);
    assert!(doc.starts_with("{\"traceEvents\":["));
    assert!(doc.trim_end().ends_with('}'));
    // queued B/E pair + run#0 B / requeue E; run#1 finish arrives with no
    // matching B (the second eligible/start was not emitted here), so no
    // stray E may appear for it.
    let begins = doc.matches("\"ph\":\"B\"").count();
    let ends = doc.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, ends);
    assert!(doc.contains("\"name\":\"queued\""));
    assert!(doc.contains("\"name\":\"run#0\""));
    assert!(doc.contains("fault:fail n1"));
}
