//! Event records and their canonical JSON-line encoding.

use std::fmt::Write as _;

/// Coarse event families, used for filtering (`--trace-filter`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Job lifecycle: submit, eligible, place, start, finish, requeue,
    /// reject.
    Job,
    /// Node lifecycle transitions from the fault trace.
    Fault,
    /// Network-simulator solver records.
    Net,
}

impl EventClass {
    pub(crate) fn bit(self) -> u8 {
        match self {
            EventClass::Job => 1,
            EventClass::Fault => 2,
            EventClass::Net => 4,
        }
    }
}

/// How a traced job attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndStatus {
    /// Ran to completion.
    Completed,
    /// Killed by a node failure and not requeued.
    Cancelled,
}

impl EndStatus {
    /// Stable label used in the JSON encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            EndStatus::Completed => "completed",
            EndStatus::Cancelled => "cancelled",
        }
    }
}

/// Node lifecycle transition kinds, mirroring the workload crate's fault
/// trace without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Hard failure: the node's job (if any) is killed.
    Fail,
    /// Return to service.
    Recover,
    /// Graceful removal once the current job finishes.
    Drain,
}

impl FaultClass {
    /// Stable label used in the JSON encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::Fail => "fail",
            FaultClass::Recover => "recover",
            FaultClass::Drain => "drain",
        }
    }
}

/// What happened. All payloads are `Copy` — no allocation per event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A job entered the system (first submission only, not requeue
    /// re-entries).
    JobSubmit {
        /// Job id.
        job: u64,
        /// Requested node count.
        nodes: u64,
    },
    /// A job (re-)entered the pending queue; `attempt` counts prior kills.
    JobEligible {
        /// Job id.
        job: u64,
        /// Attempt number (0 on first submission).
        attempt: u32,
    },
    /// The selector chose nodes for an attempt (Eq. 6 numbers included).
    JobPlace {
        /// Job id.
        job: u64,
        /// Attempt number.
        attempt: u32,
        /// Nodes allocated.
        nodes: u64,
        /// Eq. 6 cost of the chosen allocation.
        cost_actual: f64,
        /// Eq. 6 cost of the default selector's allocation.
        cost_default: f64,
    },
    /// The simulated-annealing selector finished a search for an attempt
    /// (emitted only under `--selector sa` with a non-zero budget).
    SaSearch {
        /// Job id.
        job: u64,
        /// Attempt number the search placed.
        attempt: u32,
        /// Configured evaluation budget (`max_evals`).
        budget: u64,
        /// Evaluator calls actually spent.
        evals: u64,
        /// Accepted proposals (including uphill Metropolis accepts).
        accepted: u64,
        /// Rejected proposals.
        rejected: u64,
        /// Cost of the greedy/balanced incumbent under the search model.
        cost_incumbent: f64,
        /// Cost of the returned placement (≤ `cost_incumbent`).
        cost_final: f64,
    },
    /// An attempt began executing.
    JobStart {
        /// Job id.
        job: u64,
        /// Attempt number.
        attempt: u32,
        /// Nodes held.
        nodes: u64,
        /// `true` when the job jumped the FIFO order via backfilling.
        backfilled: bool,
    },
    /// An attempt left the machine for good.
    JobFinish {
        /// Job id.
        job: u64,
        /// Attempt number.
        attempt: u32,
        /// Completed or cancelled.
        status: EndStatus,
    },
    /// A killed attempt will be resubmitted at `resubmit_us`.
    JobRequeue {
        /// Job id.
        job: u64,
        /// Attempt number that was killed.
        attempt: u32,
        /// Virtual microsecond of the re-submission.
        resubmit_us: u64,
    },
    /// The job can never run (oversized, or stuck when the event stream
    /// drained).
    JobReject {
        /// Job id.
        job: u64,
    },
    /// A fault-trace transition fired on a node.
    Fault {
        /// Node ordinal.
        node: u64,
        /// Transition kind.
        kind: FaultClass,
    },
    /// A fault-trace transition fired on a switch (correlated failure of
    /// its whole subtree, or the repair).
    SwitchFault {
        /// Switch id.
        switch: u64,
        /// `Fail` for a switch-down, `Recover` for a switch-up.
        kind: FaultClass,
        /// Jobs killed by the subtree-down (0 for a switch-up).
        victims: u64,
        /// Descendant nodes covered by the switch.
        nodes: u64,
    },
    /// A fault-trace transition fired on a directed link: its capacity
    /// dropped to `capacity_permille`/1000 of nominal (1000 = restored).
    LinkFault {
        /// Directed link id (canonical topology numbering).
        link: u64,
        /// New capacity in thousandths of nominal.
        capacity_permille: u64,
    },
    /// The flow solver re-waterfilled one or more components.
    NetSolve {
        /// Connected components re-solved at this event.
        components: u64,
        /// Flows whose rates were recomputed.
        flows: u64,
        /// Links whose active-flow set had changed since the last solve.
        dirty_links: u64,
    },
    /// Rate spread across active flows after a solve.
    NetRates {
        /// Active flows.
        flows: u64,
        /// Slowest active flow's rate, bytes/s.
        min_rate: f64,
        /// Fastest active flow's rate, bytes/s.
        max_rate: f64,
    },
    /// Link occupancy after a solve (computed only when tracing).
    NetLinks {
        /// Links carrying at least one active flow.
        active: u64,
        /// Links whose allocated rate sum reaches capacity.
        saturated: u64,
    },
}

impl EventKind {
    /// The event's class, for mask filtering.
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::JobSubmit { .. }
            | EventKind::JobEligible { .. }
            | EventKind::JobPlace { .. }
            | EventKind::SaSearch { .. }
            | EventKind::JobStart { .. }
            | EventKind::JobFinish { .. }
            | EventKind::JobRequeue { .. }
            | EventKind::JobReject { .. } => EventClass::Job,
            EventKind::Fault { .. }
            | EventKind::SwitchFault { .. }
            | EventKind::LinkFault { .. } => EventClass::Fault,
            EventKind::NetSolve { .. }
            | EventKind::NetRates { .. }
            | EventKind::NetLinks { .. } => EventClass::Net,
        }
    }

    /// The stable `"ev"` label of the JSON encoding.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::JobSubmit { .. } => "submit",
            EventKind::JobEligible { .. } => "eligible",
            EventKind::JobPlace { .. } => "place",
            EventKind::SaSearch { .. } => "sa_search",
            EventKind::JobStart { .. } => "start",
            EventKind::JobFinish { .. } => "finish",
            EventKind::JobRequeue { .. } => "requeue",
            EventKind::JobReject { .. } => "reject",
            EventKind::Fault { .. } => "fault",
            EventKind::SwitchFault { .. } => "switch_fault",
            EventKind::LinkFault { .. } => "link_fault",
            EventKind::NetSolve { .. } => "net_solve",
            EventKind::NetRates { .. } => "net_rates",
            EventKind::NetLinks { .. } => "net_links",
        }
    }
}

/// One trace record: a virtual-time instant, a per-trace sequence number,
/// and the typed payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual time in microseconds since the run origin. Never a wall
    /// clock.
    pub t_us: u64,
    /// Dense per-trace sequence number, assigned by the [`crate::Tracer`].
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Format a float exactly like the workspace's JSON `Number` display, so
/// JSONL traces and `serde_json`-rendered reports agree byte for byte:
/// integral finite values keep a `.0`, non-finite values become `null`.
fn fmt_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

impl Event {
    /// The canonical one-line JSON encoding (no trailing newline). Keys
    /// are emitted in a fixed order — `t_us`, `seq`, `ev`, then payload
    /// fields — so traces diff and compare byte-wise.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"t_us\":{},\"seq\":{},\"ev\":\"", self.t_us, self.seq);
        s.push_str(self.kind.name());
        s.push('"');
        match self.kind {
            EventKind::JobSubmit { job, nodes } => {
                let _ = write!(s, ",\"job\":{job},\"nodes\":{nodes}");
            }
            EventKind::JobEligible { job, attempt } => {
                let _ = write!(s, ",\"job\":{job},\"attempt\":{attempt}");
            }
            EventKind::JobPlace {
                job,
                attempt,
                nodes,
                cost_actual,
                cost_default,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{job},\"attempt\":{attempt},\"nodes\":{nodes},\"cost_actual\":"
                );
                fmt_f64(&mut s, cost_actual);
                s.push_str(",\"cost_default\":");
                fmt_f64(&mut s, cost_default);
            }
            EventKind::SaSearch {
                job,
                attempt,
                budget,
                evals,
                accepted,
                rejected,
                cost_incumbent,
                cost_final,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{job},\"attempt\":{attempt},\"budget\":{budget},\"evals\":{evals},\"accepted\":{accepted},\"rejected\":{rejected},\"cost_incumbent\":"
                );
                fmt_f64(&mut s, cost_incumbent);
                s.push_str(",\"cost_final\":");
                fmt_f64(&mut s, cost_final);
            }
            EventKind::JobStart {
                job,
                attempt,
                nodes,
                backfilled,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{job},\"attempt\":{attempt},\"nodes\":{nodes},\"backfilled\":{backfilled}"
                );
            }
            EventKind::JobFinish {
                job,
                attempt,
                status,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{job},\"attempt\":{attempt},\"status\":\"{}\"",
                    status.as_str()
                );
            }
            EventKind::JobRequeue {
                job,
                attempt,
                resubmit_us,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{job},\"attempt\":{attempt},\"resubmit_us\":{resubmit_us}"
                );
            }
            EventKind::JobReject { job } => {
                let _ = write!(s, ",\"job\":{job}");
            }
            EventKind::Fault { node, kind } => {
                let _ = write!(s, ",\"node\":{node},\"kind\":\"{}\"", kind.as_str());
            }
            EventKind::SwitchFault {
                switch,
                kind,
                victims,
                nodes,
            } => {
                let _ = write!(
                    s,
                    ",\"switch\":{switch},\"kind\":\"{}\",\"victims\":{victims},\"nodes\":{nodes}",
                    kind.as_str()
                );
            }
            EventKind::LinkFault {
                link,
                capacity_permille,
            } => {
                let _ = write!(
                    s,
                    ",\"link\":{link},\"capacity_permille\":{capacity_permille}"
                );
            }
            EventKind::NetSolve {
                components,
                flows,
                dirty_links,
            } => {
                let _ = write!(
                    s,
                    ",\"components\":{components},\"flows\":{flows},\"dirty_links\":{dirty_links}"
                );
            }
            EventKind::NetRates {
                flows,
                min_rate,
                max_rate,
            } => {
                let _ = write!(s, ",\"flows\":{flows},\"min_rate\":");
                fmt_f64(&mut s, min_rate);
                s.push_str(",\"max_rate\":");
                fmt_f64(&mut s, max_rate);
            }
            EventKind::NetLinks { active, saturated } => {
                let _ = write!(s, ",\"active\":{active},\"saturated\":{saturated}");
            }
        }
        s.push('}');
        s
    }
}
