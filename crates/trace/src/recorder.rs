//! Recorder sinks and the event-class mask.

use crate::event::{Event, EventClass};
use std::io;

/// A set of [`EventClass`]es a sink wants to receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassMask(u8);

impl ClassMask {
    /// No classes — the zero-cost default.
    pub const NONE: ClassMask = ClassMask(0);
    /// Every class.
    pub const ALL: ClassMask = ClassMask(1 | 2 | 4);
    /// Job lifecycle events only.
    pub const JOB: ClassMask = ClassMask(1);
    /// Fault events only.
    pub const FAULT: ClassMask = ClassMask(2);
    /// Network-solver events only.
    pub const NET: ClassMask = ClassMask(4);

    /// Does the mask include `class`?
    #[inline]
    pub fn contains(self, class: EventClass) -> bool {
        self.0 & class.bit() != 0
    }

    /// Union of two masks.
    pub fn union(self, other: ClassMask) -> ClassMask {
        ClassMask(self.0 | other.0)
    }

    /// Parse a `--trace-filter` spec: comma-separated class names out of
    /// `job`, `fault`, `net`, or `all`. Empty input means `all`.
    pub fn parse(spec: &str) -> Result<ClassMask, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(ClassMask::ALL);
        }
        let mut mask = ClassMask::NONE;
        for part in spec.split(',') {
            mask = mask.union(match part.trim() {
                "job" | "jobs" => ClassMask::JOB,
                "fault" | "faults" => ClassMask::FAULT,
                "net" => ClassMask::NET,
                "all" => ClassMask::ALL,
                other => {
                    return Err(format!(
                        "unknown trace class {other:?} (job | fault | net | all)"
                    ))
                }
            });
        }
        Ok(mask)
    }
}

/// An event sink. [`crate::Tracer`] reads [`Recorder::mask`] once at
/// construction and filters before calling [`Recorder::record`], so a
/// sink only ever sees classes it asked for.
pub trait Recorder {
    /// Which event classes this sink wants. Defaults to all.
    fn mask(&self) -> ClassMask {
        ClassMask::ALL
    }

    /// Consume one event.
    fn record(&mut self, ev: &Event);
}

/// The zero-cost sink: masks everything, records nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn mask(&self) -> ClassMask {
        ClassMask::NONE
    }

    fn record(&mut self, _ev: &Event) {}
}

/// In-memory sink: keeps every event for post-processing.
#[derive(Debug, Default, Clone)]
pub struct Capture {
    mask: ClassMask,
    /// The recorded events, in emission order.
    pub events: Vec<Event>,
}

impl Capture {
    /// Capture all classes.
    pub fn new() -> Self {
        Capture {
            mask: ClassMask::ALL,
            events: Vec::new(),
        }
    }

    /// Capture only the classes in `mask`.
    pub fn with_mask(mask: ClassMask) -> Self {
        Capture {
            mask,
            events: Vec::new(),
        }
    }

    /// The canonical JSONL rendering of the captured events: one
    /// [`Event::to_json_line`] per line, each newline-terminated — byte
    /// identical to what a [`JsonlRecorder`] would have written.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl Default for ClassMask {
    fn default() -> Self {
        ClassMask::ALL
    }
}

impl Recorder for Capture {
    fn mask(&self) -> ClassMask {
        self.mask
    }

    fn record(&mut self, ev: &Event) {
        self.events.push(*ev);
    }
}

/// Streaming sink: writes one JSON line per event to any `io::Write`.
///
/// `record` cannot return an error, so the first write failure is stored
/// and every later event is dropped; callers check [`JsonlRecorder::take_error`]
/// when the run finishes.
pub struct JsonlRecorder<W: io::Write> {
    mask: ClassMask,
    w: W,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlRecorder<W> {
    /// Stream all classes to `w`.
    pub fn new(w: W) -> Self {
        JsonlRecorder {
            mask: ClassMask::ALL,
            w,
            error: None,
        }
    }

    /// Stream only the classes in `mask` to `w`.
    pub fn with_mask(w: W, mask: ClassMask) -> Self {
        JsonlRecorder {
            mask,
            w,
            error: None,
        }
    }

    /// The first write error, if any occurred.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flush and return the underlying writer (and any pending error).
    pub fn into_inner(mut self) -> (W, Option<io::Error>) {
        if self.error.is_none() {
            if let Err(e) = self.w.flush() {
                self.error = Some(e);
            }
        }
        (self.w, self.error)
    }
}

impl<W: io::Write> Recorder for JsonlRecorder<W> {
    fn mask(&self) -> ClassMask {
        self.mask
    }

    fn record(&mut self, ev: &Event) {
        if self.error.is_some() {
            return;
        }
        let mut line = ev.to_json_line();
        line.push('\n');
        if let Err(e) = self.w.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }
}
