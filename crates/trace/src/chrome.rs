//! Chrome `trace_event` export: render a captured event list so it opens
//! directly in `about:tracing` or <https://ui.perfetto.dev>.
//!
//! Mapping: each job is a thread (`tid` = job id + 1) in one process
//! (`pid` 1). A job's wait in the queue is a `queued` span (begun at
//! `eligible`, ended at `start`) and each execution attempt is a
//! `run#<attempt>` span (ended by `finish` or `requeue`). Faults are
//! instant events on the reserved `tid` 0, and network-solver records
//! become counter tracks. Timestamps are virtual microseconds, which is
//! exactly the unit the format expects.

use crate::event::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Open {
    Queued,
    Running,
}

fn push_record(out: &mut String, first: &mut bool, body: &str) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
    out.push_str("    ");
    out.push_str(body);
}

/// Render `events` (in emission order) as a Chrome `trace_event` JSON
/// document. Spans left open by a truncated or filtered trace are simply
/// not closed — the viewers tolerate that.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    // Open span per job, so filtered traces never emit unbalanced "E"s.
    let mut open: BTreeMap<u64, Open> = BTreeMap::new();

    for ev in events {
        let ts = ev.t_us;
        match ev.kind {
            EventKind::JobSubmit { job, nodes } => {
                let tid = job + 1;
                push_record(&mut out, &mut first, &format!(
                    "{{\"name\":\"submit\",\"cat\":\"job\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"nodes\":{nodes}}}}}"
                ));
            }
            EventKind::JobEligible { job, attempt } => {
                let tid = job + 1;
                push_record(&mut out, &mut first, &format!(
                    "{{\"name\":\"queued\",\"cat\":\"job\",\"ph\":\"B\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"attempt\":{attempt}}}}}"
                ));
                open.insert(job, Open::Queued);
            }
            EventKind::JobStart {
                job,
                attempt,
                nodes,
                backfilled,
            } => {
                let tid = job + 1;
                if open.remove(&job) == Some(Open::Queued) {
                    push_record(&mut out, &mut first, &format!(
                        "{{\"name\":\"queued\",\"cat\":\"job\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}"
                    ));
                }
                push_record(&mut out, &mut first, &format!(
                    "{{\"name\":\"run#{attempt}\",\"cat\":\"job\",\"ph\":\"B\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"nodes\":{nodes},\"backfilled\":{backfilled}}}}}"
                ));
                open.insert(job, Open::Running);
            }
            EventKind::JobFinish {
                job,
                attempt,
                status,
            } => {
                let tid = job + 1;
                if open.remove(&job) == Some(Open::Running) {
                    push_record(&mut out, &mut first, &format!(
                        "{{\"name\":\"run#{attempt}\",\"cat\":\"job\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"status\":\"{}\"}}}}",
                        status.as_str()
                    ));
                }
            }
            EventKind::JobRequeue { job, attempt, .. } => {
                let tid = job + 1;
                if open.remove(&job) == Some(Open::Running) {
                    push_record(&mut out, &mut first, &format!(
                        "{{\"name\":\"run#{attempt}\",\"cat\":\"job\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"status\":\"requeued\"}}}}"
                    ));
                }
            }
            EventKind::JobReject { job } => {
                let tid = job + 1;
                open.remove(&job);
                push_record(&mut out, &mut first, &format!(
                    "{{\"name\":\"reject\",\"cat\":\"job\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}"
                ));
            }
            EventKind::JobPlace { .. } => {
                // Placement detail lives in the JSONL trace; the start span
                // that follows carries the visual information.
            }
            EventKind::SaSearch { .. } => {
                // Annealing-search detail lives in the JSONL trace; the
                // place record it precedes carries the chosen cost.
            }
            EventKind::Fault { node, kind } => {
                push_record(&mut out, &mut first, &format!(
                    "{{\"name\":\"fault:{} n{node}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{ts},\"pid\":1,\"tid\":0}}",
                    kind.as_str()
                ));
            }
            EventKind::SwitchFault {
                switch,
                kind,
                victims,
                nodes,
            } => {
                push_record(&mut out, &mut first, &format!(
                    "{{\"name\":\"switch_fault:{} s{switch}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{ts},\"pid\":1,\"tid\":0,\"args\":{{\"victims\":{victims},\"nodes\":{nodes}}}}}",
                    kind.as_str()
                ));
            }
            EventKind::LinkFault {
                link,
                capacity_permille,
            } => {
                push_record(&mut out, &mut first, &format!(
                    "{{\"name\":\"link_fault l{link}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{ts},\"pid\":1,\"tid\":0,\"args\":{{\"capacity_permille\":{capacity_permille}}}}}"
                ));
            }
            EventKind::NetSolve { flows, .. } => {
                push_record(&mut out, &mut first, &format!(
                    "{{\"name\":\"net flows re-rated\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"args\":{{\"flows\":{flows}}}}}"
                ));
            }
            EventKind::NetRates { flows, .. } => {
                push_record(&mut out, &mut first, &format!(
                    "{{\"name\":\"net active flows\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"args\":{{\"flows\":{flows}}}}}"
                ));
            }
            EventKind::NetLinks { active, saturated } => {
                push_record(&mut out, &mut first, &format!(
                    "{{\"name\":\"net links\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"args\":{{\"active\":{active},\"saturated\":{saturated}}}}}"
                ));
            }
        }
    }

    let mut tail = String::new();
    let _ = write!(
        tail,
        "\n  ],\n  \"displayTimeUnit\":\"ms\",\n  \"otherData\":{{\"events\":{}}}\n}}\n",
        events.len()
    );
    out.push_str(&tail);
    out
}
