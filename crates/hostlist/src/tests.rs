use super::*;

#[test]
fn plain_name() {
    assert_eq!(expand("login1").unwrap(), ["login1"]);
}

#[test]
fn simple_range() {
    assert_eq!(expand("n[0-3]").unwrap(), ["n0", "n1", "n2", "n3"]);
}

#[test]
fn single_value_bracket() {
    assert_eq!(expand("n[7]").unwrap(), ["n7"]);
}

#[test]
fn mixed_entries() {
    assert_eq!(
        expand("n[0-2,5,9-10]").unwrap(),
        ["n0", "n1", "n2", "n5", "n9", "n10"]
    );
}

#[test]
fn zero_padding_preserved() {
    assert_eq!(expand("n[08-11]").unwrap(), ["n08", "n09", "n10", "n11"]);
}

#[test]
fn suffix_after_bracket() {
    assert_eq!(expand("r[0-1]-ib").unwrap(), ["r0-ib", "r1-ib"]);
}

#[test]
fn multi_bracket_cross_product() {
    assert_eq!(
        expand("r[0-1]c[0-2]").unwrap(),
        ["r0c0", "r0c1", "r0c2", "r1c0", "r1c1", "r1c2"]
    );
    // Three groups, with padding in the middle one.
    assert_eq!(
        expand("a[0-1]b[01-02]c[5]").unwrap(),
        ["a0b01c5", "a0b02c5", "a1b01c5", "a1b02c5"]
    );
}

#[test]
fn multi_bracket_errors_propagate() {
    assert!(matches!(
        expand("r[0-1]c[5-2]").unwrap_err(),
        HostlistError::DescendingRange(_)
    ));
    assert!(matches!(
        expand("r[0-1]c]").unwrap_err(),
        HostlistError::UnbalancedBracket(_)
    ));
}

#[test]
fn top_level_concatenation() {
    assert_eq!(expand("a[0-1],b3,c[2]").unwrap(), ["a0", "a1", "b3", "c2"]);
}

#[test]
fn whitespace_tolerated() {
    assert_eq!(expand("  n[0-1] , m2 ").unwrap(), ["n0", "n1", "m2"]);
}

#[test]
fn error_unbalanced_open() {
    assert!(matches!(
        expand("n[0-3").unwrap_err(),
        HostlistError::UnbalancedBracket(_)
    ));
}

#[test]
fn error_unbalanced_close() {
    assert!(matches!(
        expand("n0-3]").unwrap_err(),
        HostlistError::UnbalancedBracket(_)
    ));
}

#[test]
fn error_descending() {
    assert!(matches!(
        expand("n[5-2]").unwrap_err(),
        HostlistError::DescendingRange(_)
    ));
}

#[test]
fn error_bad_entry() {
    assert!(matches!(
        expand("n[a-b]").unwrap_err(),
        HostlistError::BadRange(_)
    ));
}

#[test]
fn error_empty() {
    assert!(matches!(expand("").unwrap_err(), HostlistError::Empty));
    assert!(matches!(expand("a,,b").unwrap_err(), HostlistError::Empty));
}

#[test]
fn error_empty_bracket() {
    assert!(matches!(
        expand("n[]").unwrap_err(),
        HostlistError::BadRange(_)
    ));
}

#[test]
fn error_too_large() {
    assert!(matches!(
        expand("n[0-99999999]").unwrap_err(),
        HostlistError::TooLarge { .. }
    ));
}

#[test]
fn compress_merges_runs() {
    assert_eq!(compress(&["n0", "n1", "n2", "n5"]), "n[0-2,5]");
}

#[test]
fn compress_single_host_no_bracket() {
    assert_eq!(compress(&["n3"]), "n3");
}

#[test]
fn compress_sorts_and_dedups() {
    assert_eq!(compress(&["n5", "n1", "n5", "n0", "n2"]), "n[0-2,5]");
}

#[test]
fn compress_multiple_prefixes() {
    assert_eq!(compress(&["b0", "a0", "a1", "b1"]), "a[0-1],b[0-1]");
}

#[test]
fn compress_respects_padding_groups() {
    // n01 (width 2) and n1 (no padding) are distinct groups, like SLURM.
    assert_eq!(compress(&["n01", "n1"]), "n1,n01");
    assert_eq!(compress(&["n01", "n02", "n1"]), "n1,n[01-02]");
}

#[test]
fn compress_plain_names() {
    assert_eq!(compress(&["login", "admin"]), "admin,login");
}

#[test]
fn round_trip_paper_example() {
    // The topology.conf example from the paper (Section 5.2).
    let hosts = expand("n[0-3]").unwrap();
    assert_eq!(compress(&hosts), "n[0-3]");
    let hosts = expand("n[4-7]").unwrap();
    assert_eq!(compress(&hosts), "n[4-7]");
    let sw = expand("s[0-1]").unwrap();
    assert_eq!(sw, ["s0", "s1"]);
}

#[test]
fn expand_into_appends() {
    let mut buf = vec!["x0".to_string()];
    expand_into("y[0-1]", &mut buf).unwrap();
    assert_eq!(buf, ["x0", "y0", "y1"]);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn host_strategy() -> impl Strategy<Value = String> {
        // prefix of lowercase letters + a number 0..5000
        ("[a-z]{1,6}", 0u64..5000).prop_map(|(p, v)| format!("{p}{v}"))
    }

    proptest! {
        /// compress(expand(e)) == e is not guaranteed for arbitrary e (order,
        /// duplicates), but expand(compress(hosts)) must equal sorted-deduped
        /// hosts for numeric-suffixed names.
        #[test]
        fn compress_expand_round_trip(hosts in proptest::collection::vec(host_strategy(), 1..64)) {
            let expr = compress(&hosts);
            let expanded = expand(&expr).unwrap();
            let mut want: Vec<String> = hosts.clone();
            want.sort_by(|a, b| {
                // same group ordering as compress: (prefix, suffix, width), then value
                let (pa, va, _, _) = parse_host_for_test(a);
                let (pb, vb, _, _) = parse_host_for_test(b);
                (pa, va).cmp(&(pb, vb))
            });
            want.dedup();
            let mut got = expanded;
            got.sort_by(|a, b| {
                let (pa, va, _, _) = parse_host_for_test(a);
                let (pb, vb, _, _) = parse_host_for_test(b);
                (pa, va).cmp(&(pb, vb))
            });
            prop_assert_eq!(got, want);
        }

        /// Expansion count of a pure range equals hi-lo+1.
        #[test]
        fn range_count(lo in 0u64..2000, len in 0u64..200) {
            let hi = lo + len;
            let hosts = expand(&format!("n[{lo}-{hi}]")).unwrap();
            prop_assert_eq!(hosts.len() as u64, len + 1);
        }

        /// Compress output always re-expands without error.
        #[test]
        fn compress_always_valid(hosts in proptest::collection::vec(host_strategy(), 0..64)) {
            if hosts.is_empty() {
                prop_assert_eq!(compress(&hosts), "");
            } else {
                let expr = compress(&hosts);
                prop_assert!(expand(&expr).is_ok());
            }
        }
    }
}

/// Test-only re-export of the host splitter so property tests can sort the
/// way `compress` groups.
pub(crate) fn parse_host_for_test(h: &str) -> (String, u64, usize, String) {
    let bytes = h.as_bytes();
    let mut end = bytes.len();
    while end > 0 && !bytes[end - 1].is_ascii_digit() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && bytes[start - 1].is_ascii_digit() {
        start -= 1;
    }
    let v = h[start..end].parse().unwrap_or(0);
    (h[..start].to_string(), v, 0, h[end..].to_string())
}
