//! SLURM hostlist expressions.
//!
//! SLURM configuration files (notably `topology.conf`) name sets of hosts and
//! switches with compact *hostlist expressions* such as `n[0-3,5,8-9]` or
//! `rack[01-04]sw[0-1]`. This crate implements the subset of the syntax that
//! SLURM's own `hostlist_create`/`hostlist_ranged_string` support for
//! bracketed names:
//!
//! * plain names: `login1`
//! * bracketed numeric range groups with comma-separated entries:
//!   `n[0-3,7,9-12]`
//! * multiple groups expand as a cross product: `r[0-1]c[0-2]`
//! * zero padding, preserved on expansion: `n[001-010]`
//! * comma-separated concatenation of the above: `n[0-3],gpu[0-1],login1`
//!
//! The inverse operation, [`compress`], produces a canonical minimal
//! expression (sorted, padded runs merged) and round-trips with [`expand`].
//!
//! # Examples
//!
//! ```
//! use commsched_hostlist::{expand, compress};
//!
//! let hosts = expand("n[0-2,5]").unwrap();
//! assert_eq!(hosts, ["n0", "n1", "n2", "n5"]);
//! assert_eq!(compress(&hosts), "n[0-2,5]");
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
mod parse;

pub use parse::{compress, expand, expand_into, HostlistError};

#[cfg(test)]
mod tests;
