//! Hostlist expression parser and canonical compressor.

use std::fmt;

/// Error produced when a hostlist expression is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostlistError {
    /// A `[` without a matching `]`, or vice versa.
    UnbalancedBracket(String),
    /// A range entry that is not a number or `lo-hi` pair.
    BadRange(String),
    /// A descending range such as `9-3`.
    DescendingRange(String),
    /// Empty expression or empty list entry.
    Empty,
    /// Expansion would exceed the safety cap.
    TooLarge { expr: String, cap: usize },
}

impl fmt::Display for HostlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnbalancedBracket(e) => write!(f, "unbalanced brackets in {e:?}"),
            Self::BadRange(e) => write!(f, "malformed range entry {e:?}"),
            Self::DescendingRange(e) => write!(f, "descending range {e:?}"),
            Self::Empty => write!(f, "empty hostlist expression"),
            Self::TooLarge { expr, cap } => {
                write!(f, "hostlist {expr:?} expands past the cap of {cap} hosts")
            }
        }
    }
}

impl std::error::Error for HostlistError {}

/// Safety cap on expansion size; larger than any real cluster so it only
/// trips on typos like `n[0-999999999]`.
const EXPANSION_CAP: usize = 4 << 20;

/// Expand a hostlist expression into explicit host names.
///
/// Order follows the expression left to right; duplicates are preserved
/// (SLURM behaves the same way and de-duplicates at a higher layer).
pub fn expand(expr: &str) -> Result<Vec<String>, HostlistError> {
    let mut out = Vec::new();
    expand_into(expr, &mut out)?;
    Ok(out)
}

/// Expand a hostlist expression, appending into an existing buffer.
///
/// This is the allocation-friendly variant of [`expand`] for hot paths that
/// parse many expressions (for example a `topology.conf` with hundreds of
/// switch lines).
pub fn expand_into(expr: &str, out: &mut Vec<String>) -> Result<(), HostlistError> {
    let expr = expr.trim();
    if expr.is_empty() {
        return Err(HostlistError::Empty);
    }
    for term in split_top_level(expr)? {
        expand_term(term, out)?;
        if out.len() > EXPANSION_CAP {
            return Err(HostlistError::TooLarge {
                expr: expr.to_string(),
                cap: EXPANSION_CAP,
            });
        }
    }
    Ok(())
}

/// Split on commas that are *outside* brackets: `a[0-1],b2` -> `["a[0-1]", "b2"]`.
fn split_top_level(expr: &str) -> Result<Vec<&str>, HostlistError> {
    let mut terms = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in expr.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| HostlistError::UnbalancedBracket(expr.to_string()))?;
            }
            ',' if depth == 0 => {
                terms.push(&expr[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(HostlistError::UnbalancedBracket(expr.to_string()));
    }
    terms.push(&expr[start..]);
    Ok(terms)
}

fn expand_term(term: &str, out: &mut Vec<String>) -> Result<(), HostlistError> {
    let term = term.trim();
    if term.is_empty() {
        return Err(HostlistError::Empty);
    }
    let Some(open) = term.find('[') else {
        // Plain host name.
        if term.contains(']') {
            return Err(HostlistError::UnbalancedBracket(term.to_string()));
        }
        out.push(term.to_string());
        return Ok(());
    };
    // Split at the FIRST bracket group; any remaining groups in the suffix
    // are expanded recursively, so `r[0-1]c[0-2]` yields the cross product
    // like SLURM's hostlist does.
    let close = term[open..]
        .find(']')
        .map(|i| open + i)
        .ok_or_else(|| HostlistError::UnbalancedBracket(term.to_string()))?;
    let prefix = &term[..open];
    let body = &term[open + 1..close];
    let suffix = &term[close + 1..];
    if body.is_empty() {
        return Err(HostlistError::BadRange(term.to_string()));
    }
    let suffix_has_more = suffix.contains('[');
    if !suffix_has_more && suffix.contains(']') {
        return Err(HostlistError::UnbalancedBracket(term.to_string()));
    }
    for entry in body.split(',') {
        let entry = entry.trim();
        let (lo_s, hi_s) = match entry.split_once('-') {
            Some((l, h)) => (l, h),
            None => (entry, entry),
        };
        let lo: u64 = lo_s
            .parse()
            .map_err(|_| HostlistError::BadRange(entry.to_string()))?;
        let hi: u64 = hi_s
            .parse()
            .map_err(|_| HostlistError::BadRange(entry.to_string()))?;
        if hi < lo {
            return Err(HostlistError::DescendingRange(entry.to_string()));
        }
        // SLURM preserves the zero padding of the *low* endpoint.
        let width = if lo_s.starts_with('0') && lo_s.len() > 1 {
            lo_s.len()
        } else {
            0
        };
        if (hi - lo) as usize >= EXPANSION_CAP {
            return Err(HostlistError::TooLarge {
                expr: term.to_string(),
                cap: EXPANSION_CAP,
            });
        }
        for v in lo..=hi {
            if suffix_has_more {
                expand_term(&format!("{prefix}{v:0width$}{suffix}"), out)?;
            } else {
                out.push(format!("{prefix}{v:0width$}{suffix}"));
            }
            if out.len() > EXPANSION_CAP {
                return Err(HostlistError::TooLarge {
                    expr: term.to_string(),
                    cap: EXPANSION_CAP,
                });
            }
        }
    }
    Ok(())
}

/// A host split into `(prefix, numeric value, pad width, suffix)` for grouping.
fn split_host(host: &str) -> Option<(&str, u64, usize, &str)> {
    // Find the last run of ASCII digits; that is the index SLURM compresses.
    let bytes = host.as_bytes();
    let mut end = bytes.len();
    while end > 0 && !bytes[end - 1].is_ascii_digit() {
        end -= 1;
    }
    if end == 0 {
        return None;
    }
    let mut start = end;
    while start > 0 && bytes[start - 1].is_ascii_digit() {
        start -= 1;
    }
    let digits = &host[start..end];
    let value: u64 = digits.parse().ok()?;
    let width = if digits.starts_with('0') && digits.len() > 1 {
        digits.len()
    } else {
        0
    };
    Some((&host[..start], value, width, &host[end..]))
}

/// Compress explicit host names into a canonical hostlist expression.
///
/// Hosts that share a `(prefix, suffix, pad-width)` are grouped into one
/// bracket with sorted, de-duplicated, merged ranges. Groups are emitted in
/// sorted order of prefix, so the output is a canonical form: any two host
/// sets are equal iff their compressed strings are equal.
pub fn compress<S: AsRef<str>>(hosts: &[S]) -> String {
    use std::collections::BTreeMap;

    // (prefix, suffix, width) -> sorted values; non-numeric hosts verbatim.
    let mut groups: BTreeMap<(String, String, usize), Vec<u64>> = BTreeMap::new();
    let mut plain: Vec<String> = Vec::new();
    for h in hosts {
        let h = h.as_ref();
        match split_host(h) {
            Some((p, v, w, s)) => groups
                .entry((p.to_string(), s.to_string(), w))
                .or_default()
                .push(v),
            None => plain.push(h.to_string()),
        }
    }
    plain.sort();
    plain.dedup();

    let mut parts: Vec<String> = plain;
    for ((prefix, suffix, width), mut vals) in groups {
        vals.sort_unstable();
        vals.dedup();
        if vals.len() == 1 {
            parts.push(format!("{prefix}{:0w$}{suffix}", vals[0], w = width));
            continue;
        }
        let mut ranges: Vec<String> = Vec::new();
        let mut i = 0;
        while i < vals.len() {
            let mut j = i;
            while j + 1 < vals.len() && vals[j + 1] == vals[j] + 1 {
                j += 1;
            }
            if i == j {
                ranges.push(format!("{:0w$}", vals[i], w = width));
            } else {
                ranges.push(format!("{:0w$}-{:0w$}", vals[i], vals[j], w = width));
            }
            i = j + 1;
        }
        parts.push(format!("{prefix}[{}]{suffix}", ranges.join(",")));
    }
    parts.join(",")
}
