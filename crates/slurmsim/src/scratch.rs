//! Per-thread scratch arenas for sweep workloads.
//!
//! A continuous run allocates a full [`ClusterState`] — node, leaf and
//! switch vectors sized to the machine — and a sweep runs thousands of
//! them. Each thread keeps a small cache of retired states and leases
//! one out per run, [`ClusterState::reset`] back to exactly the
//! freshly-constructed state, so steady-state sweep iterations stop
//! re-allocating their world.
//!
//! Determinism is untouched: a reset state is value-identical to
//! `ClusterState::new`, and version tokens are process-unique, so an
//! evaluator memo tagged with a state's previous life can never match
//! its recycled one. Which thread ran which cell therefore cannot leak
//! into any output byte.

use commsched_core::ClusterState;
use commsched_topology::Tree;
use std::cell::RefCell;

/// Retired states kept per thread; beyond this, drop instead of caching
/// (bounds memory when many differently-sized topologies interleave).
const MAX_CACHED: usize = 4;

thread_local! {
    static CACHE: RefCell<Vec<ClusterState>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a cluster state freshly initialized for `tree`, drawn
/// from (and, on success, returned to) the calling thread's cache. If
/// `f` unwinds the state is simply not recycled — no poisoning, no
/// cleanup obligations.
pub(crate) fn with_state<R>(tree: &Tree, f: impl FnOnce(&mut ClusterState) -> R) -> R {
    let mut state = match CACHE.with(|c| c.borrow_mut().pop()) {
        Some(mut s) => {
            s.reset(tree);
            s
        }
        None => ClusterState::new(tree),
    };
    let out = f(&mut state);
    CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if cache.len() < MAX_CACHED {
            cache.push(state);
        }
    });
    out
}
