//! A SLURM-like discrete-event scheduling engine.
//!
//! Reproduces the slice of SLURM the paper modifies and measures through
//! (§3.1, §5.2): a central controller with a FIFO priority queue, EASY
//! backfilling, whole-node allocations (`select/linear`), tree-topology
//! node selection behind a pluggable [`commsched_core::NodeSelector`], and
//! `enable-frontend`-style emulation where jobs occupy nodes for their
//! logged durations in virtual time.
//!
//! Two experiment drivers mirror §5.4:
//!
//! * [`Engine::run`] — **continuous runs**: replay a whole job log; each
//!   job's runtime is adjusted by Eq. 7 (`T' = T_compute + T_comm ·
//!   cost_jobaware / cost_default`) at start time, so allocation quality
//!   feeds back into queue dynamics;
//! * [`individual::individual_runs`] — **individual runs**: freeze a
//!   partially-occupied cluster and place each probe job from the identical
//!   state under every allocator, the paper's like-for-like comparison.
//!
//! # Example
//!
//! ```
//! use commsched_slurmsim::{Engine, EngineConfig};
//! use commsched_core::SelectorKind;
//! use commsched_topology::Tree;
//! use commsched_workload::{LogSpec, SystemModel};
//!
//! let tree = Tree::regular_two_level(12, 366); // Theta-ish
//! let log = LogSpec::new(SystemModel::theta(), 50, 1).generate();
//! let summary = Engine::new(&tree, EngineConfig::new(SelectorKind::Balanced))
//!     .run(&log)
//!     .unwrap();
//! assert_eq!(summary.outcomes.len(), 50);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
mod engine;
pub mod individual;
mod scratch;

pub use engine::{
    BackfillPolicy, Engine, EngineConfig, EngineError, FailurePolicy, JobOutcome, JobStatus,
    OversizedPolicy, RunSummary, TraceEvent,
};

#[cfg(test)]
mod tests;
