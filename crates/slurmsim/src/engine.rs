//! The discrete-event scheduling core: queue, backfill, Eq. 7 feedback.

use commsched_collectives::CollectiveSpec;
use commsched_core::{
    AdaptiveSelector, AllocRequest, ClusterState, CostModel, DefaultTreeSelector, JobId, JobNature,
    NodeSelector, PlacementEvaluator, SaBudget, SaSelector, SaStats, SelectorKind,
};
use commsched_metrics::{CounterId, Registry};
use commsched_num::{
    f64_of_u64, f64_of_usize, i64_of_usize, u32_of_usize, u64_of_f64, u64_of_usize, usize_of_u32,
    usize_of_u64,
};
use commsched_topology::NodeId;
use commsched_topology::{SwitchId, Tree};
use commsched_trace::{EndStatus, EventKind as TK, FaultClass, NullRecorder, Recorder, Tracer};
use commsched_workload::fault::{FaultDomain, FaultKind, FaultTrace};
use commsched_workload::{Job, JobLog};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Which node-selection algorithm runs inside `select/linear`.
    pub selector: SelectorKind,
    /// Cost model for the *reported* communication cost (Figure 8 plots
    /// Eq. 6 as printed: raw effective hops).
    pub cost_model: CostModel,
    /// Cost model for the Eq. 7 runtime ratio. The paper's §5.3 weights
    /// hops by the per-step message size ("msize doubles in the case of
    /// vector doubling algorithms"), which is what distinguishes RHVD from
    /// RD in the runtime estimates — so this defaults to hop-bytes.
    pub ratio_model: CostModel,
    /// Base collective message size used in cost evaluation; the paper's
    /// motivation experiments use 1 MiB.
    pub msize: u64,
    /// Backfilling policy (SLURM's default scheduler runs EASY).
    pub backfill: BackfillPolicy,
    /// Apply the Eq. 7 runtime adjustment. Off = pure replay, useful for
    /// queueing-only studies and tests.
    pub adjust_runtimes: bool,
    /// Kill jobs at their requested walltime (production SLURM behaviour).
    /// Off by default: the paper's emulation replays full durations.
    pub enforce_walltime: bool,
    /// What happens to a job killed by a node failure.
    pub failure_policy: FailurePolicy,
    /// What happens to a job wider than the machine.
    pub oversized: OversizedPolicy,
    /// Annealing budget for `--selector sa`; ignored by every other
    /// selector. `max_evals == 0` makes SA return the adaptive incumbent
    /// bit-for-bit.
    pub sa_budget: SaBudget,
    /// Run seed the SA selector derives its per-(job, attempt) search
    /// seeds from.
    pub sa_seed: u64,
}

impl EngineConfig {
    /// Defaults matching the paper's setup: backfill on, Eq. 7 on, 1 MiB.
    pub fn new(selector: SelectorKind) -> Self {
        EngineConfig {
            selector,
            cost_model: CostModel::HOPS,
            ratio_model: CostModel::HOP_BYTES,
            msize: 1 << 20,
            backfill: BackfillPolicy::Easy,
            adjust_runtimes: true,
            enforce_walltime: false,
            failure_policy: FailurePolicy::default(),
            oversized: OversizedPolicy::Abort,
            sa_budget: SaBudget::default(),
            sa_seed: 0,
        }
    }

    /// Configure the simulated-annealing selector's budget and run seed
    /// (only meaningful with [`SelectorKind::Sa`]).
    pub fn with_sa(mut self, budget: SaBudget, seed: u64) -> Self {
        self.sa_budget = budget;
        self.sa_seed = seed;
        self
    }

    /// Disable runtime adjustment (pure replay).
    pub fn without_adjustment(mut self) -> Self {
        self.adjust_runtimes = false;
        self
    }

    /// Disable backfilling (strict FIFO).
    pub fn without_backfill(mut self) -> Self {
        self.backfill = BackfillPolicy::None;
        self
    }

    /// Use conservative backfilling: every queued job holds a reservation
    /// and backfilled jobs may not delay *any* of them (EASY only protects
    /// the queue head).
    pub fn conservative_backfill(mut self) -> Self {
        self.backfill = BackfillPolicy::Conservative;
        self
    }

    /// Kill jobs at their requested walltime, like a production SLURM.
    /// Off by default: the paper's emulation replays full durations.
    pub fn with_walltime_enforcement(mut self) -> Self {
        self.enforce_walltime = true;
        self
    }

    /// Set the policy applied to jobs killed by node failures.
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Record a per-job `Rejected` outcome for jobs wider than the machine
    /// instead of aborting the whole run.
    pub fn reject_oversized(mut self) -> Self {
        self.oversized = OversizedPolicy::Reject;
        self
    }
}

/// What happens to a job killed by a node failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailurePolicy {
    /// The job is cancelled: it keeps its partial outcome (ended at the
    /// failure instant) and never runs again.
    Cancel,
    /// The job re-enters the *back* of the queue after `backoff` seconds,
    /// at most `max_retries` times; once retries are exhausted it is
    /// cancelled.
    Requeue {
        /// Kills after this many requeues cancel the job.
        max_retries: u32,
        /// Seconds between the kill and the re-submission.
        backoff: u64,
    },
    /// The job re-enters the *front* of the queue immediately (SLURM's
    /// requeue-with-priority shape); retries are unbounded.
    RequeueFront,
}

impl Default for FailurePolicy {
    /// SLURM's `JobRequeue=1` default shape: requeue at the back, three
    /// attempts, no backoff.
    fn default() -> Self {
        FailurePolicy::Requeue {
            max_retries: 3,
            backoff: 0,
        }
    }
}

impl fmt::Display for FailurePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailurePolicy::Cancel => write!(f, "cancel"),
            FailurePolicy::Requeue {
                max_retries,
                backoff,
            } => write!(f, "requeue(max_retries={max_retries}, backoff={backoff}s)"),
            FailurePolicy::RequeueFront => write!(f, "requeue-front"),
        }
    }
}

/// What happens to a job that requests more nodes than the machine has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OversizedPolicy {
    /// Abort the whole run with [`EngineError::JobTooLarge`] (the safe
    /// default: an impossible request in a replay log is a config error).
    #[default]
    Abort,
    /// Record a [`JobStatus::Rejected`] outcome for the oversized job and
    /// keep scheduling everyone else.
    Reject,
}

/// How a job's time on the machine ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum JobStatus {
    /// Ran to completion (possibly after requeues).
    #[default]
    Completed,
    /// Killed by a node failure and not (or no longer) requeued.
    Cancelled,
    /// Never ran: wider than the machine or permanently stuck behind an
    /// unsatisfiable request.
    Rejected,
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobStatus::Completed => "completed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Rejected => "rejected",
        })
    }
}

/// How jobs may jump the FIFO queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackfillPolicy {
    /// Strict FIFO: nothing starts out of order.
    None,
    /// EASY: one reservation for the queue head; later jobs may start now
    /// if they cannot delay it (SLURM's `sched/backfill` default shape).
    Easy,
    /// Conservative: reservations for every queued job; a job may start
    /// early only if it delays none of them.
    Conservative,
}

/// Errors aborting a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A job requests more nodes than the machine has — it could never run.
    JobTooLarge {
        /// Offending job.
        job: JobId,
        /// Its request.
        nodes: usize,
        /// Machine size.
        machine: usize,
    },
    /// A job requests zero nodes — malformed input.
    ZeroNodeJob(JobId),
    /// Two jobs in the log share an id, which would corrupt event routing.
    DuplicateJob(JobId),
    /// The machine has no nodes at all.
    EmptyMachine,
    /// A drain list or fault trace names a node outside the machine.
    NodeOutOfRange {
        /// Offending node ordinal.
        node: usize,
        /// Machine size.
        machine: usize,
    },
    /// The fault trace failed validation.
    InvalidFaultTrace(String),
    /// An internal bookkeeping invariant broke mid-run (e.g. a release or
    /// node-down transition that the cluster state rejected). Surfaced as
    /// an error instead of a panic so a sweep over many configurations
    /// reports the bad run and keeps going.
    StateInconsistency(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::JobTooLarge {
                job,
                nodes,
                machine,
            } => write!(
                f,
                "{job} requests {nodes} nodes but the machine has {machine}"
            ),
            Self::ZeroNodeJob(job) => write!(f, "{job} requests zero nodes"),
            Self::DuplicateJob(job) => write!(f, "duplicate job id {job} in the log"),
            Self::EmptyMachine => write!(f, "the machine has no nodes"),
            Self::NodeOutOfRange { node, machine } => write!(
                f,
                "node {node} is out of range for a machine of {machine} nodes"
            ),
            Self::InvalidFaultTrace(msg) => write!(f, "invalid fault trace: {msg}"),
            Self::StateInconsistency(msg) => {
                write!(f, "internal state inconsistency: {msg}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Everything recorded about one completed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Job id from the log.
    pub id: JobId,
    /// Submission time (virtual seconds).
    pub submit: u64,
    /// Start time.
    pub start: u64,
    /// Completion time (`start + runtime_adjusted`).
    pub end: u64,
    /// Whole nodes held.
    pub nodes: usize,
    /// Job nature.
    pub nature: JobNature,
    /// Eq. 6 cost of the chosen allocation (0 for compute jobs), summed
    /// over the job's collective components.
    pub cost_actual: f64,
    /// Eq. 6 cost of the allocation the *default* selector would have made
    /// in the same cluster state (the Eq. 7 denominator).
    pub cost_default: f64,
    /// Runtime from the log.
    pub runtime_original: u64,
    /// Runtime after the Eq. 7 adjustment.
    pub runtime_adjusted: u64,
    /// The Eq. 7 multiplier actually applied to the job's communication
    /// time (`cost_jobaware / cost_default` under the ratio model, weighted
    /// over components; 1 for compute jobs and for the default selector).
    pub comm_ratio: f64,
    /// How the job's stay on the machine ended.
    pub status: JobStatus,
    /// Times the job was killed by a node failure and requeued.
    pub retries: u32,
    /// Node-seconds of work destroyed by kills across all attempts (for a
    /// cancelled job this includes the final, unfinished attempt).
    pub lost_node_seconds: u64,
}

impl JobOutcome {
    /// Wait time: start − submit (§5.4 metric 2).
    pub fn wait(&self) -> u64 {
        self.start - self.submit
    }

    /// Execution time: end − start (§5.4 metric 1).
    pub fn exec(&self) -> u64 {
        self.end - self.start
    }

    /// Turnaround time: end − submit (§5.4 metric 3).
    pub fn turnaround(&self) -> u64 {
        self.end - self.submit
    }

    /// Node-hours (§5.4 metric 4).
    pub fn node_hours(&self) -> f64 {
        f64_of_usize(self.nodes) * f64_of_u64(self.exec()) / 3600.0
    }
}

/// One event of a run's reconstructed schedule trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual second the event occurred.
    pub t: u64,
    /// `true` for a job start, `false` for a finish.
    pub start: bool,
    /// The job.
    pub job: JobId,
    /// Nodes held.
    pub nodes: usize,
}

/// Results of a whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Selector that produced this run.
    pub selector: String,
    /// Per-job records, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Virtual time the last job completed.
    pub makespan: u64,
}

impl RunSummary {
    /// Total execution hours over all jobs (Table 3's "Execution Time").
    pub fn total_exec_hours(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| f64_of_u64(o.exec()))
            .sum::<f64>()
            / 3600.0
    }

    /// Total wait hours over all jobs (Table 3's "Wait Time").
    pub fn total_wait_hours(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| f64_of_u64(o.wait()))
            .sum::<f64>()
            / 3600.0
    }

    /// Mean turnaround in hours (Figure 9 left).
    pub fn avg_turnaround_hours(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| f64_of_u64(o.turnaround()))
            .sum::<f64>()
            / f64_of_usize(self.outcomes.len())
            / 3600.0
    }

    /// Mean node-hours per job (Figure 9 right).
    pub fn avg_node_hours(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.node_hours()).sum::<f64>()
            / f64_of_usize(self.outcomes.len())
    }

    /// Total Eq. 6 communication cost over communication-intensive jobs
    /// (Figure 8's metric).
    pub fn total_comm_cost(&self) -> f64 {
        self.outcomes.iter().map(|o| o.cost_actual).sum()
    }

    /// Jobs completed per hour of makespan (the throughput the paper
    /// reports in §6.5).
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        f64_of_usize(self.outcomes.len()) / (f64_of_u64(self.makespan) / 3600.0)
    }

    /// Outcome for a given job id.
    pub fn outcome(&self, id: JobId) -> Option<&JobOutcome> {
        self.outcomes.iter().find(|o| o.id == id)
    }

    /// Number of outcomes with the given status.
    pub fn count_status(&self, status: JobStatus) -> usize {
        self.outcomes.iter().filter(|o| o.status == status).count()
    }

    /// Node-hours of work destroyed by node failures across the run.
    pub fn lost_node_hours(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| f64_of_u64(o.lost_node_seconds))
            .sum::<f64>()
            / 3600.0
    }

    /// Total requeues across all jobs.
    pub fn total_retries(&self) -> u64 {
        self.outcomes.iter().map(|o| u64::from(o.retries)).sum()
    }

    /// Machine utilization over time: `buckets` equal slices of the
    /// makespan, each with the mean fraction of `machine_nodes` busy
    /// (node-seconds in the bucket / bucket capacity).
    pub fn utilization(&self, machine_nodes: usize, buckets: usize) -> Vec<(u64, f64)> {
        if buckets == 0 || machine_nodes == 0 || self.makespan == 0 {
            return Vec::new();
        }
        let width = self.makespan.div_ceil(u64_of_usize(buckets)).max(1);
        let mut busy = vec![0.0f64; buckets];
        for o in &self.outcomes {
            let (s, e) = (o.start, o.end);
            if e <= s {
                // Rejected (and zero-length) outcomes occupy nothing.
                continue;
            }
            let first = usize_of_u64(s / width);
            let last = usize_of_u64((e - 1) / width).min(buckets - 1);
            for (b, slot) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
                let b_start = u64_of_usize(b) * width;
                let b_end = b_start + width;
                let overlap = e.min(b_end).saturating_sub(s.max(b_start));
                *slot += f64_of_usize(o.nodes) * f64_of_u64(overlap);
            }
        }
        busy.iter()
            .enumerate()
            .map(|(b, &ns)| {
                let cap = f64_of_usize(machine_nodes) * f64_of_u64(width);
                (u64_of_usize(b) * width, ns / cap)
            })
            .collect()
    }

    /// Peak utilization over a 100-bucket timeline.
    pub fn peak_utilization(&self, machine_nodes: usize) -> f64 {
        self.utilization(machine_nodes, 100)
            .into_iter()
            .map(|(_, u)| u)
            .fold(0.0, f64::max)
    }

    /// The run's schedule as a chronological event trace (starts before
    /// finishes at the same instant, then by job id — a total order, so
    /// traces diff cleanly between runs).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut ev = Vec::with_capacity(self.outcomes.len() * 2);
        for o in &self.outcomes {
            ev.push(TraceEvent {
                t: o.start,
                start: true,
                job: o.id,
                nodes: o.nodes,
            });
            ev.push(TraceEvent {
                t: o.end,
                start: false,
                job: o.id,
                nodes: o.nodes,
            });
        }
        ev.sort_by_key(|e| (e.t, !e.start, e.job));
        ev
    }

    /// The event trace as JSON lines (one event per line), for external
    /// plotting/diffing tools.
    pub fn to_json_lines(&self) -> String {
        self.events()
            .iter()
            .map(|e| {
                format!(
                    "{{\"t\":{},\"event\":\"{}\",\"job\":{},\"nodes\":{}}}",
                    e.t,
                    if e.start { "start" } else { "finish" },
                    e.job.0,
                    e.nodes
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    // Finishes sort before faults and submits at the same instant so
    // released nodes are visible to the scheduling pass, like slurmctld's
    // epilog ordering — and so a job finishing exactly when its node fails
    // completes normally. The attempt number distinguishes a requeued job's
    // live finish from the stale finish of a killed attempt.
    Finish(JobId, u32),
    // Faults carry their index into the trace, so simultaneous fault
    // events process in canonical trace order.
    Fault(u32),
    Submit(usize),
}

/// Result of placing one job: its nodes and Eq. 6/Eq. 7 numbers.
#[derive(Debug, Clone)]
pub(crate) struct Placed {
    /// Chosen nodes.
    pub nodes: Vec<commsched_topology::NodeId>,
    /// Reported Eq. 6 cost of the chosen allocation.
    pub cost_actual: f64,
    /// Reported Eq. 6 cost of the default allocation from the same state.
    pub cost_default: f64,
    /// Eq. 7-adjusted runtime, seconds.
    pub adjusted: u64,
    /// The applied communication-time multiplier.
    pub comm_ratio: f64,
}

/// Virtual seconds → trace microseconds. Saturating: overflowing u64
/// microseconds would need a ~584-millennium virtual run, but the hardened
/// CI profile checks overflow, so the conversion must be total.
fn us(t: u64) -> u64 {
    t.saturating_mul(1_000_000)
}

/// The observation bundle threaded through a run: the event tracer plus
/// the registry counters the engine bumps as it goes. With the default
/// [`NullRecorder`] every emit site reduces to one masked-bit test and
/// every counter bump to a `Vec` index — cheap enough to leave in the
/// hot path unconditionally.
struct Obs<'a, 'r> {
    tr: Tracer<'r>,
    reg: &'a mut Registry,
    c_submitted: CounterId,
    c_started: CounterId,
    c_backfilled: CounterId,
    c_completed: CounterId,
    c_cancelled: CounterId,
    c_rejected: CounterId,
    c_requeued: CounterId,
    c_faults: CounterId,
    c_passes: CounterId,
}

impl<'a, 'r> Obs<'a, 'r> {
    fn new(reg: &'a mut Registry, tr: Tracer<'r>) -> Self {
        // Register every counter up front so a run report always carries
        // the full set, zeros included.
        let c_submitted = reg.counter("jobs.submitted");
        let c_started = reg.counter("jobs.started");
        let c_backfilled = reg.counter("jobs.backfilled");
        let c_completed = reg.counter("jobs.completed");
        let c_cancelled = reg.counter("jobs.cancelled");
        let c_rejected = reg.counter("jobs.rejected");
        let c_requeued = reg.counter("jobs.requeued");
        let c_faults = reg.counter("faults.applied");
        let c_passes = reg.counter("sched.passes");
        Obs {
            tr,
            reg,
            c_submitted,
            c_started,
            c_backfilled,
            c_completed,
            c_cancelled,
            c_rejected,
            c_requeued,
            c_faults,
            c_passes,
        }
    }

    /// Emit the place/start pair for the outcome a successful
    /// `start_job` just pushed.
    fn note_start(&mut self, now: u64, o: &JobOutcome, attempt: u32, backfilled: bool) {
        self.tr.emit(
            us(now),
            TK::JobPlace {
                job: o.id.0,
                attempt,
                nodes: u64_of_usize(o.nodes),
                cost_actual: o.cost_actual,
                cost_default: o.cost_default,
            },
        );
        self.tr.emit(
            us(now),
            TK::JobStart {
                job: o.id.0,
                attempt,
                nodes: u64_of_usize(o.nodes),
                backfilled,
            },
        );
        self.reg.inc(self.c_started, 1);
        if backfilled {
            self.reg.inc(self.c_backfilled, 1);
        }
    }
}

/// The engine. Borrows the topology; cheap to construct per run.
pub struct Engine<'t> {
    tree: &'t Tree,
    cfg: EngineConfig,
    /// Nodes administratively removed from service for the whole run
    /// (SLURM DRAIN state).
    drained: Vec<commsched_topology::NodeId>,
    /// Mid-run node failure/recovery schedule; empty by default, in which
    /// case the run is bit-identical to the failure-free engine.
    faults: FaultTrace,
    /// Fused what-if evaluator shared between placement (Eqs. 6–7) and the
    /// adaptive selector, so candidate comparison warms the hop memo the
    /// Eq. 7 evaluation then reuses.
    eval: Arc<Mutex<PlacementEvaluator>>,
    /// Statistics of the SA selector's last search, shared with the
    /// selector built by [`Engine::build_selector`]; `place` clears it and
    /// the scheduler drains it into the `sa_search` trace event. Always
    /// `None` under any other selector.
    sa_stats: Arc<Mutex<Option<SaStats>>>,
}

impl<'t> Engine<'t> {
    /// An engine over `tree` with `cfg`.
    pub fn new(tree: &'t Tree, cfg: EngineConfig) -> Self {
        Engine {
            tree,
            cfg,
            drained: Vec::new(),
            faults: FaultTrace::empty(),
            eval: Arc::new(Mutex::new(PlacementEvaluator::new())),
            sa_stats: Arc::new(Mutex::new(None)),
        }
    }

    /// Inject a fault trace: its `Fail`/`Recover`/`Drain` events fire at
    /// their virtual times during [`Engine::run`].
    pub fn with_faults(mut self, faults: FaultTrace) -> Self {
        self.faults = faults;
        self
    }

    /// Build the configured selector. The adaptive and SA selectors share
    /// this engine's evaluator (see the `eval` field); the others are
    /// stateless. SA additionally routes its search statistics through
    /// the engine's `sa_stats` handle for trace emission.
    pub(crate) fn build_selector(&self) -> Box<dyn NodeSelector> {
        match self.cfg.selector {
            SelectorKind::Adaptive => Box::new(AdaptiveSelector::with_evaluator(
                CostModel::HOP_BYTES,
                Arc::clone(&self.eval),
            )),
            SelectorKind::Sa => Box::new(
                SaSelector::with_evaluator(
                    CostModel::HOP_BYTES,
                    self.cfg.sa_budget,
                    self.cfg.sa_seed,
                    Arc::clone(&self.eval),
                )
                .share_stats(Arc::clone(&self.sa_stats)),
            ),
            k => k.build(),
        }
    }

    /// Mark nodes as drained for the whole run: they are never allocated
    /// and reduce the machine's capacity. Duplicates are ignored.
    pub fn drain_nodes(mut self, nodes: Vec<commsched_topology::NodeId>) -> Self {
        self.drained = nodes;
        self.drained.sort_unstable();
        self.drained.dedup();
        self
    }

    /// Place one job in `state` (without recording it) and work out its
    /// Eq. 7 numbers. Returns `(nodes, cost_actual, cost_default,
    /// adjusted_runtime)`.
    ///
    /// Shared by the continuous engine and the individual-runs driver so
    /// both apply identical semantics.
    /// Slowest capacity factor over the links an allocation's in-tree
    /// routes traverse: node up/down links plus every switch up/down pair
    /// between each node's leaf and the allocation's LCA. `links` is the
    /// per-directed-link factor table (empty = no degradation anywhere,
    /// the failure-free fast path).
    fn min_link_factor(&self, links: &[f64], nodes: &[NodeId]) -> f64 {
        if links.is_empty() || nodes.len() <= 1 {
            return 1.0;
        }
        let mut lca = self.tree.leaf_of(nodes[0]);
        for &n in &nodes[1..] {
            lca = self.tree.lca_switch(lca, self.tree.leaf_of(n));
        }
        let mut factor = 1.0f64;
        for &n in nodes {
            factor = factor.min(links[self.tree.node_uplink(n)]);
            factor = factor.min(links[self.tree.node_downlink(n)]);
            let mut s = self.tree.leaf_of(n);
            while s != lca {
                factor = factor.min(links[self.tree.switch_uplink(s)]);
                factor = factor.min(links[self.tree.switch_downlink(s)]);
                let Some(p) = self.tree.switch(s).parent else {
                    break;
                };
                s = p;
            }
        }
        factor
    }

    pub(crate) fn place(
        &self,
        state: &ClusterState,
        job: &Job,
        selector: &dyn NodeSelector,
        links: &[f64],
        attempt: u32,
    ) -> Option<Placed> {
        if self.cfg.selector == SelectorKind::Sa {
            // Fresh slot per placement, so a declined placement can never
            // leave stale search statistics for the next job's events.
            if let Ok(mut s) = self.sa_stats.lock() {
                *s = None;
            }
        }
        let req = AllocRequest {
            job: job.id,
            nodes: job.nodes,
            nature: job.nature,
            pattern: job
                .comm
                .first()
                .map(|(p, _)| CollectiveSpec::new(*p, self.cfg.msize)),
            attempt,
        };
        let nodes = selector.select(self.tree, state, &req).ok()?;

        if !job.nature.is_comm() || job.comm.is_empty() {
            return Some(Placed {
                nodes,
                cost_actual: 0.0,
                cost_default: 0.0,
                adjusted: job.runtime,
                comm_ratio: 1.0,
            });
        }

        // The Eq. 7 denominator: what the default selector would have done
        // from this same state.
        let default_nodes = if self.cfg.selector == SelectorKind::Default {
            nodes.clone()
        } else {
            // The default selector succeeds whenever another selector
            // does; if that invariant ever broke, declining the placement
            // (None) is strictly safer than crashing the run.
            DefaultTreeSelector.select(self.tree, state, &req).ok()?
        };

        // Evaluate Eq. 6 under both models for every collective component
        // of an allocation, through the shared fused evaluator — no clone
        // of the cluster state; the job's own L_comm contribution is an
        // overlay inside the evaluator (the paper's worked example counts
        // the job's own nodes). With matching trunk discounts (the default:
        // both models use the paper's ½) one traversal per component yields
        // both the reported cost and the Eq. 7 term.
        let fused = self.cfg.cost_model.trunk_discount == self.cfg.ratio_model.trunk_discount;
        let specs: Vec<CollectiveSpec> = job
            .comm
            .iter()
            .map(|&(pattern, _)| CollectiveSpec::new(pattern, self.cfg.msize))
            .collect();
        let eval_all = |ev: &mut PlacementEvaluator,
                        alloc: &[commsched_topology::NodeId]|
         -> Vec<(f64, f64)> {
            if fused {
                specs
                    .iter()
                    .map(|spec| {
                        let t = ev.evaluate(
                            self.tree,
                            state,
                            self.cfg.cost_model.trunk_discount,
                            alloc,
                            spec,
                        );
                        (
                            t.for_model(&self.cfg.cost_model),
                            t.for_model(&self.cfg.ratio_model),
                        )
                    })
                    .collect()
            } else {
                // Distinct discounts: two grouped passes, so each
                // discount's hop memo still serves all the components.
                let reported: Vec<f64> = specs
                    .iter()
                    .map(|spec| {
                        ev.evaluate(
                            self.tree,
                            state,
                            self.cfg.cost_model.trunk_discount,
                            alloc,
                            spec,
                        )
                        .for_model(&self.cfg.cost_model)
                    })
                    .collect();
                let ratios: Vec<f64> = specs
                    .iter()
                    .map(|spec| {
                        ev.evaluate(
                            self.tree,
                            state,
                            self.cfg.ratio_model.trunk_discount,
                            alloc,
                            spec,
                        )
                        .for_model(&self.cfg.ratio_model)
                    })
                    .collect();
                reported.into_iter().zip(ratios).collect()
            }
        };
        // Lock order: always after selector.select() has returned (the
        // adaptive selector takes the same lock inside select()).
        // detlint: allow(P1) — a poisoned mutex means another thread already
        // panicked mid-evaluation; propagating is the only sound response.
        let mut ev = self.eval.lock().expect("evaluator mutex poisoned");
        let actual = eval_all(&mut ev, &nodes);
        let default = eval_all(&mut ev, &default_nodes);
        drop(ev);

        let mut cost_actual = 0.0;
        let mut cost_default = 0.0;
        let mut comm_adj = 0.0;
        let comm_orig = f64_of_u64(job.runtime) * job.comm_fraction();
        let mut adjusted = f64_of_u64(job.runtime) * (1.0 - job.comm_fraction());
        // Degraded links on the allocation's routes stretch the
        // communication fraction by the slowest link's inverse capacity
        // factor; 1.0 on a healthy fabric leaves the arithmetic
        // bit-identical to the no-fault path.
        let link_factor = self.min_link_factor(links, &nodes);
        for (i, &(_, fraction)) in job.comm.iter().enumerate() {
            // Reported cost: Eq. 6 as printed (raw hops by default).
            cost_actual += actual[i].0;
            cost_default += default[i].0;
            // Runtime ratio: hop-bytes by default (§5.3).
            let (ca, cd) = (actual[i].1, default[i].1);
            let ratio = if cd > 0.0 { ca / cd } else { 1.0 };
            let ratio = if self.cfg.adjust_runtimes { ratio } else { 1.0 };
            let part = f64_of_u64(job.runtime) * fraction * ratio / link_factor;
            comm_adj += part;
            adjusted += part;
        }
        let comm_ratio = if comm_orig > 0.0 {
            comm_adj / comm_orig
        } else {
            1.0
        };
        Some(Placed {
            nodes,
            cost_actual,
            cost_default,
            adjusted: u64_of_f64(adjusted.round().max(1.0)),
            comm_ratio,
        })
    }

    /// Validate the log, drain list and fault trace against the machine.
    fn validate(&self, log: &JobLog) -> Result<(), EngineError> {
        let machine = self.tree.num_nodes();
        if machine == 0 {
            return Err(EngineError::EmptyMachine);
        }
        for &n in &self.drained {
            if n.0 >= machine {
                return Err(EngineError::NodeOutOfRange { node: n.0, machine });
            }
        }
        self.faults
            .validate_machine(
                machine,
                self.tree.num_switches(),
                self.tree.num_directed_links(),
            )
            .map_err(|e| EngineError::InvalidFaultTrace(e.to_string()))?;
        let mut ids: Vec<JobId> = log.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(EngineError::DuplicateJob(w[0]));
        }
        let capacity = machine - self.drained.len();
        for j in &log.jobs {
            if j.nodes == 0 {
                return Err(EngineError::ZeroNodeJob(j.id));
            }
            if j.nodes > capacity && self.cfg.oversized == OversizedPolicy::Abort {
                return Err(EngineError::JobTooLarge {
                    job: j.id,
                    nodes: j.nodes,
                    machine: capacity,
                });
            }
        }
        Ok(())
    }

    /// The outcome recorded for a job that never ran.
    fn rejected_outcome(job: &Job, retries: u32, lost: u64) -> JobOutcome {
        JobOutcome {
            id: job.id,
            submit: job.submit,
            start: job.submit,
            end: job.submit,
            nodes: job.nodes,
            nature: job.nature,
            cost_actual: 0.0,
            cost_default: 0.0,
            runtime_original: job.runtime,
            runtime_adjusted: 0,
            comm_ratio: 1.0,
            status: JobStatus::Rejected,
            retries,
            lost_node_seconds: lost,
        }
    }

    /// Continuous run: replay the whole log (§5.4), interleaving any
    /// injected fault events.
    pub fn run(&self, log: &JobLog) -> Result<RunSummary, EngineError> {
        // The unobserved run is the observed run with the zero-cost null
        // sink — byte-identical results by construction.
        self.run_observed(log, &mut NullRecorder, &mut Registry::new())
    }

    /// [`Engine::run`] with observability: every job lifecycle transition
    /// is emitted to `recorder` as a virtual-time [`commsched_trace::Event`]
    /// and run counters/distributions accumulate in `registry` (snapshot it
    /// afterwards for a machine-readable report). Events derive only from
    /// virtual time and seeded state, so the trace is byte-identical across
    /// repeat runs and thread counts.
    pub fn run_observed(
        &self,
        log: &JobLog,
        recorder: &mut dyn Recorder,
        registry: &mut Registry,
    ) -> Result<RunSummary, EngineError> {
        // The run's cluster state is leased from a per-thread scratch
        // cache: sweeps replay thousands of logs, and re-allocating the
        // per-node vectors for each would dominate steady-state cost.
        crate::scratch::with_state(self.tree, |state| {
            self.run_observed_on(state, log, recorder, registry)
        })
    }

    fn run_observed_on(
        &self,
        state: &mut ClusterState,
        log: &JobLog,
        recorder: &mut dyn Recorder,
        registry: &mut Registry,
    ) -> Result<RunSummary, EngineError> {
        let mut obs = Obs::new(registry, Tracer::new(recorder));
        self.validate(log)?;
        let capacity = self.tree.num_nodes() - self.drained.len();
        let selector = self.build_selector();
        for &n in &self.drained {
            // A freshly-built state has every node up and free, so a
            // whole-run drain goes straight to Down.
            state
                .set_down(self.tree, n)
                .map_err(|e| EngineError::StateInconsistency(format!("draining {n:?}: {e}")))?;
        }
        let mut events: BinaryHeap<Reverse<(u64, EventKind)>> = BinaryHeap::new();
        for (i, j) in log.jobs.iter().enumerate() {
            events.push(Reverse((j.submit, EventKind::Submit(i))));
        }
        for (k, e) in self.faults.events().iter().enumerate() {
            events.push(Reverse((e.t, EventKind::Fault(u32_of_usize(k)))));
        }

        // FIFO queue of log indices; pending[0] is the queue head.
        let mut pending: Vec<usize> = Vec::new();
        // Running jobs: (expected_end_by_walltime, log idx, attempt).
        let mut running: Vec<(u64, usize, u32)> = Vec::new();
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        // Per-job requeue count and destroyed node-seconds, accumulated
        // across attempts; the counts at start time double as the attempt
        // number that pairs a Finish event with its running entry.
        let mut retries: Vec<u32> = vec![0; log.jobs.len()];
        let mut lost: Vec<u64> = vec![0; log.jobs.len()];
        let mut makespan = 0u64;
        // Per-directed-link capacity factors, alive only when the fault
        // trace degrades links — failure-free runs never allocate or scan
        // this, keeping their placement arithmetic untouched.
        let mut link_factors: Vec<f64> = if self.faults.has_domain(FaultDomain::Link) {
            vec![1.0; self.tree.num_directed_links()]
        } else {
            Vec::new()
        };

        while let Some(Reverse((now, _))) = events.peek().copied() {
            // Drain all events at `now` (finishes first, then faults, then
            // submits, via enum ordering).
            while let Some(Reverse((t, ev))) = events.peek().copied() {
                if t != now {
                    break;
                }
                events.pop();
                match ev {
                    EventKind::Finish(id, att) => {
                        let live = running
                            .iter()
                            .any(|&(_, i, a)| log.jobs[i].id == id && a == att);
                        if !live {
                            // Stale finish of an attempt killed by a fault.
                            continue;
                        }
                        state.release(self.tree, id).map_err(|e| {
                            EngineError::StateInconsistency(format!("releasing {id}: {e}"))
                        })?;
                        running.retain(|&(_, i, a)| log.jobs[i].id != id || a != att);
                        obs.tr.emit(
                            us(now),
                            TK::JobFinish {
                                job: id.0,
                                attempt: att,
                                status: EndStatus::Completed,
                            },
                        );
                        obs.reg.inc(obs.c_completed, 1);
                    }
                    EventKind::Fault(k) => self.apply_fault(
                        usize_of_u32(k),
                        now,
                        log,
                        &mut *state,
                        &mut pending,
                        &mut running,
                        &mut events,
                        &mut outcomes,
                        &mut retries,
                        &mut lost,
                        &mut link_factors,
                        &mut obs,
                    )?,
                    EventKind::Submit(i) => {
                        let job = &log.jobs[i];
                        if retries[i] == 0 {
                            // First entry; requeue re-submissions skip this.
                            obs.tr.emit(
                                us(now),
                                TK::JobSubmit {
                                    job: job.id.0,
                                    nodes: u64_of_usize(job.nodes),
                                },
                            );
                            obs.reg.inc(obs.c_submitted, 1);
                        }
                        if job.nodes > capacity {
                            // Only reachable under OversizedPolicy::Reject —
                            // Abort already returned from validate().
                            outcomes.push(Self::rejected_outcome(job, 0, 0));
                            obs.tr.emit(us(now), TK::JobReject { job: job.id.0 });
                            obs.reg.inc(obs.c_rejected, 1);
                        } else {
                            pending.push(i);
                            obs.tr.emit(
                                us(now),
                                TK::JobEligible {
                                    job: job.id.0,
                                    attempt: retries[i],
                                },
                            );
                        }
                    }
                }
            }

            // Scheduling pass.
            self.schedule_pass(
                now,
                log,
                selector.as_ref(),
                &mut *state,
                &mut pending,
                &mut running,
                &mut events,
                &mut outcomes,
                &retries,
                &lost,
                &link_factors,
                &mut obs,
            )?;
            makespan = makespan.max(now);
        }

        // Jobs still queued when the event stream runs dry can never start
        // (wider than the surviving capacity, or FIFO-stuck behind one that
        // is): record them as rejected instead of looping or losing them.
        // Unreachable without faults — validate() guarantees every job fits
        // the full machine, so a failure-free queue always drains.
        for &i in &pending {
            outcomes.push(Self::rejected_outcome(&log.jobs[i], retries[i], lost[i]));
            obs.tr.emit(
                us(makespan),
                TK::JobReject {
                    job: log.jobs[i].id.0,
                },
            );
            obs.reg.inc(obs.c_rejected, 1);
        }
        pending.clear();
        debug_assert!(running.is_empty(), "jobs left running");
        debug_assert_eq!(outcomes.len(), log.jobs.len());
        let makespan = outcomes.iter().map(|o| o.end).max().unwrap_or(makespan);

        // End-of-run distributions and totals, in outcome (completion)
        // order — a pure function of the outcomes, so reports stay
        // deterministic.
        let h_wait = obs.reg.hist("job.wait_s");
        let h_exec = obs.reg.hist("job.exec_s");
        let mut lost_total = 0u64;
        for o in &outcomes {
            if o.status == JobStatus::Completed {
                obs.reg.observe(h_wait, f64_of_u64(o.wait()));
                obs.reg.observe(h_exec, f64_of_u64(o.exec()));
            }
            lost_total = lost_total.saturating_add(o.lost_node_seconds);
        }
        let g_makespan = obs.reg.gauge("makespan_s");
        obs.reg.set(g_makespan, f64_of_u64(makespan));
        let g_lost = obs.reg.gauge("lost_node_seconds");
        obs.reg.set(g_lost, f64_of_u64(lost_total));

        Ok(RunSummary {
            selector: self.cfg.selector.name().to_string(),
            outcomes,
            makespan,
        })
    }

    /// Apply one fault-trace event at `now`: kill the victim job (per the
    /// configured [`FailurePolicy`]) and transition the node's lifecycle
    /// state. Lenient on redundant transitions (failing a down node,
    /// recovering an up node): explicit traces need not be minimal.
    #[allow(clippy::too_many_arguments)]
    fn apply_fault(
        &self,
        k: usize,
        now: u64,
        log: &JobLog,
        state: &mut ClusterState,
        pending: &mut Vec<usize>,
        running: &mut Vec<(u64, usize, u32)>,
        events: &mut BinaryHeap<Reverse<(u64, EventKind)>>,
        outcomes: &mut Vec<JobOutcome>,
        retries: &mut [u32],
        lost: &mut [u64],
        link_factors: &mut [f64],
        obs: &mut Obs<'_, '_>,
    ) -> Result<(), EngineError> {
        use commsched_core::NodeHealth;

        let e = self.faults.events()[k];
        obs.reg.inc(obs.c_faults, 1);
        match e.kind {
            FaultKind::Fail => {
                let n = NodeId(e.node);
                obs.tr.emit(
                    us(now),
                    TK::Fault {
                        node: u64_of_usize(e.node),
                        kind: FaultClass::Fail,
                    },
                );
                if let Some(victim) = state.job_on(n) {
                    self.kill_victim(
                        victim, now, log, state, pending, running, events, outcomes, retries, lost,
                        obs,
                    )?;
                }
                // The kill freed the node — unless it was draining, in
                // which case release already completed the drain to Down.
                if state.health(n) != NodeHealth::Down {
                    state.set_down(self.tree, n).map_err(|e| {
                        EngineError::StateInconsistency(format!("failing node {n:?}: {e}"))
                    })?;
                }
            }
            FaultKind::Recover => {
                let n = NodeId(e.node);
                obs.tr.emit(
                    us(now),
                    TK::Fault {
                        node: u64_of_usize(e.node),
                        kind: FaultClass::Recover,
                    },
                );
                if state.health(n) != NodeHealth::Up {
                    state.set_up(self.tree, n).map_err(|e| {
                        EngineError::StateInconsistency(format!("recovering node {n:?}: {e}"))
                    })?;
                }
            }
            FaultKind::Drain => {
                let n = NodeId(e.node);
                obs.tr.emit(
                    us(now),
                    TK::Fault {
                        node: u64_of_usize(e.node),
                        kind: FaultClass::Drain,
                    },
                );
                if state.health(n) != NodeHealth::Down {
                    state.set_draining(self.tree, n).map_err(|e| {
                        EngineError::StateInconsistency(format!("draining node {n:?}: {e}"))
                    })?;
                }
            }
            FaultKind::SwitchDown => {
                let s = SwitchId(e.node);
                let already = state.switch_is_down(s);
                // Victim set first (in JobId order, off the deterministic
                // allocation map), so the blast radius is on the trace
                // event before the individual kill records.
                let victims: Vec<JobId> = if already {
                    Vec::new()
                } else {
                    let under: std::collections::BTreeSet<usize> =
                        self.tree.leaf_ordinals_under(s).iter().copied().collect();
                    state
                        .allocations()
                        .filter(|(_, a)| {
                            a.nodes
                                .iter()
                                .any(|&n| under.contains(&self.tree.leaf_ordinal_of(n)))
                        })
                        .map(|(j, _)| j)
                        .collect()
                };
                obs.tr.emit(
                    us(now),
                    TK::SwitchFault {
                        switch: u64_of_usize(e.node),
                        kind: FaultClass::Fail,
                        victims: u64_of_usize(victims.len()),
                        nodes: u64_of_usize(self.tree.subtree_nodes(s)),
                    },
                );
                // Registered lazily: failure-free (and switch-free) runs
                // keep their report byte layout.
                let c = obs.reg.counter("faults.switch.applied");
                obs.reg.inc(c, 1);
                if !victims.is_empty() {
                    let c = obs.reg.counter("faults.switch.victims");
                    obs.reg.inc(c, u64_of_usize(victims.len()));
                }
                for victim in victims {
                    self.kill_victim(
                        victim, now, log, state, pending, running, events, outcomes, retries, lost,
                        obs,
                    )?;
                }
                if !already {
                    state.set_switch_down(self.tree, s).map_err(|e| {
                        EngineError::StateInconsistency(format!("failing switch {s:?}: {e}"))
                    })?;
                }
            }
            FaultKind::SwitchUp => {
                let s = SwitchId(e.node);
                obs.tr.emit(
                    us(now),
                    TK::SwitchFault {
                        switch: u64_of_usize(e.node),
                        kind: FaultClass::Recover,
                        victims: 0,
                        nodes: u64_of_usize(self.tree.subtree_nodes(s)),
                    },
                );
                let c = obs.reg.counter("faults.switch.applied");
                obs.reg.inc(c, 1);
                if state.switch_is_down(s) {
                    state.set_switch_up(self.tree, s).map_err(|e| {
                        EngineError::StateInconsistency(format!("recovering switch {s:?}: {e}"))
                    })?;
                }
            }
            FaultKind::LinkDegrade { permille } => {
                obs.tr.emit(
                    us(now),
                    TK::LinkFault {
                        link: u64_of_usize(e.node),
                        capacity_permille: u64::from(permille),
                    },
                );
                let c = obs.reg.counter("faults.link.applied");
                obs.reg.inc(c, 1);
                if let Some(f) = link_factors.get_mut(e.node) {
                    *f = f64::from(permille) / 1000.0;
                }
            }
            FaultKind::LinkRestore => {
                obs.tr.emit(
                    us(now),
                    TK::LinkFault {
                        link: u64_of_usize(e.node),
                        capacity_permille: 1000,
                    },
                );
                let c = obs.reg.counter("faults.link.applied");
                obs.reg.inc(c, 1);
                if let Some(f) = link_factors.get_mut(e.node) {
                    *f = 1.0;
                }
            }
        }
        Ok(())
    }

    /// Kill one running job for a fault at `now`: release its nodes,
    /// account the destroyed node-seconds, and cancel or requeue it per
    /// the configured [`FailurePolicy`]. Shared by node `Fail` and the
    /// subtree kills of `SwitchDown`.
    #[allow(clippy::too_many_arguments)]
    fn kill_victim(
        &self,
        victim: JobId,
        now: u64,
        log: &JobLog,
        state: &mut ClusterState,
        pending: &mut Vec<usize>,
        running: &mut Vec<(u64, usize, u32)>,
        events: &mut BinaryHeap<Reverse<(u64, EventKind)>>,
        outcomes: &mut Vec<JobOutcome>,
        retries: &mut [u32],
        lost: &mut [u64],
        obs: &mut Obs<'_, '_>,
    ) -> Result<(), EngineError> {
        let pos = running
            .iter()
            .position(|&(_, i, _)| log.jobs[i].id == victim);
        debug_assert!(pos.is_some(), "allocated job must be running");
        let Some(pos) = pos else {
            return Ok(());
        };
        let (_, i, _) = running[pos];
        running.remove(pos);
        let alloc = state.release(self.tree, victim).map_err(|e| {
            EngineError::StateInconsistency(format!("releasing fault victim {victim}: {e}"))
        })?;
        let opos = outcomes
            .iter()
            .rposition(|o| o.id == victim)
            .ok_or_else(|| {
                EngineError::StateInconsistency(format!(
                    "running job {victim} has no outcome record"
                ))
            })?;
        let started = outcomes[opos].start;
        let wasted = (now - started) * u64_of_usize(alloc.nodes.len());
        lost[i] = lost[i].saturating_add(wasted);
        // None = cancel; Some(None) = requeue at the front;
        // Some(Some(backoff)) = requeue at the back.
        let requeue = match self.cfg.failure_policy {
            FailurePolicy::Cancel => None,
            FailurePolicy::Requeue {
                max_retries,
                backoff,
            } => (retries[i] < max_retries).then_some(Some(backoff)),
            FailurePolicy::RequeueFront => Some(None),
        };
        match requeue {
            None => {
                let o = &mut outcomes[opos];
                o.end = now;
                o.runtime_adjusted = now - started;
                o.status = JobStatus::Cancelled;
                o.retries = retries[i];
                o.lost_node_seconds = lost[i];
                obs.tr.emit(
                    us(now),
                    TK::JobFinish {
                        job: victim.0,
                        attempt: retries[i],
                        status: EndStatus::Cancelled,
                    },
                );
                obs.reg.inc(obs.c_cancelled, 1);
            }
            Some(None) => {
                obs.tr.emit(
                    us(now),
                    TK::JobRequeue {
                        job: victim.0,
                        attempt: retries[i],
                        resubmit_us: us(now),
                    },
                );
                obs.reg.inc(obs.c_requeued, 1);
                retries[i] += 1;
                outcomes.remove(opos);
                pending.insert(0, i);
                obs.tr.emit(
                    us(now),
                    TK::JobEligible {
                        job: victim.0,
                        attempt: retries[i],
                    },
                );
            }
            Some(Some(backoff)) => {
                obs.tr.emit(
                    us(now),
                    TK::JobRequeue {
                        job: victim.0,
                        attempt: retries[i],
                        resubmit_us: us(now.saturating_add(backoff)),
                    },
                );
                obs.reg.inc(obs.c_requeued, 1);
                retries[i] += 1;
                outcomes.remove(opos);
                events.push(Reverse((now.saturating_add(backoff), EventKind::Submit(i))));
            }
        }
        Ok(())
    }

    /// Drain the SA selector's last search record (if one ran) into the
    /// `sa_search` trace event and the lazy SA counters. A no-op — and
    /// byte-neutral for traces and reports — under every other selector,
    /// and for budget-0/compute placements where no search runs.
    fn emit_sa(&self, now: u64, obs: &mut Obs<'_, '_>) {
        let Some(st) = self.sa_stats.lock().ok().and_then(|mut s| s.take()) else {
            return;
        };
        obs.tr.emit(
            us(now),
            TK::SaSearch {
                job: st.job.0,
                attempt: st.attempt,
                budget: u64::from(st.budget),
                evals: u64::from(st.evals),
                accepted: u64::from(st.accepted),
                rejected: u64::from(st.rejected),
                cost_incumbent: st.cost_incumbent,
                cost_final: st.cost_final,
            },
        );
        // Registered lazily, like the fault counters: non-SA runs keep
        // their report byte layout.
        let c = obs.reg.counter("sa.searches");
        obs.reg.inc(c, 1);
        let c = obs.reg.counter("sa.evals");
        obs.reg.inc(c, u64::from(st.evals));
        if st.cost_final < st.cost_incumbent {
            let c = obs.reg.counter("sa.improved");
            obs.reg.inc(c, 1);
        }
    }

    /// One pass of the scheduler: start the head while it fits, then EASY
    /// backfill behind its reservation.
    #[allow(clippy::too_many_arguments)]
    fn schedule_pass(
        &self,
        now: u64,
        log: &JobLog,
        selector: &dyn NodeSelector,
        state: &mut ClusterState,
        pending: &mut Vec<usize>,
        running: &mut Vec<(u64, usize, u32)>,
        events: &mut BinaryHeap<Reverse<(u64, EventKind)>>,
        outcomes: &mut Vec<JobOutcome>,
        retries: &[u32],
        lost: &[u64],
        links: &[f64],
        obs: &mut Obs<'_, '_>,
    ) -> Result<(), EngineError> {
        obs.reg.inc(obs.c_passes, 1);
        let start_job = |i: usize,
                         state: &mut ClusterState,
                         running: &mut Vec<(u64, usize, u32)>,
                         events: &mut BinaryHeap<Reverse<(u64, EventKind)>>,
                         outcomes: &mut Vec<JobOutcome>|
         -> Result<bool, EngineError> {
            let job = &log.jobs[i];
            let Some(mut placed) = self.place(state, job, selector, links, retries[i]) else {
                return Ok(false);
            };
            if self.cfg.enforce_walltime {
                placed.adjusted = placed.adjusted.min(job.walltime);
            }
            state
                .allocate(self.tree, job.id, &placed.nodes, job.nature)
                .map_err(|e| {
                    EngineError::StateInconsistency(format!(
                        "allocating {} on selector-chosen nodes: {e}",
                        job.id
                    ))
                })?;
            let end = now + placed.adjusted;
            running.push((now + job.walltime.max(placed.adjusted), i, retries[i]));
            events.push(Reverse((end, EventKind::Finish(job.id, retries[i]))));
            outcomes.push(JobOutcome {
                id: job.id,
                submit: job.submit,
                start: now,
                end,
                nodes: job.nodes,
                nature: job.nature,
                cost_actual: placed.cost_actual,
                cost_default: placed.cost_default,
                runtime_original: job.runtime,
                runtime_adjusted: placed.adjusted,
                comm_ratio: placed.comm_ratio,
                status: JobStatus::Completed,
                retries: retries[i],
                lost_node_seconds: lost[i],
            });
            Ok(true)
        };

        // Start head-of-queue jobs while they fit.
        while let Some(&head) = pending.first() {
            if log.jobs[head].nodes <= state.free_total()
                && start_job(head, state, running, events, outcomes)?
            {
                pending.remove(0);
                self.emit_sa(now, obs);
                if let Some(o) = outcomes.last() {
                    obs.note_start(now, o, retries[head], false);
                }
            } else {
                break;
            }
        }

        if pending.is_empty() || self.cfg.backfill == BackfillPolicy::None {
            return Ok(());
        }
        if self.cfg.backfill == BackfillPolicy::Conservative {
            return self.conservative_backfill_pass(
                now, log, state, pending, running, events, outcomes, retries, obs, &start_job,
            );
        }

        // EASY reservation for the head: find the shadow time when enough
        // nodes will be free (by requested walltimes), and the extra nodes
        // beyond the head's need at that moment.
        let head = pending[0];
        let need = log.jobs[head].nodes;
        let mut ends: Vec<(u64, usize)> = running
            .iter()
            .map(|&(wall_end, i, _)| (wall_end, log.jobs[i].nodes))
            .collect();
        ends.sort_unstable();
        let mut avail = state.free_total();
        let mut shadow = u64::MAX;
        for &(t, n) in &ends {
            avail += n;
            if avail >= need {
                shadow = t;
                break;
            }
        }
        let extra = avail.saturating_sub(need);

        // Backfill later jobs that cannot delay the head's reservation.
        let mut k = 1;
        while k < pending.len() {
            let i = pending[k];
            let job = &log.jobs[i];
            let fits_now = job.nodes <= state.free_total();
            let harmless = now.saturating_add(job.walltime) <= shadow || job.nodes <= extra;
            if fits_now && harmless && start_job(i, state, running, events, outcomes)? {
                pending.remove(k);
                self.emit_sa(now, obs);
                if let Some(o) = outcomes.last() {
                    obs.note_start(now, o, retries[i], true);
                }
            } else {
                k += 1;
            }
        }
        Ok(())
    }

    /// Conservative backfilling: build a future-availability profile from
    /// the running jobs' walltimes, give every queued job (in order) the
    /// earliest reservation that fits, and start only jobs whose
    /// reservation is *now*. Reservations are rebuilt from scratch on each
    /// pass, the standard implementation shape.
    #[allow(clippy::too_many_arguments)]
    fn conservative_backfill_pass<F>(
        &self,
        now: u64,
        log: &JobLog,
        state: &mut ClusterState,
        pending: &mut Vec<usize>,
        running: &mut Vec<(u64, usize, u32)>,
        events: &mut BinaryHeap<Reverse<(u64, EventKind)>>,
        outcomes: &mut Vec<JobOutcome>,
        retries: &[u32],
        obs: &mut Obs<'_, '_>,
        start_job: &F,
    ) -> Result<(), EngineError>
    where
        F: Fn(
            usize,
            &mut ClusterState,
            &mut Vec<(u64, usize, u32)>,
            &mut BinaryHeap<Reverse<(u64, EventKind)>>,
            &mut Vec<JobOutcome>,
        ) -> Result<bool, EngineError>,
    {
        use std::collections::BTreeMap;

        'restart: loop {
            // Availability deltas at future instants (all keys >= now).
            let mut deltas: BTreeMap<u64, i64> = BTreeMap::new();
            for &(wall_end, i, _) in running.iter() {
                *deltas.entry(wall_end.max(now)).or_insert(0) += i64_of_usize(log.jobs[i].nodes);
            }
            let base = i64_of_usize(state.free_total());

            for k in 0..pending.len() {
                let i = pending[k];
                let job = &log.jobs[i];
                let need = i64_of_usize(job.nodes);
                let dur = job.walltime.max(1);
                let Some(s) = earliest_fit(&deltas, base, now, dur, need) else {
                    // With failed nodes the job may not fit even the fully
                    // drained future machine; it holds no reservation and
                    // waits for a recovery (or end-of-run rejection).
                    continue;
                };
                if s == now
                    && need <= i64_of_usize(state.free_total())
                    && start_job(i, state, running, events, outcomes)?
                {
                    pending.remove(k);
                    self.emit_sa(now, obs);
                    if let Some(o) = outcomes.last() {
                        obs.note_start(now, o, retries[i], k > 0);
                    }
                    // The profile base changed; rebuild and rescan.
                    continue 'restart;
                }
                // Reserve [s, s + dur) for this job.
                *deltas.entry(s).or_insert(0) -= need;
                *deltas.entry(s.saturating_add(dur)).or_insert(0) += need;
            }
            break;
        }
        Ok(())
    }
}

/// Earliest `s >= now` at which `need` nodes stay available for `dur`
/// seconds under the delta profile. Candidate starts are `now` and every
/// profile breakpoint; availability after the last breakpoint is every
/// node not currently down, so on a healthy machine a fit always exists
/// for validated jobs — but a mid-run node failure can leave `need` out
/// of reach entirely, in which case there is no fit (`None`).
fn earliest_fit(
    deltas: &std::collections::BTreeMap<u64, i64>,
    base: i64,
    now: u64,
    dur: u64,
    need: i64,
) -> Option<u64> {
    let candidates = std::iter::once(now).chain(deltas.range(now + 1..).map(|(k, _)| *k));
    for s in candidates {
        let mut avail: i64 = base + deltas.range(..=s).map(|(_, d)| *d).sum::<i64>();
        if avail < need {
            continue;
        }
        let mut ok = true;
        for (_, d) in deltas.range(s + 1..s.saturating_add(dur)) {
            avail += d;
            if avail < need {
                ok = false;
                break;
            }
        }
        if ok {
            return Some(s);
        }
    }
    None
}
