use crate::individual::{comm_probes, individual_runs, mean_improvement, warmup_state};
use crate::{Engine, EngineConfig, EngineError};
use commsched_collectives::Pattern;
use commsched_core::{JobId, JobNature, SelectorKind};
use commsched_topology::Tree;
use commsched_workload::{Job, JobLog, LogSpec, SystemModel};

fn job(id: u64, submit: u64, runtime: u64, nodes: usize) -> Job {
    Job {
        id: JobId(id),
        submit,
        runtime,
        walltime: runtime,
        nodes,
        nature: JobNature::ComputeIntensive,
        comm: Vec::new(),
    }
}

fn comm_job(id: u64, submit: u64, runtime: u64, nodes: usize, frac: f64) -> Job {
    Job {
        nature: JobNature::CommIntensive,
        comm: vec![(Pattern::Rhvd, frac)],
        ..job(id, submit, runtime, nodes)
    }
}

fn small_tree() -> Tree {
    Tree::regular_two_level(2, 2) // 4 nodes
}

#[test]
fn empty_log_runs() {
    let tree = small_tree();
    let engine = Engine::new(&tree, EngineConfig::new(SelectorKind::Default));
    let s = engine.run(&JobLog::new("empty", vec![])).unwrap();
    assert!(s.outcomes.is_empty());
    assert_eq!(s.makespan, 0);
    assert_eq!(s.throughput(), 0.0);
}

#[test]
fn single_job_runs_immediately() {
    let tree = small_tree();
    let engine = Engine::new(&tree, EngineConfig::new(SelectorKind::Default));
    let s = engine
        .run(&JobLog::new("one", vec![job(1, 5, 100, 2)]))
        .unwrap();
    let o = &s.outcomes[0];
    assert_eq!((o.submit, o.start, o.end), (5, 5, 105));
    assert_eq!(o.wait(), 0);
    assert_eq!(o.exec(), 100);
    assert_eq!(o.turnaround(), 100);
    assert_eq!(s.makespan, 105);
}

#[test]
fn fifo_order_without_backfill() {
    // Three full-machine jobs: strict serial execution in submit order.
    let tree = small_tree();
    let engine = Engine::new(
        &tree,
        EngineConfig::new(SelectorKind::Default).without_backfill(),
    );
    let log = JobLog::new(
        "serial",
        vec![job(1, 0, 50, 4), job(2, 1, 50, 4), job(3, 2, 50, 4)],
    );
    let s = engine.run(&log).unwrap();
    assert_eq!(s.outcome(JobId(1)).unwrap().start, 0);
    assert_eq!(s.outcome(JobId(2)).unwrap().start, 50);
    assert_eq!(s.outcome(JobId(3)).unwrap().start, 100);
    assert_eq!(s.makespan, 150);
    assert_eq!(s.total_wait_hours() * 3600.0, (49 + 98) as f64);
}

#[test]
fn small_job_backfills_without_delaying_head() {
    // J1 holds 3 of 4 nodes until t=100. J2 (4 nodes) must wait for it.
    // J3 (1 node, 50 s) fits in the hole and ends before J2's reservation.
    let tree = small_tree();
    let log = JobLog::new(
        "bf",
        vec![job(1, 0, 100, 3), job(2, 10, 100, 4), job(3, 20, 50, 1)],
    );
    let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .run(&log)
        .unwrap();
    assert_eq!(s.outcome(JobId(3)).unwrap().start, 20); // backfilled
    assert_eq!(s.outcome(JobId(2)).unwrap().start, 100); // not delayed

    // Without backfill J3 queues behind J2.
    let s2 = Engine::new(
        &tree,
        EngineConfig::new(SelectorKind::Default).without_backfill(),
    )
    .run(&log)
    .unwrap();
    assert_eq!(s2.outcome(JobId(3)).unwrap().start, 200);
}

#[test]
fn backfill_never_delays_the_reservation() {
    // A long small job may NOT backfill when it would outlive the head's
    // shadow time and eat into the head's nodes.
    let tree = small_tree();
    let log = JobLog::new(
        "bf2",
        vec![
            job(1, 0, 100, 3),
            job(2, 10, 100, 4), // head reservation at t=100
            job(3, 20, 500, 1), // would hold a node until 520 > 100
        ],
    );
    let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .run(&log)
        .unwrap();
    assert_eq!(s.outcome(JobId(2)).unwrap().start, 100);
    assert!(s.outcome(JobId(3)).unwrap().start >= 100);
}

#[test]
fn conservative_backfill_protects_every_reservation() {
    // J1 holds 3/4 nodes until t=100. J2 wants 4 (reserved at 100).
    // J3 wants 2 and would be reserved at 200 (after J2). J4 (1 node,
    // 30 s) may run now under BOTH policies. But a 1-node job lasting
    // 150 s (J5) may backfill under EASY using the "extra" rule only if
    // it doesn't eat J2's nodes — with 4 needed and 4 total, extra = 0,
    // so both policies agree here; the divergence shows at J3: EASY
    // ignores J3's reservation, conservative enforces it.
    let tree = small_tree();
    let log = JobLog::new(
        "cons",
        vec![
            job(1, 0, 100, 3),
            job(2, 10, 100, 4),
            job(3, 20, 100, 2),
            job(4, 30, 30, 1),
        ],
    );
    for make in [
        EngineConfig::new(SelectorKind::Default),
        EngineConfig::new(SelectorKind::Default).conservative_backfill(),
    ] {
        let s = Engine::new(&tree, make).run(&log).unwrap();
        // J4 fits in the hole and ends before J2's shadow time.
        assert_eq!(
            s.outcome(JobId(4)).unwrap().start,
            30,
            "{:?}",
            make.backfill
        );
        // J2 is never delayed past its reservation.
        assert_eq!(s.outcome(JobId(2)).unwrap().start, 100);
        // J3 runs after J2 (FIFO order preserved for equal contenders).
        assert_eq!(s.outcome(JobId(3)).unwrap().start, 200);
    }
}

#[test]
fn conservative_starts_multiple_where_fifo_stalls() {
    // Head blocked; two small jobs behind it both start immediately under
    // conservative backfill (each gets a reservation at `now`).
    let tree = small_tree();
    let log = JobLog::new(
        "cons2",
        vec![
            job(1, 0, 100, 3),
            job(2, 10, 100, 4),
            job(3, 20, 40, 1),
            job(4, 25, 40, 1),
        ],
    );
    let s = Engine::new(
        &tree,
        EngineConfig::new(SelectorKind::Default).conservative_backfill(),
    )
    .run(&log)
    .unwrap();
    assert_eq!(s.outcome(JobId(3)).unwrap().start, 20);
    // J4 arrives at 25; the single free node is taken by J3 until 60, and
    // starting at 60 would still end (100) by J2's reservation start (100).
    assert_eq!(s.outcome(JobId(4)).unwrap().start, 60);
    assert_eq!(s.outcome(JobId(2)).unwrap().start, 100);
}

#[test]
fn drained_nodes_reduce_capacity() {
    let tree = small_tree(); // 4 nodes
    let drained: Vec<commsched_topology::NodeId> =
        vec![commsched_topology::NodeId(0), commsched_topology::NodeId(1)];

    // A 3-node job no longer fits a 4-node machine with 2 drained.
    let err = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .drain_nodes(drained.clone())
        .run(&JobLog::new("d", vec![job(1, 0, 10, 3)]))
        .unwrap_err();
    assert_eq!(
        err,
        EngineError::JobTooLarge {
            job: JobId(1),
            nodes: 3,
            machine: 2
        }
    );

    // A 2-node job runs on the two healthy nodes; with all of leaf 0
    // drained it must serialize behind itself when two such jobs arrive.
    let log = JobLog::new("d2", vec![job(1, 0, 50, 2), job(2, 0, 50, 2)]);
    let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .drain_nodes(drained)
        .run(&log)
        .unwrap();
    let starts: Vec<u64> = {
        let mut v: Vec<u64> = s.outcomes.iter().map(|o| o.start).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(starts, vec![0, 50]); // forced serial: only 2 healthy nodes
}

#[test]
fn drain_dedups_and_zero_is_noop() {
    let tree = small_tree();
    let log = JobLog::new("d3", vec![job(1, 0, 10, 4)]);
    let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .drain_nodes(vec![])
        .run(&log)
        .unwrap();
    assert_eq!(s.outcomes.len(), 1);

    // Duplicate drain entries are tolerated.
    let n = commsched_topology::NodeId(3);
    let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .drain_nodes(vec![n, n, n])
        .run(&JobLog::new("d4", vec![job(1, 0, 10, 3)]))
        .unwrap();
    assert_eq!(s.outcomes.len(), 1);
}

#[test]
fn walltime_enforcement_clamps_runtimes() {
    let tree = small_tree();
    let mut j = job(1, 0, 500, 2);
    j.walltime = 300; // requested less than the true runtime
    let log = JobLog::new("wt", vec![j]);
    let s = Engine::new(
        &tree,
        EngineConfig::new(SelectorKind::Default).with_walltime_enforcement(),
    )
    .run(&log)
    .unwrap();
    assert_eq!(s.outcome(JobId(1)).unwrap().exec(), 300);

    // Without enforcement the full duration replays.
    let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .run(&log)
        .unwrap();
    assert_eq!(s.outcome(JobId(1)).unwrap().exec(), 500);
}

#[test]
fn rejects_oversized_job() {
    let tree = small_tree();
    let engine = Engine::new(&tree, EngineConfig::new(SelectorKind::Default));
    let err = engine
        .run(&JobLog::new("big", vec![job(1, 0, 10, 5)]))
        .unwrap_err();
    assert_eq!(
        err,
        EngineError::JobTooLarge {
            job: JobId(1),
            nodes: 5,
            machine: 4
        }
    );
}

#[test]
fn default_run_replays_original_runtimes() {
    // Under the default selector the Eq. 7 ratio is 1 by construction, so
    // the emulation replays the log durations exactly.
    let tree = Tree::regular_two_level(4, 8);
    let log = LogSpec::new(
        SystemModel {
            total_nodes: 32,
            min_request: 1,
            max_request: 16,
            name: "toy",
            pow2_fraction: 0.9,
            mean_interarrival: 100.0,
            runtime_median: 600.0,
            runtime_sigma: 0.8,
            walltime_slack: 1.5,
        },
        80,
        3,
    )
    .comm_percent(90)
    .generate();
    let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .run(&log)
        .unwrap();
    for o in &s.outcomes {
        assert_eq!(o.runtime_adjusted, o.runtime_original, "{:?}", o.id);
        if o.nature.is_comm() && o.nodes > 1 {
            assert!(o.cost_actual > 0.0);
            assert_eq!(o.cost_actual, o.cost_default);
        }
    }
}

#[test]
fn eq7_adjustment_matches_cost_ratio() {
    // Occupy the cluster asymmetrically, then place one comm job with each
    // selector and check T' = T_compute + T_comm * (cost/cost_default).
    let tree = Tree::regular_two_level(4, 8);
    let mut warm_jobs = vec![comm_job(100, 0, 100_000, 6, 0.5)];
    warm_jobs.push(comm_job(101, 0, 100_000, 3, 0.5));
    let probe = comm_job(1, 0, 10_000, 8, 0.5);
    let mut all = warm_jobs.clone();
    all.push(probe.clone());
    let log = JobLog::new("warm", all);

    for kind in SelectorKind::ALL {
        let cfg = EngineConfig::new(kind);
        let s = Engine::new(&tree, cfg).run(&log).unwrap();
        let o = s.outcome(JobId(1)).unwrap();
        let want = (10_000.0 * 0.5 + 10_000.0 * 0.5 * o.comm_ratio).round() as u64;
        assert_eq!(o.runtime_adjusted, want, "{kind}");
        if kind == SelectorKind::Default {
            assert_eq!(o.comm_ratio, 1.0);
            assert_eq!(o.cost_actual, o.cost_default);
        }
        if kind == SelectorKind::Adaptive || kind == SelectorKind::Balanced {
            assert!(
                o.comm_ratio <= 1.0 + 1e-9,
                "{kind} worsened the job: {}",
                o.comm_ratio
            );
        }
    }
}

#[test]
fn place_matches_naive_clone_replication() {
    // The fused evaluator path in `place()` must reproduce, bit for bit,
    // what the naive implementation computed: clone the state, allocate the
    // what-if job, and run `job_cost` once per component per cost model.
    use commsched_collectives::CollectiveSpec;
    use commsched_core::{
        AllocRequest, ClusterState, CostModel, DefaultTreeSelector, NodeSelector,
    };

    let tree = Tree::regular_two_level(6, 8);
    let mut probe = comm_job(1, 0, 10_000, 10, 0.6);
    probe.comm = vec![
        (Pattern::Rhvd, 0.3),
        (Pattern::Rd, 0.2),
        (Pattern::Alltoall, 0.1),
    ];

    for kind in SelectorKind::ALL {
        let cfg = EngineConfig::new(kind);
        let engine = Engine::new(&tree, cfg);

        // A partially occupied, contended state.
        let mut state = ClusterState::new(&tree);
        for (i, j) in [comm_job(50, 0, 1, 7, 0.5), comm_job(51, 0, 1, 5, 0.5)]
            .iter()
            .enumerate()
        {
            let sel = engine.build_selector();
            let req = AllocRequest::comm(j.id, j.nodes);
            let nodes = sel.select(&tree, &state, &req).unwrap();
            state
                .allocate(&tree, JobId(50 + i as u64), &nodes, j.nature)
                .unwrap();
        }

        let selector = engine.build_selector();
        let placed = engine
            .place(&state, &probe, selector.as_ref(), &[], 0)
            .unwrap();

        // Naive replication (selectors are deterministic, so re-selecting
        // from the same state reproduces the allocation).
        let req = AllocRequest {
            job: probe.id,
            nodes: probe.nodes,
            nature: probe.nature,
            pattern: probe
                .comm
                .first()
                .map(|(p, _)| CollectiveSpec::new(*p, cfg.msize)),
            attempt: 0,
        };
        let nodes = selector.select(&tree, &state, &req).unwrap();
        assert_eq!(nodes, placed.nodes, "{kind}: allocation changed");
        let default_nodes = if kind == SelectorKind::Default {
            nodes.clone()
        } else {
            DefaultTreeSelector.select(&tree, &state, &req).unwrap()
        };
        let what_if = |alloc: &[commsched_topology::NodeId]| {
            let mut s = state.clone();
            s.allocate(&tree, JobId(u64::MAX), alloc, JobNature::CommIntensive)
                .unwrap();
            s
        };
        let state_actual = what_if(&nodes);
        let state_default = what_if(&default_nodes);
        let mut cost_actual = 0.0;
        let mut cost_default = 0.0;
        let mut adjusted = probe.runtime as f64 * (1.0 - probe.comm_fraction());
        for &(pattern, fraction) in &probe.comm {
            let spec = CollectiveSpec::new(pattern, cfg.msize);
            cost_actual += cfg.cost_model.job_cost(&tree, &state_actual, &nodes, &spec);
            cost_default += cfg
                .cost_model
                .job_cost(&tree, &state_default, &default_nodes, &spec);
            let ca = cfg
                .ratio_model
                .job_cost(&tree, &state_actual, &nodes, &spec);
            let cd = cfg
                .ratio_model
                .job_cost(&tree, &state_default, &default_nodes, &spec);
            let ratio = if cd > 0.0 { ca / cd } else { 1.0 };
            adjusted += probe.runtime as f64 * fraction * ratio;
        }

        assert_eq!(
            placed.cost_actual.to_bits(),
            cost_actual.to_bits(),
            "{kind}: cost_actual diverged from naive ({} vs {})",
            placed.cost_actual,
            cost_actual
        );
        assert_eq!(
            placed.cost_default.to_bits(),
            cost_default.to_bits(),
            "{kind}: cost_default diverged from naive ({} vs {})",
            placed.cost_default,
            cost_default
        );
        assert_eq!(
            placed.adjusted,
            adjusted.round().max(1.0) as u64,
            "{kind}: adjusted runtime diverged from naive"
        );
        // Exercising a non-fused discount pair (cost model keeps ½, ratio
        // model prices a flat trunk) must agree with its own naive run too.
        let flat = CostModel {
            trunk_discount: 1.0,
            ..cfg.ratio_model
        };
        let cfg2 = EngineConfig {
            ratio_model: flat,
            ..cfg
        };
        let engine2 = Engine::new(&tree, cfg2);
        let placed2 = engine2
            .place(&state, &probe, selector.as_ref(), &[], 0)
            .unwrap();
        let mut adjusted2 = probe.runtime as f64 * (1.0 - probe.comm_fraction());
        for &(pattern, fraction) in &probe.comm {
            let spec = CollectiveSpec::new(pattern, cfg.msize);
            let ca = flat.job_cost(&tree, &state_actual, &nodes, &spec);
            let cd = flat.job_cost(&tree, &state_default, &default_nodes, &spec);
            let ratio = if cd > 0.0 { ca / cd } else { 1.0 };
            adjusted2 += probe.runtime as f64 * fraction * ratio;
        }
        assert_eq!(
            placed2.cost_actual.to_bits(),
            cost_actual.to_bits(),
            "{kind}"
        );
        assert_eq!(
            placed2.adjusted,
            adjusted2.round().max(1.0) as u64,
            "{kind}: non-fused adjusted runtime diverged from naive"
        );
    }
}

#[test]
fn no_oversubscription_at_any_instant() {
    let tree = Tree::regular_two_level(3, 4); // 12 nodes
    let log = LogSpec::new(
        SystemModel {
            total_nodes: 12,
            min_request: 1,
            max_request: 8,
            name: "toy",
            pow2_fraction: 0.8,
            mean_interarrival: 50.0,
            runtime_median: 300.0,
            runtime_sigma: 1.0,
            walltime_slack: 1.5,
        },
        120,
        7,
    )
    .generate();
    for kind in SelectorKind::ALL {
        let s = Engine::new(&tree, EngineConfig::new(kind))
            .run(&log)
            .unwrap();
        assert_eq!(s.outcomes.len(), 120);
        // At every job start, the set of overlapping jobs fits the machine.
        for o in &s.outcomes {
            let in_use: usize = s
                .outcomes
                .iter()
                .filter(|p| p.start <= o.start && o.start < p.end)
                .map(|p| p.nodes)
                .sum();
            assert!(in_use <= 12, "{kind}: {in_use} nodes in use at {}", o.start);
        }
        // Sanity on ordering metrics.
        for o in &s.outcomes {
            assert!(o.start >= o.submit && o.end > o.start);
        }
    }
}

#[test]
fn utilization_timeline_accounts_node_seconds() {
    // One 4-node job for 100 s then one 2-node job for 100 s on a 4-node
    // machine: first half 100% busy, second half 50%.
    let tree = small_tree();
    let log = JobLog::new("u", vec![job(1, 0, 100, 4), job(2, 0, 100, 2)]);
    let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .run(&log)
        .unwrap();
    assert_eq!(s.makespan, 200);
    let u = s.utilization(4, 2);
    assert_eq!(u.len(), 2);
    assert_eq!(u[0], (0, 1.0));
    assert_eq!(u[1], (100, 0.5));
    assert_eq!(s.peak_utilization(4), 1.0);
    // Utilization can never exceed 1.
    for (_, frac) in s.utilization(4, 7) {
        assert!(frac <= 1.0 + 1e-9);
    }
    // Empty run -> empty timeline.
    let empty = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .run(&JobLog::new("e", vec![]))
        .unwrap();
    assert!(empty.utilization(4, 10).is_empty());
}

#[test]
fn runs_are_deterministic() {
    let tree = Tree::regular_two_level(4, 8);
    let log = LogSpec::new(SystemModel::theta(), 60, 5).generate();
    // Shrink requests to fit the toy tree.
    let jobs: Vec<Job> = log
        .jobs
        .iter()
        .map(|j| Job {
            nodes: j.nodes.clamp(1, 32),
            ..j.clone()
        })
        .collect();
    let log = JobLog::new("det", jobs);
    for kind in SelectorKind::ALL {
        let a = Engine::new(&tree, EngineConfig::new(kind))
            .run(&log)
            .unwrap();
        let b = Engine::new(&tree, EngineConfig::new(kind))
            .run(&log)
            .unwrap();
        assert_eq!(a, b, "{kind}");
    }
}

#[test]
fn warmup_reaches_target_occupancy() {
    let tree = Tree::regular_two_level(4, 8);
    let log = LogSpec::new(
        SystemModel {
            total_nodes: 32,
            min_request: 2,
            max_request: 8,
            name: "toy",
            pow2_fraction: 1.0,
            mean_interarrival: 10.0,
            runtime_median: 600.0,
            runtime_sigma: 0.5,
            walltime_slack: 1.2,
        },
        100,
        9,
    )
    .comm_percent(50)
    .generate();
    let state = warmup_state(&tree, &log, 0.5);
    assert!(state.busy_total() >= 16);
    assert!(state.free_total() > 0);
    state.check_invariants(&tree).unwrap();
}

#[test]
fn individual_runs_compare_from_identical_state() {
    let tree = Tree::regular_two_level(4, 8);
    let log = LogSpec::new(
        SystemModel {
            total_nodes: 32,
            min_request: 2,
            max_request: 8,
            name: "toy",
            pow2_fraction: 1.0,
            mean_interarrival: 10.0,
            runtime_median: 600.0,
            runtime_sigma: 0.5,
            walltime_slack: 1.2,
        },
        200,
        11,
    )
    .comm_percent(90)
    .generate();
    let state = warmup_state(&tree, &log, 0.4);
    let probes = comm_probes(&log, 40);
    assert!(!probes.is_empty());
    let outcomes = individual_runs(
        &tree,
        &state,
        &probes,
        EngineConfig::new(SelectorKind::Default),
    );
    assert!(!outcomes.is_empty());
    for o in &outcomes {
        assert_eq!(o.placements.len(), 4);
        // Default improvement over itself is zero.
        assert_eq!(o.improvement_over_default(SelectorKind::Default), 0.0);
        // Adaptive never does worse than the better of greedy/balanced.
        let by = |k: SelectorKind| {
            o.placements
                .iter()
                .find(|p| p.selector == k.name())
                .unwrap()
                .runtime_adjusted
        };
        assert!(
            by(SelectorKind::Adaptive) <= by(SelectorKind::Greedy).min(by(SelectorKind::Balanced)),
            "adaptive worse than both components for {:?}",
            o.job
        );
    }
    // Mean improvements: adaptive >= balanced-or-greedy is not guaranteed
    // in aggregate, but no proposed algorithm should *hurt* on average
    // from an identical state with this mild warm-up.
    for kind in [SelectorKind::Balanced, SelectorKind::Adaptive] {
        let imp = mean_improvement(&outcomes, kind);
        assert!(imp >= -1e-9, "{kind} mean improvement {imp}");
    }
}

#[test]
fn wait_times_fall_when_runtimes_shrink() {
    // A saturated toy cluster: if balanced cuts comm-job runtimes, total
    // wait time must not exceed the default run's.
    let tree = Tree::regular_two_level(2, 8); // 16 nodes
    let mut jobs = Vec::new();
    for i in 0..40u64 {
        jobs.push(comm_job(i + 1, i * 30, 2_000, 8, 0.7));
    }
    let log = JobLog::new("sat", jobs);
    let d = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .run(&log)
        .unwrap();
    let b = Engine::new(&tree, EngineConfig::new(SelectorKind::Balanced))
        .run(&log)
        .unwrap();
    assert!(
        b.total_exec_hours() <= d.total_exec_hours() + 1e-9,
        "balanced exec {} vs default {}",
        b.total_exec_hours(),
        d.total_exec_hours()
    );
    assert!(
        b.total_wait_hours() <= d.total_wait_hours() + 1e-9,
        "balanced wait {} vs default {}",
        b.total_wait_hours(),
        d.total_wait_hours()
    );
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any synthetic toy log completes: every job gets exactly one
        /// outcome with submit <= start < end, under every selector.
        #[test]
        fn all_jobs_complete(seed in any::<u64>(), pct in 0u8..=100) {
            let tree = Tree::regular_two_level(3, 6); // 18 nodes
            let log = LogSpec::new(
                SystemModel {
                    total_nodes: 18,
                    min_request: 1,
                    max_request: 16,
                    name: "toy",
                    pow2_fraction: 0.7,
                    mean_interarrival: 60.0,
                    runtime_median: 400.0,
                    runtime_sigma: 1.0,
                    walltime_slack: 1.6,
                },
                60,
                seed,
            )
            .comm_percent(pct)
            .generate();
            for kind in SelectorKind::ALL {
                let s = Engine::new(&tree, EngineConfig::new(kind)).run(&log).unwrap();
                prop_assert_eq!(s.outcomes.len(), 60);
                let mut ids: Vec<u64> = s.outcomes.iter().map(|o| o.id.0).collect();
                ids.sort_unstable();
                ids.dedup();
                prop_assert_eq!(ids.len(), 60);
                for o in &s.outcomes {
                    prop_assert!(o.submit <= o.start);
                    prop_assert!(o.start < o.end);
                }
            }
        }

        /// Conservative backfilling never delays any job past the start it
        /// would get under strict FIFO with the same (replayed) runtimes,
        /// and like EASY it cannot hurt the total wait.
        #[test]
        fn conservative_never_worse_than_fifo(seed in any::<u64>()) {
            let tree = Tree::regular_two_level(3, 6);
            let log = LogSpec::new(
                SystemModel {
                    total_nodes: 18,
                    min_request: 1,
                    max_request: 18,
                    name: "toy",
                    pow2_fraction: 0.6,
                    mean_interarrival: 30.0,
                    runtime_median: 500.0,
                    runtime_sigma: 1.0,
                    walltime_slack: 1.0,
                },
                50,
                seed,
            )
            .generate();
            let fifo = Engine::new(
                &tree,
                EngineConfig::new(SelectorKind::Default)
                    .without_backfill()
                    .without_adjustment(),
            )
            .run(&log)
            .unwrap();
            let cons = Engine::new(
                &tree,
                EngineConfig::new(SelectorKind::Default)
                    .conservative_backfill()
                    .without_adjustment(),
            )
            .run(&log)
            .unwrap();
            prop_assert!(cons.total_wait_hours() <= fifo.total_wait_hours() + 1e-9);
            // With exact walltimes, no single job starts later than FIFO.
            for o in &cons.outcomes {
                let f = fifo.outcome(o.id).unwrap();
                prop_assert!(
                    o.start <= f.start,
                    "{:?} delayed: conservative {} vs fifo {}",
                    o.id, o.start, f.start
                );
            }
        }

        /// Draining random nodes never breaks a run: jobs that fit the
        /// reduced capacity all complete and never overlap beyond it.
        #[test]
        fn drained_runs_complete(seed in any::<u64>(), drain in 0usize..10) {
            let tree = Tree::regular_two_level(3, 6); // 18 nodes
            let healthy = 18 - drain;
            let log = LogSpec::new(
                SystemModel {
                    total_nodes: 18,
                    min_request: 1,
                    max_request: healthy.max(1),
                    name: "toy",
                    pow2_fraction: 0.5,
                    mean_interarrival: 40.0,
                    runtime_median: 300.0,
                    runtime_sigma: 0.8,
                    walltime_slack: 1.4,
                },
                40,
                seed,
            )
            .generate();
            let drained: Vec<commsched_topology::NodeId> =
                (0..drain).map(|i| commsched_topology::NodeId(i * 2)).collect();
            let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Adaptive))
                .drain_nodes(drained)
                .run(&log)
                .unwrap();
            prop_assert_eq!(s.outcomes.len(), 40);
            for o in &s.outcomes {
                let in_use: usize = s
                    .outcomes
                    .iter()
                    .filter(|p| p.start <= o.start && o.start < p.end)
                    .map(|p| p.nodes)
                    .sum();
                prop_assert!(in_use <= healthy, "{in_use} > {healthy} healthy nodes");
            }
        }

        /// Backfill can only improve (or preserve) every job's start time
        /// when runtimes are not adjusted (pure replay), relative to FIFO.
        /// (With Eq. 7 feedback the comparison is not monotone, so we pin
        /// adjustment off.)
        #[test]
        fn backfill_helps_total_wait(seed in any::<u64>()) {
            let tree = Tree::regular_two_level(3, 6);
            let log = LogSpec::new(
                SystemModel {
                    total_nodes: 18,
                    min_request: 1,
                    max_request: 18,
                    name: "toy",
                    pow2_fraction: 0.6,
                    mean_interarrival: 30.0,
                    runtime_median: 500.0,
                    runtime_sigma: 1.0,
                    walltime_slack: 1.0, // exact walltimes: EASY is conservative-safe
                },
                50,
                seed,
            )
            .generate();
            let fifo = Engine::new(
                &tree,
                EngineConfig::new(SelectorKind::Default)
                    .without_backfill()
                    .without_adjustment(),
            )
            .run(&log)
            .unwrap();
            let easy = Engine::new(
                &tree,
                EngineConfig::new(SelectorKind::Default).without_adjustment(),
            )
            .run(&log)
            .unwrap();
            prop_assert!(easy.total_wait_hours() <= fifo.total_wait_hours() + 1e-9);
        }
    }
}

#[test]
fn event_trace_is_ordered_and_balanced() {
    let tree = small_tree();
    let log = JobLog::new(
        "tr",
        vec![job(1, 0, 100, 3), job(2, 10, 100, 4), job(3, 20, 50, 1)],
    );
    let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .run(&log)
        .unwrap();
    let events = s.events();
    assert_eq!(events.len(), 6);
    // Chronological, starts before finishes at equal t.
    for w in events.windows(2) {
        assert!((w[0].t, !w[0].start) <= (w[1].t, !w[1].start));
    }
    // Every job starts exactly once and finishes exactly once.
    let starts = events.iter().filter(|e| e.start).count();
    assert_eq!(starts, 3);
    // JSON lines parse back.
    for line in s.to_json_lines().lines() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert!(v["t"].is_u64());
        assert!(v["event"] == "start" || v["event"] == "finish");
    }
}

mod faults {
    use super::*;
    use crate::{FailurePolicy, JobStatus};
    use commsched_workload::fault::{FaultEvent, FaultKind, FaultTrace};

    fn trace(events: &[(u64, usize, FaultKind)]) -> FaultTrace {
        FaultTrace::new(
            events
                .iter()
                .map(|&(t, node, kind)| FaultEvent { t, node, kind })
                .collect(),
        )
    }

    #[test]
    fn empty_trace_is_bit_identical() {
        let tree = Tree::regular_two_level(3, 6);
        let log = LogSpec::new(
            SystemModel {
                total_nodes: 18,
                min_request: 1,
                max_request: 16,
                ..SystemModel::theta()
            },
            40,
            7,
        )
        .comm_percent(60)
        .generate();
        for kind in SelectorKind::ALL {
            let plain = Engine::new(&tree, EngineConfig::new(kind))
                .run(&log)
                .unwrap();
            let faulty = Engine::new(&tree, EngineConfig::new(kind))
                .with_faults(FaultTrace::empty())
                .run(&log)
                .unwrap();
            assert_eq!(plain, faulty);
        }
    }

    #[test]
    fn fail_cancels_running_job() {
        let tree = small_tree();
        let cfg =
            EngineConfig::new(SelectorKind::Default).with_failure_policy(FailurePolicy::Cancel);
        let s = Engine::new(&tree, cfg)
            .with_faults(trace(&[(30, 0, FaultKind::Fail)]))
            .run(&JobLog::new("one", vec![job(1, 0, 100, 4)]))
            .unwrap();
        let o = &s.outcomes[0];
        assert_eq!(o.status, JobStatus::Cancelled);
        assert_eq!((o.start, o.end), (0, 30));
        assert_eq!(o.retries, 0);
        assert_eq!(o.lost_node_seconds, 30 * 4);
        assert_eq!(s.count_status(JobStatus::Cancelled), 1);
        assert!(s.lost_node_hours() > 0.0);
    }

    #[test]
    fn fail_requeues_and_job_completes_after_recovery() {
        let tree = small_tree();
        let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
            .with_faults(trace(&[
                (30, 2, FaultKind::Fail),
                (50, 2, FaultKind::Recover),
            ]))
            .run(&JobLog::new("one", vec![job(1, 0, 100, 4)]))
            .unwrap();
        let o = &s.outcomes[0];
        assert_eq!(o.status, JobStatus::Completed);
        // Killed at 30, requeued; 4 nodes only available again at 50.
        assert_eq!((o.start, o.end), (50, 150));
        assert_eq!(o.retries, 1);
        assert_eq!(o.lost_node_seconds, 30 * 4);
        assert_eq!(s.total_retries(), 1);
        assert_eq!(s.makespan, 150);
    }

    #[test]
    fn requeue_with_backoff_delays_resubmission() {
        let tree = small_tree();
        let cfg =
            EngineConfig::new(SelectorKind::Default).with_failure_policy(FailurePolicy::Requeue {
                max_retries: 3,
                backoff: 100,
            });
        let s = Engine::new(&tree, cfg)
            .with_faults(trace(&[
                (30, 2, FaultKind::Fail),
                (40, 2, FaultKind::Recover),
            ]))
            .run(&JobLog::new("one", vec![job(1, 0, 100, 4)]))
            .unwrap();
        let o = &s.outcomes[0];
        // Resubmitted at 130 (kill + backoff), machine healthy by then.
        assert_eq!(o.status, JobStatus::Completed);
        assert_eq!((o.start, o.end), (130, 230));
    }

    #[test]
    fn exhausted_retries_cancel() {
        let tree = small_tree();
        let cfg =
            EngineConfig::new(SelectorKind::Default).with_failure_policy(FailurePolicy::Requeue {
                max_retries: 0,
                backoff: 0,
            });
        let s = Engine::new(&tree, cfg)
            .with_faults(trace(&[(30, 1, FaultKind::Fail)]))
            .run(&JobLog::new("one", vec![job(1, 0, 100, 4)]))
            .unwrap();
        assert_eq!(s.outcomes[0].status, JobStatus::Cancelled);
        assert_eq!(s.outcomes[0].end, 30);
    }

    #[test]
    fn requeue_front_restarts_before_queue() {
        let tree = small_tree();
        let mk = |policy| {
            let cfg = EngineConfig::new(SelectorKind::Default).with_failure_policy(policy);
            Engine::new(&tree, cfg)
                .with_faults(trace(&[
                    (30, 0, FaultKind::Fail),
                    (40, 0, FaultKind::Recover),
                ]))
                .run(&JobLog::new(
                    "two",
                    vec![job(1, 0, 100, 4), job(2, 10, 100, 4)],
                ))
                .unwrap()
        };
        // Front: the killed job restarts first.
        let front = mk(FailurePolicy::RequeueFront);
        assert_eq!(front.outcome(JobId(1)).unwrap().start, 40);
        assert_eq!(front.outcome(JobId(2)).unwrap().start, 140);
        // Back (default): the killed job waits behind the queued one.
        let back = mk(FailurePolicy::default());
        assert_eq!(back.outcome(JobId(2)).unwrap().start, 40);
        assert_eq!(back.outcome(JobId(1)).unwrap().start, 140);
    }

    #[test]
    fn drain_waits_for_job_then_downs_node() {
        let tree = small_tree();
        let log = JobLog::new(
            "mix",
            vec![job(1, 0, 100, 4), job(2, 20, 10, 4), job(3, 25, 10, 3)],
        );
        let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
            .with_faults(trace(&[(10, 0, FaultKind::Drain)]))
            .run(&log)
            .unwrap();
        // The drain does not kill job 1: it runs its full 100 s.
        let o1 = s.outcome(JobId(1)).unwrap();
        assert_eq!((o1.status, o1.end), (JobStatus::Completed, 100));
        // Afterwards only 3 nodes survive: job 2 (4 nodes) can never run
        // and is rejected; job 3 backfills past the stuck head.
        let o2 = s.outcome(JobId(2)).unwrap();
        assert_eq!(o2.status, JobStatus::Rejected);
        let o3 = s.outcome(JobId(3)).unwrap();
        assert_eq!((o3.status, o3.start), (JobStatus::Completed, 100));
    }

    #[test]
    fn fail_on_idle_node_is_a_plain_capacity_loss() {
        let tree = small_tree();
        let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
            .with_faults(trace(&[(5, 3, FaultKind::Fail)]))
            .run(&JobLog::new("one", vec![job(1, 10, 50, 3)]))
            .unwrap();
        // 3 of 4 nodes survive; the 3-node job still runs on time.
        let o = &s.outcomes[0];
        assert_eq!((o.status, o.start), (JobStatus::Completed, 10));
    }

    #[test]
    fn redundant_transitions_are_tolerated() {
        let tree = small_tree();
        let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
            .with_faults(trace(&[
                (5, 0, FaultKind::Fail),
                (6, 0, FaultKind::Fail),    // already down
                (7, 1, FaultKind::Recover), // already up
                (8, 0, FaultKind::Drain),   // down stays down
                (9, 0, FaultKind::Recover),
            ]))
            .run(&JobLog::new("one", vec![job(1, 20, 10, 4)]))
            .unwrap();
        assert_eq!(s.outcomes[0].status, JobStatus::Completed);
    }

    #[test]
    fn oversized_reject_policy_keeps_others_running() {
        let tree = small_tree();
        let cfg = EngineConfig::new(SelectorKind::Default).reject_oversized();
        let log = JobLog::new("mix", vec![job(1, 0, 50, 9), job(2, 5, 50, 2)]);
        let s = Engine::new(&tree, cfg).run(&log).unwrap();
        let o1 = s.outcome(JobId(1)).unwrap();
        assert_eq!(o1.status, JobStatus::Rejected);
        assert_eq!((o1.start, o1.end), (0, 0));
        let o2 = s.outcome(JobId(2)).unwrap();
        assert_eq!((o2.status, o2.start), (JobStatus::Completed, 5));
        assert_eq!(s.count_status(JobStatus::Rejected), 1);
        assert_eq!(s.count_status(JobStatus::Completed), 1);
    }

    #[test]
    fn validation_rejects_degenerate_input() {
        let tree = small_tree();
        let cfg = EngineConfig::new(SelectorKind::Default);
        // Duplicate job ids.
        let dup = JobLog::new("dup", vec![job(7, 0, 10, 1), job(7, 1, 10, 1)]);
        assert_eq!(
            Engine::new(&tree, cfg).run(&dup),
            Err(EngineError::DuplicateJob(JobId(7)))
        );
        // Zero-node job.
        let zero = JobLog::new("zero", vec![job(1, 0, 10, 0)]);
        assert_eq!(
            Engine::new(&tree, cfg).run(&zero),
            Err(EngineError::ZeroNodeJob(JobId(1)))
        );
        // Fault trace naming a node outside the machine.
        let err = Engine::new(&tree, cfg)
            .with_faults(trace(&[(1, 99, FaultKind::Fail)]))
            .run(&JobLog::new("ok", vec![job(1, 0, 10, 1)]))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidFaultTrace(_)));
        // Drain list naming a node outside the machine.
        let err = Engine::new(&tree, cfg)
            .drain_nodes(vec![commsched_topology::NodeId(99)])
            .run(&JobLog::new("ok", vec![job(1, 0, 10, 1)]))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::NodeOutOfRange {
                node: 99,
                machine: 4
            }
        );
    }

    #[test]
    fn conservative_backfill_survives_permanent_capacity_loss() {
        let tree = small_tree();
        let cfg = EngineConfig::new(SelectorKind::Default).conservative_backfill();
        let log = JobLog::new(
            "mix",
            vec![job(1, 0, 100, 4), job(2, 20, 10, 4), job(3, 25, 10, 2)],
        );
        let s = Engine::new(&tree, cfg)
            .with_faults(trace(&[(10, 0, FaultKind::Drain)]))
            .run(&log)
            .unwrap();
        // Job 2 can never fit the surviving 3 nodes: no reservation, no
        // panic, rejected at the end; job 3 still runs.
        assert_eq!(s.outcome(JobId(2)).unwrap().status, JobStatus::Rejected);
        assert_eq!(s.outcome(JobId(3)).unwrap().status, JobStatus::Completed);
    }

    #[test]
    fn walltime_enforcement_composes_with_requeue() {
        let tree = small_tree();
        let cfg = EngineConfig::new(SelectorKind::Default).with_walltime_enforcement();
        let s = Engine::new(&tree, cfg)
            .with_faults(trace(&[
                (30, 0, FaultKind::Fail),
                (35, 0, FaultKind::Recover),
            ]))
            .run(&JobLog::new("one", vec![job(1, 0, 100, 4)]))
            .unwrap();
        let o = &s.outcomes[0];
        assert_eq!(o.status, JobStatus::Completed);
        assert_eq!(o.end - o.start, 100);
    }

    #[test]
    fn switch_down_kills_subtree_and_requeue_waits_for_recovery() {
        // A whole-machine job dies when one leaf switch goes dark; the
        // requeued copy cannot restart until the switch returns, because
        // the masked leaf's nodes never re-enter the free counters early.
        let tree = small_tree();
        let leaf0 = tree.leaf(0).0;
        let cfg = EngineConfig::new(SelectorKind::Default);
        let s = Engine::new(&tree, cfg)
            .with_faults(trace(&[
                (30, leaf0, FaultKind::SwitchDown),
                (60, leaf0, FaultKind::SwitchUp),
            ]))
            .run(&JobLog::new("one", vec![job(1, 0, 100, 4)]))
            .unwrap();
        let o = &s.outcomes[0];
        assert_eq!(o.status, JobStatus::Completed);
        assert_eq!((o.start, o.end), (60, 160));
        assert_eq!(o.retries, 1);
        assert_eq!(o.lost_node_seconds, 30 * 4);
        assert_eq!(s.makespan, 160);
    }

    #[test]
    fn scheduler_places_around_downed_switch() {
        // Graceful degradation: with one leaf masked, a job that fits the
        // surviving subtree starts immediately on it.
        let tree = small_tree();
        let leaf0 = tree.leaf(0).0;
        let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
            .with_faults(trace(&[
                (10, leaf0, FaultKind::SwitchDown),
                (200, leaf0, FaultKind::SwitchUp),
            ]))
            .run(&JobLog::new("one", vec![job(1, 20, 5, 2)]))
            .unwrap();
        let o = &s.outcomes[0];
        assert_eq!(o.status, JobStatus::Completed);
        assert_eq!((o.start, o.end), (20, 25));
        assert_eq!(o.retries, 0);
    }

    #[test]
    fn degraded_links_stretch_comm_runtime_until_restored() {
        use commsched_topology::NodeId;
        let tree = small_tree();
        // Halve every node uplink so the job's routes are degraded no
        // matter which leaf the selector picks.
        let degrade: Vec<(u64, usize, FaultKind)> = (0..tree.num_nodes())
            .map(|n| {
                (
                    0,
                    tree.node_uplink(NodeId(n)),
                    FaultKind::LinkDegrade { permille: 500 },
                )
            })
            .collect();
        let log = JobLog::new("one", vec![comm_job(1, 10, 100, 2, 0.5)]);

        // Degraded fabric: the 50% comm fraction runs at half speed, so
        // 50s compute + 100s communication = 150s.
        let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
            .with_faults(trace(&degrade))
            .run(&log)
            .unwrap();
        assert_eq!(s.outcomes[0].status, JobStatus::Completed);
        assert_eq!(s.outcomes[0].end - s.outcomes[0].start, 150);

        // Repairing the cables before the job starts restores the
        // nominal 100s runtime exactly (division by 1.0 is a no-op).
        let mut repaired = degrade.clone();
        repaired.extend(
            (0..tree.num_nodes()).map(|n| (5, tree.node_uplink(NodeId(n)), FaultKind::LinkRestore)),
        );
        let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
            .with_faults(trace(&repaired))
            .run(&log)
            .unwrap();
        assert_eq!(s.outcomes[0].end - s.outcomes[0].start, 100);
    }

    #[test]
    fn mixed_domain_chaos_is_deterministic() {
        use commsched_metrics::Registry;
        use commsched_trace::Capture;

        // Node churn, correlated switch outages and degraded cables all
        // at once: two runs of the same chaos must agree byte-for-byte on
        // trace, report and summary, and every job must reach a terminal
        // outcome.
        let tree = Tree::regular_two_level(3, 6);
        let log = LogSpec::new(
            SystemModel {
                total_nodes: 18,
                min_request: 1,
                max_request: 12,
                ..SystemModel::theta()
            },
            60,
            11,
        )
        .comm_percent(70)
        .generate();
        let horizon = log
            .jobs
            .iter()
            .map(|j| j.submit + j.walltime)
            .max()
            .unwrap_or(0)
            .saturating_mul(2)
            .max(1);
        let node = FaultTrace::mtbf(tree.num_nodes(), 30_000.0, 4_000.0, horizon, 3).unwrap();
        let switches =
            FaultTrace::switch_mtbf(tree.num_switches(), 60_000.0, 6_000.0, horizon, 4).unwrap();
        let root = tree.root().0;
        let switches = FaultTrace::new(
            switches
                .events()
                .iter()
                .filter(|e| e.node != root)
                .copied()
                .collect(),
        );
        let links = FaultTrace::link_degrade(
            tree.num_directed_links(),
            20_000.0,
            5_000.0,
            400,
            horizon,
            5,
        )
        .unwrap();
        let faults = node.merge(switches).merge(links);

        let run = || {
            let cfg = EngineConfig::new(SelectorKind::Adaptive).with_failure_policy(
                FailurePolicy::Requeue {
                    max_retries: 3,
                    backoff: 10,
                },
            );
            let engine = Engine::new(&tree, cfg).with_faults(faults.clone());
            let mut cap = Capture::new();
            let mut reg = Registry::new();
            let s = engine.run_observed(&log, &mut cap, &mut reg).unwrap();
            (s, cap.to_jsonl(), reg.snapshot().to_json_pretty())
        };
        let (s1, j1, r1) = run();
        let (s2, j2, r2) = run();
        assert_eq!(s1, s2, "summary not replay-stable under mixed chaos");
        assert_eq!(j1, j2, "trace not replay-stable under mixed chaos");
        assert_eq!(r1, r2, "report not replay-stable under mixed chaos");

        assert_eq!(s1.outcomes.len(), log.jobs.len());
        // The chaos actually exercised all three fault domains.
        assert!(j1.contains("\"ev\":\"fault\""), "no node-fault events");
        assert!(
            j1.contains("\"ev\":\"switch_fault\""),
            "no switch-fault events"
        );
        assert!(j1.contains("\"ev\":\"link_fault\""), "no link-fault events");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// (a) An empty fault trace leaves every RunSummary bit-equal
            /// to the failure-free engine, for every selector.
            #[test]
            fn empty_trace_changes_nothing(seed in any::<u64>(), pct in 0u8..=100) {
                let tree = Tree::regular_two_level(3, 6);
                let log = LogSpec::new(
                    SystemModel {
                        total_nodes: 18,
                        min_request: 1,
                        max_request: 8,
                        ..SystemModel::theta()
                    },
                    25,
                    seed,
                )
                .comm_percent(pct)
                .generate();
                for kind in SelectorKind::ALL {
                    let plain = Engine::new(&tree, EngineConfig::new(kind))
                        .run(&log)
                        .unwrap();
                    let faulty = Engine::new(&tree, EngineConfig::new(kind))
                        .with_faults(FaultTrace::empty())
                        .run(&log)
                        .unwrap();
                    prop_assert_eq!(&plain, &faulty);
                }
            }

            /// (b) Under arbitrary fault traces no job is ever lost: every
            /// job ends with exactly one terminal outcome, and kills never
            /// panic or hang the virtual clock.
            #[test]
            fn no_job_lost_under_random_faults(
                seed in any::<u64>(),
                raw in proptest::collection::vec((0u64..3000, 0usize..18, 0u8..3), 0..40),
            ) {
                let tree = Tree::regular_two_level(3, 6);
                let log = LogSpec::new(
                    SystemModel {
                        total_nodes: 18,
                        min_request: 1,
                        max_request: 8,
                        ..SystemModel::theta()
                    },
                    25,
                    seed,
                )
                .comm_percent(50)
                .generate();
                let events: Vec<FaultEvent> = raw
                    .iter()
                    .map(|&(t, node, k)| FaultEvent {
                        t,
                        node,
                        kind: match k {
                            0 => FaultKind::Fail,
                            1 => FaultKind::Recover,
                            _ => FaultKind::Drain,
                        },
                    })
                    .collect();
                for policy in [
                    FailurePolicy::Cancel,
                    FailurePolicy::default(),
                    FailurePolicy::RequeueFront,
                ] {
                    let cfg = EngineConfig::new(SelectorKind::Balanced)
                        .with_failure_policy(policy);
                    let s = Engine::new(&tree, cfg)
                        .with_faults(FaultTrace::new(events.clone()))
                        .run(&log)
                        .unwrap();
                    prop_assert_eq!(s.outcomes.len(), log.jobs.len());
                    let mut ids: Vec<u64> =
                        s.outcomes.iter().map(|o| o.id.0).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    prop_assert_eq!(ids.len(), log.jobs.len());
                    let terminal = s.count_status(JobStatus::Completed)
                        + s.count_status(JobStatus::Cancelled)
                        + s.count_status(JobStatus::Rejected);
                    prop_assert_eq!(terminal, s.outcomes.len());
                    for o in &s.outcomes {
                        prop_assert!(o.submit <= o.start && o.start <= o.end);
                    }
                }
            }
        }
    }
}

mod observed {
    use super::*;
    use crate::{FailurePolicy, JobStatus};
    use commsched_metrics::Registry;
    use commsched_trace::{Capture, EventKind as TK, NullRecorder};
    use commsched_workload::fault::{FaultEvent, FaultKind, FaultTrace};

    fn faulty_setup() -> (Tree, JobLog, FaultTrace) {
        let tree = Tree::regular_two_level(3, 6);
        let log = LogSpec::new(
            SystemModel {
                total_nodes: 18,
                min_request: 1,
                max_request: 12,
                ..SystemModel::theta()
            },
            30,
            11,
        )
        .comm_percent(60)
        .generate();
        let faults = FaultTrace::new(vec![
            FaultEvent {
                t: 500,
                node: 2,
                kind: FaultKind::Fail,
            },
            FaultEvent {
                t: 900,
                node: 2,
                kind: FaultKind::Recover,
            },
            FaultEvent {
                t: 1400,
                node: 7,
                kind: FaultKind::Fail,
            },
            FaultEvent {
                t: 2000,
                node: 7,
                kind: FaultKind::Recover,
            },
        ]);
        (tree, log, faults)
    }

    #[test]
    fn observed_run_matches_unobserved() {
        let (tree, log, faults) = faulty_setup();
        let cfg =
            EngineConfig::new(SelectorKind::Balanced).with_failure_policy(FailurePolicy::Requeue {
                max_retries: 2,
                backoff: 30,
            });
        let plain = Engine::new(&tree, cfg)
            .with_faults(faults.clone())
            .run(&log)
            .unwrap();
        let mut cap = Capture::new();
        let mut reg = Registry::new();
        let observed = Engine::new(&tree, cfg)
            .with_faults(faults)
            .run_observed(&log, &mut cap, &mut reg)
            .unwrap();
        assert_eq!(plain, observed);
        assert!(!cap.events.is_empty());

        // Counters reconcile with the summary.
        assert_eq!(
            reg.counter_value("jobs.submitted"),
            Some(log.jobs.len() as u64)
        );
        assert_eq!(
            reg.counter_value("jobs.completed"),
            Some(observed.count_status(JobStatus::Completed) as u64)
        );
        assert_eq!(
            reg.counter_value("jobs.cancelled"),
            Some(observed.count_status(JobStatus::Cancelled) as u64)
        );
        assert_eq!(
            reg.counter_value("jobs.rejected"),
            Some(observed.count_status(JobStatus::Rejected) as u64)
        );
        assert_eq!(
            reg.counter_value("jobs.requeued"),
            Some(observed.total_retries())
        );
        assert_eq!(reg.counter_value("faults.applied"), Some(4));
        let report = reg.snapshot();
        let wait = &report
            .histograms
            .iter()
            .find(|(n, _)| n == "job.wait_s")
            .unwrap()
            .1;
        assert_eq!(
            wait.count(),
            observed.count_status(JobStatus::Completed) as u64
        );
    }

    #[test]
    fn null_recorder_emits_nothing_and_changes_nothing() {
        let (tree, log, faults) = faulty_setup();
        let cfg = EngineConfig::new(SelectorKind::Adaptive);
        let mut reg = Registry::new();
        let a = Engine::new(&tree, cfg)
            .with_faults(faults.clone())
            .run_observed(&log, &mut NullRecorder, &mut reg)
            .unwrap();
        let b = Engine::new(&tree, cfg)
            .with_faults(faults)
            .run(&log)
            .unwrap();
        assert_eq!(a, b);
        // The registry still fills (counters are independent of tracing).
        assert!(reg.counter_value("jobs.started").unwrap() > 0);
    }

    #[test]
    fn trace_is_ordered_and_spans_pair_up() {
        let (tree, log, faults) = faulty_setup();
        let cfg = EngineConfig::new(SelectorKind::Greedy)
            .with_failure_policy(FailurePolicy::RequeueFront);
        let mut cap = Capture::new();
        let mut reg = Registry::new();
        Engine::new(&tree, cfg)
            .with_faults(faults)
            .run_observed(&log, &mut cap, &mut reg)
            .unwrap();

        let mut last_t = 0;
        let mut open: Vec<(u64, u32)> = Vec::new(); // running (job, attempt)
        for (i, ev) in cap.events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64, "dense sequence numbers");
            assert!(ev.t_us >= last_t, "timestamps never go backwards");
            last_t = ev.t_us;
            match ev.kind {
                TK::JobStart { job, attempt, .. } => {
                    // The immediately preceding event is this attempt's place.
                    match cap.events[i - 1].kind {
                        TK::JobPlace {
                            job: pj,
                            attempt: pa,
                            ..
                        } => {
                            assert_eq!((pj, pa), (job, attempt));
                        }
                        other => panic!("start not preceded by place: {other:?}"),
                    }
                    open.push((job, attempt));
                }
                TK::JobFinish { job, attempt, .. } | TK::JobRequeue { job, attempt, .. } => {
                    let pos = open
                        .iter()
                        .position(|&(j, a)| (j, a) == (job, attempt))
                        .expect("finish/requeue closes an open span");
                    open.remove(pos);
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "all started attempts terminate");
    }
}
