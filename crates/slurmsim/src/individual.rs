//! Individual runs (§5.4): compare allocators from an identical cluster
//! state, one probe job at a time.
//!
//! Continuous runs give every allocator a *different* cluster history, so
//! the paper also freezes a partially-occupied cluster and places each of a
//! sample of jobs from that same state under every algorithm, reporting the
//! per-job execution-time improvement (Table 4, Figure 7 right).

use crate::engine::{Engine, EngineConfig};
use commsched_core::{ClusterState, JobNature, SelectorKind};
use commsched_topology::Tree;
use commsched_workload::{Job, JobLog};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One probe job's placement under one selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Selector name.
    pub selector: String,
    /// Eq. 6 cost of the chosen allocation.
    pub cost: f64,
    /// Eq. 7-adjusted runtime, seconds.
    pub runtime_adjusted: u64,
}

/// All placements for one probe job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndividualOutcome {
    /// The probe job's id.
    pub job: commsched_core::JobId,
    /// Nodes requested.
    pub nodes: usize,
    /// Runtime from the log (the default-allocator duration).
    pub runtime_original: u64,
    /// One entry per selector, in [`SelectorKind::ALL`] order.
    pub placements: Vec<Placement>,
}

impl IndividualOutcome {
    /// Percentage execution-time improvement of `selector` over default.
    pub fn improvement_over_default(&self, selector: SelectorKind) -> f64 {
        let default = self
            .placements
            .iter()
            .find(|p| p.selector == SelectorKind::Default.name())
            .map(|p| p.runtime_adjusted as f64)
            .unwrap_or(self.runtime_original as f64);
        let cand = self
            .placements
            .iter()
            .find(|p| p.selector == selector.name())
            .map(|p| p.runtime_adjusted as f64)
            .unwrap_or(default);
        if default == 0.0 {
            0.0
        } else {
            100.0 * (default - cand) / default
        }
    }
}

/// Occupy the cluster with the first jobs of `log` (placed by the default
/// selector, never released) until at least `fraction` of the nodes are
/// busy. Returns the frozen state — the paper's "partially occupied
/// cluster" starting point.
pub fn warmup_state(tree: &Tree, log: &JobLog, fraction: f64) -> ClusterState {
    assert!((0.0..1.0).contains(&fraction));
    let mut state = ClusterState::new(tree);
    let engine = Engine::new(tree, EngineConfig::new(SelectorKind::Default));
    let target = (tree.num_nodes() as f64 * fraction) as usize;
    for job in &log.jobs {
        if state.busy_total() >= target {
            break;
        }
        // Skip jobs that would overshoot the requested occupancy — a single
        // machine-sized job must not leave the "partially occupied" cluster
        // full.
        if state.busy_total() + job.nodes > target + target / 5 || job.nodes > state.free_total() {
            continue;
        }
        if let Some(placed) =
            engine.place(&state, job, &commsched_core::DefaultTreeSelector, &[], 0)
        {
            state
                .allocate(tree, job.id, &placed.nodes, job.nature)
                // detlint: allow(P1) — place() only returns nodes free in
                // the state it was handed, so allocate cannot fail here.
                .expect("placement over free nodes");
        }
    }
    state
}

/// Place every probe job from the same frozen `state` under every selector
/// in [`SelectorKind::ALL`]. Jobs that cannot fit the free capacity are
/// skipped (the paper samples jobs that fit its warm cluster).
///
/// Probes are independent — each one reads the shared frozen `state` — so
/// they fan out across the rayon thread budget in contiguous chunks, and
/// each chunk builds its four engines (and their evaluator caches) once
/// instead of once per probe. Engine placement over a frozen state is a
/// pure function of (state, job, config) — the evaluator memo is keyed by
/// the state's process-unique version — so chunk geometry cannot change a
/// single output byte, and results keep probe order at every thread
/// count.
pub fn individual_runs(
    tree: &Tree,
    state: &ClusterState,
    probes: &[Job],
    base_cfg: EngineConfig,
) -> Vec<IndividualOutcome> {
    // A few chunks per thread so uneven probe cost rebalances.
    let chunk_len = probes
        .len()
        .div_ceil((rayon::current_num_threads() * 4).max(1))
        .max(1);
    probes
        .par_chunks(chunk_len)
        .flat_map(|chunk| {
            let engines: Vec<_> = SelectorKind::ALL
                .iter()
                .map(|&kind| {
                    let cfg = EngineConfig {
                        selector: kind,
                        ..base_cfg
                    };
                    let engine = Engine::new(tree, cfg);
                    let selector = engine.build_selector();
                    (kind, engine, selector)
                })
                .collect();
            chunk
                .iter()
                .filter_map(|job| {
                    if job.nodes > state.free_total() {
                        return None;
                    }
                    let mut placements = Vec::with_capacity(engines.len());
                    for (kind, engine, selector) in &engines {
                        let Some(placed) = engine.place(state, job, selector.as_ref(), &[], 0)
                        else {
                            continue;
                        };
                        placements.push(Placement {
                            selector: kind.name().to_string(),
                            cost: placed.cost_actual,
                            runtime_adjusted: placed.adjusted,
                        });
                    }
                    Some(IndividualOutcome {
                        job: job.id,
                        nodes: job.nodes,
                        runtime_original: job.runtime,
                        placements,
                    })
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Mean percentage improvement over default across outcomes, for one
/// selector — a Table 4 cell. Compute-intensive probes contribute 0, as in
/// the paper (their runtimes never change).
pub fn mean_improvement(outcomes: &[IndividualOutcome], selector: SelectorKind) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    let sum: f64 = outcomes
        .iter()
        .map(|o| o.improvement_over_default(selector))
        .sum();
    sum / outcomes.len() as f64
}

/// Filter a log's jobs down to its communication-intensive ones (probes
/// for Table 4 are drawn from these).
pub fn comm_probes(log: &JobLog, limit: usize) -> Vec<Job> {
    log.jobs
        .iter()
        .filter(|j| j.nature == JobNature::CommIntensive)
        .take(limit)
        .cloned()
        .collect()
}
