//! Subcommand implementations.

use crate::args::Parsed;
use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_core::{SaBudget, SelectorKind};
use commsched_metrics::{Registry, Table};
use commsched_slurmsim::{BackfillPolicy, Engine, EngineConfig, FailurePolicy, JobStatus};
use commsched_topology::{SystemPreset, Tree};
use commsched_trace::{chrome_trace, Capture, ClassMask};
use commsched_workload::{swf, FaultTrace, JobLog, LogProfile, LogSpec, SystemModel};
use std::io::Write;

type CmdResult = Result<(), String>;

fn preset_by_name(name: &str) -> Result<SystemPreset, String> {
    match name.to_ascii_lowercase().as_str() {
        "iitk-dept" | "department" => Ok(SystemPreset::IitkDepartment),
        "iitk-hpc2010" | "hpc2010" => Ok(SystemPreset::IitkHpc2010),
        "cori" | "cori-like" => Ok(SystemPreset::CoriLike),
        "intrepid" => Ok(SystemPreset::Intrepid),
        "theta" => Ok(SystemPreset::Theta),
        "mira" => Ok(SystemPreset::Mira),
        "multirail-500k" => Ok(SystemPreset::Multirail500k),
        "dragonfly-1m" => Ok(SystemPreset::Dragonfly1M),
        other => Err(format!("unknown preset {other:?}")),
    }
}

fn system_by_name(name: &str) -> Result<SystemModel, String> {
    match name.to_ascii_lowercase().as_str() {
        "intrepid" => Ok(SystemModel::intrepid()),
        "theta" => Ok(SystemModel::theta()),
        "mira" => Ok(SystemModel::mira()),
        other => Err(format!("unknown system {other:?}")),
    }
}

/// Topology from `--preset` or `--conf`.
fn load_tree(p: &Parsed) -> Result<Tree, String> {
    match (p.get("preset"), p.get("conf")) {
        (Some(name), None) => Ok(preset_by_name(name)?.build()),
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Tree::from_conf(&text).map_err(|e| format!("{path}: {e}"))
        }
        _ => Err("give exactly one of --preset NAME or --conf FILE".into()),
    }
}

/// Workload from `--swf` or `--system` (+ generator knobs).
fn load_log(p: &Parsed) -> Result<(JobLog, usize), String> {
    let comm_pct: u8 = p.get_parsed("comm-pct", 90u8)?;
    let pattern: Pattern = p
        .get("pattern")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(Pattern::Rhvd);
    match (p.get("swf"), p.get("system")) {
        (Some(path), None) => {
            let ppn: usize = p.get_parsed("ppn", 1usize)?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut log = swf::parse(&text, path, ppn).map_err(|e| e.to_string())?;
            let jobs: usize = p.get_parsed("jobs", log.jobs.len())?;
            log.jobs.truncate(jobs);
            let seed: u64 = p.get_parsed("seed", 42u64)?;
            swf::assign_natures(&mut log, comm_pct, &[(pattern, 0.5)], seed);
            let machine = log.max_nodes();
            Ok((log, machine))
        }
        (None, Some(name)) => {
            let system = system_by_name(name)?;
            let jobs: usize = p.get_parsed("jobs", 1000usize)?;
            let seed: u64 = p.get_parsed("seed", 42u64)?;
            let log = LogSpec::new(system, jobs, seed)
                .comm_percent(comm_pct)
                .pattern(pattern)
                .generate();
            Ok((log, system.total_nodes))
        }
        _ => Err("give exactly one of --swf FILE or --system NAME".into()),
    }
}

/// Fault trace from `--fault-trace FILE` or the seeded generators:
/// `--mtbf SECS` (node churn, plus `--mttr`), `--switch-mtbf SECS`
/// (correlated subtree outages, plus `--switch-mttr`) and
/// `--link-degrade PERMILLE` (degraded cables, plus `--link-mtbf` /
/// `--link-mttr`). Generators compose — each draws from its own seed
/// stream off `--fault-seed` — and `None` is returned when nothing asks
/// for faults.
fn load_faults(p: &Parsed, tree: &Tree, log: &JobLog) -> Result<Option<FaultTrace>, String> {
    let num_nodes = tree.num_nodes();
    let generated = p.get("mtbf").is_some()
        || p.get("switch-mtbf").is_some()
        || p.get("link-degrade").is_some();
    let trace = match (p.get("fault-trace"), generated) {
        (None, false) => return Ok(None),
        (Some(_), true) => {
            return Err(
                "give at most one of --fault-trace FILE or the --mtbf/--switch-mtbf/\
                 --link-degrade generators"
                    .into(),
            )
        }
        (Some(path), false) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            FaultTrace::parse(&text).map_err(|e| format!("{path}: {e}"))?
        }
        (None, true) => {
            let seed: u64 = p.get_parsed("fault-seed", 7u64)?;
            // Generate faults over twice the log's nominal span so requeues
            // that run past the last submit still see failures.
            let span = log
                .jobs
                .iter()
                .map(|j| j.submit + j.walltime)
                .max()
                .unwrap_or(0);
            let horizon = span.saturating_mul(2).max(1);
            let mut trace = FaultTrace::empty();
            if p.get("mtbf").is_some() {
                let mtbf: f64 = p.get_parsed("mtbf", 0.0f64)?;
                let mttr: f64 = p.get_parsed("mttr", 3600.0f64)?;
                trace = trace.merge(
                    FaultTrace::mtbf(num_nodes, mtbf, mttr, horizon, seed)
                        .map_err(|e| e.to_string())?,
                );
            }
            if p.get("switch-mtbf").is_some() {
                let mtbf: f64 = p.get_parsed("switch-mtbf", 0.0f64)?;
                let mttr: f64 = p.get_parsed("switch-mttr", 3600.0f64)?;
                let all = FaultTrace::switch_mtbf(
                    tree.num_switches(),
                    mtbf,
                    mttr,
                    horizon,
                    seed.wrapping_add(1),
                )
                .map_err(|e| e.to_string())?;
                // Never generate a whole-machine outage: drop the root
                // switch's events (the draw sequence is per-switch, so the
                // filter does not shift any other switch's schedule).
                let root = tree.root().0;
                let kept: Vec<_> = all
                    .events()
                    .iter()
                    .filter(|e| e.node != root)
                    .copied()
                    .collect();
                trace = trace.merge(FaultTrace::new(kept));
            }
            if p.get("link-degrade").is_some() {
                let permille: u32 = p.get_parsed("link-degrade", 500u32)?;
                let mtbf: f64 = p.get_parsed("link-mtbf", 86400.0f64)?;
                let mttr: f64 = p.get_parsed("link-mttr", 3600.0f64)?;
                trace = trace.merge(
                    FaultTrace::link_degrade(
                        tree.num_directed_links(),
                        mtbf,
                        mttr,
                        permille,
                        horizon,
                        seed.wrapping_add(2),
                    )
                    .map_err(|e| e.to_string())?,
                );
            }
            trace
        }
    };
    trace
        .validate_machine(num_nodes, tree.num_switches(), tree.num_directed_links())
        .map_err(|e| e.to_string())?;
    Ok(Some(trace))
}

/// Failure policy from `--failure-policy` (+ `--max-retries`, `--backoff`).
fn load_failure_policy(p: &Parsed) -> Result<FailurePolicy, String> {
    let max_retries: u32 = p.get_parsed("max-retries", 3u32)?;
    let backoff: u64 = p.get_parsed("backoff", 0u64)?;
    match p.get("failure-policy").unwrap_or("requeue") {
        "cancel" => Ok(FailurePolicy::Cancel),
        "requeue" => Ok(FailurePolicy::Requeue {
            max_retries,
            backoff,
        }),
        "requeue-front" => Ok(FailurePolicy::RequeueFront),
        other => Err(format!(
            "unknown failure policy {other:?} (cancel | requeue | requeue-front)"
        )),
    }
}

/// `commsched topology validate|show`.
pub fn topology(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    match p.positional.first().map(String::as_str) {
        Some("validate") => {
            let path = p
                .positional
                .get(1)
                .ok_or("usage: topology validate <topology.conf>")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let tree = Tree::from_conf(&text).map_err(|e| format!("{path}: {e}"))?;
            writeln!(
                out,
                "{path}: OK — {} nodes, {} switches ({} leaves), {} levels",
                tree.num_nodes(),
                tree.num_switches(),
                tree.num_leaves(),
                tree.height()
            )
            .map_err(|e| e.to_string())
        }
        Some("show") => {
            let tree = load_tree(p)?;
            writeln!(
                out,
                "{} nodes, {} switches ({} leaves), {} levels\n",
                tree.num_nodes(),
                tree.num_switches(),
                tree.num_leaves(),
                tree.height()
            )
            .map_err(|e| e.to_string())?;
            let mut t = Table::new(["leaf", "name", "nodes"].map(String::from).to_vec());
            for k in 0..tree.num_leaves().min(40) {
                let sw = tree.switch(tree.leaf(k));
                t.row(vec![
                    k.to_string(),
                    sw.name.clone(),
                    tree.leaf_size(k).to_string(),
                ]);
            }
            write!(out, "{t}").map_err(|e| e.to_string())?;
            if tree.num_leaves() > 40 {
                writeln!(out, "... ({} more leaves)", tree.num_leaves() - 40)
                    .map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        _ => Err("usage: topology validate <file> | topology show --preset NAME".into()),
    }
}

/// `commsched log generate|stats`.
pub fn log(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    match p.positional.first().map(String::as_str) {
        Some("generate") => {
            let (log, _) = load_log(p)?;
            let text = swf::emit(&log);
            match p.get("out") {
                Some(path) => {
                    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
                    writeln!(out, "wrote {} jobs to {path}", log.jobs.len())
                        .map_err(|e| e.to_string())
                }
                None => write!(out, "{text}").map_err(|e| e.to_string()),
            }
        }
        Some("stats") => {
            let (log, machine) = load_log(p)?;
            let profile = LogProfile::new(&log, machine);
            if p.switch("json") {
                let json = serde_json::to_string_pretty(&profile).map_err(|e| e.to_string())?;
                writeln!(out, "{json}").map_err(|e| e.to_string())
            } else {
                write!(out, "{}", profile.render()).map_err(|e| e.to_string())
            }
        }
        _ => Err("usage: log generate|stats ...".into()),
    }
}

/// Insert a selector name into `path` before its extension, so compare
/// runs can write one trace/report per selector: `trace.jsonl` becomes
/// `trace.adaptive.jsonl`.
fn with_selector(path: &str, name: &str) -> String {
    let after_slash = path.rfind('/').map_or(0, |s| s + 1);
    match path.rfind('.') {
        Some(dot) if dot > after_slash => format!("{}.{name}{}", &path[..dot], &path[dot..]),
        _ => format!("{path}.{name}"),
    }
}

/// `commsched run` / `commsched compare`.
pub fn run_sim(p: &Parsed, out: &mut dyn Write, compare: bool) -> CmdResult {
    let tree = load_tree(p)?;
    let (log, _) = load_log(p)?;
    let drain_count: usize = p.get_parsed("drain", 0usize)?;
    if drain_count >= tree.num_nodes() {
        return Err(format!(
            "--drain {drain_count} would leave no healthy nodes (machine has {})",
            tree.num_nodes()
        ));
    }
    if !p.switch("reject-oversized") {
        for j in &log.jobs {
            if j.nodes > tree.num_nodes() {
                return Err(format!(
                    "{} requests {} nodes but the topology has {} — pick a larger \
                     --preset, trim the log with --jobs, or pass --reject-oversized",
                    j.id,
                    j.nodes,
                    tree.num_nodes()
                ));
            }
        }
    }
    let faults = load_faults(p, &tree, &log)?;
    let failure_policy = load_failure_policy(p)?;

    // Observability: any of these flags switches the engine call to the
    // instrumented path; with none given the plain `run()` is used so the
    // default output stays byte-identical.
    let trace_out = p.get("trace-out").map(str::to_string);
    let report_out = p.get("report-out").map(str::to_string);
    let trace_mask = match p.get("trace-filter") {
        Some(_) if trace_out.is_none() => {
            return Err("--trace-filter needs --trace-out".into());
        }
        Some(spec) => ClassMask::parse(spec)?,
        None => ClassMask::ALL,
    };
    let observed = trace_out.is_some() || report_out.is_some();

    // Engine knobs.
    let backfill = match p.get("backfill").unwrap_or("easy") {
        "none" | "fifo" => BackfillPolicy::None,
        "easy" => BackfillPolicy::Easy,
        "conservative" => BackfillPolicy::Conservative,
        other => return Err(format!("unknown backfill policy {other:?}")),
    };
    // Drain the tail of the machine: deterministic and easy to reason about.
    let drained: Vec<commsched_topology::NodeId> = (tree.num_nodes() - drain_count
        ..tree.num_nodes())
        .map(commsched_topology::NodeId)
        .collect();

    let selectors: Vec<SelectorKind> = if compare {
        SelectorKind::ALL.to_vec()
    } else {
        vec![p
            .get("selector")
            .unwrap_or("adaptive")
            .parse::<SelectorKind>()?]
    };

    let mut t = Table::new(
        [
            "selector",
            "exec(h)",
            "wait(h)",
            "turnaround(h)",
            "node-h/job",
            "comm cost",
            "throughput(j/h)",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut timelines: Vec<(SelectorKind, Vec<(u64, f64)>)> = Vec::new();
    let mut fault_lines: Vec<String> = Vec::new();
    let mut obs_lines: Vec<String> = Vec::new();
    // SA knobs (accepted — and checked — only when the SA selector runs;
    // the search seed defaults to the workload seed so one --seed flag
    // reproduces the whole run).
    let sa_budget: u32 = p.get_parsed("sa-budget", 256u32)?;
    let sa_seed: u64 = p.get_parsed("sa-seed", p.get_parsed("seed", 42u64)?)?;

    for kind in selectors {
        let mut cfg = EngineConfig::new(kind);
        cfg.backfill = backfill;
        cfg.failure_policy = failure_policy;
        if kind == SelectorKind::Sa {
            cfg = cfg.with_sa(SaBudget::with_evals(sa_budget), sa_seed);
        }
        if p.switch("reject-oversized") {
            cfg = cfg.reject_oversized();
        }
        if p.switch("quiet") {
            cfg.adjust_runtimes = false;
        }
        let mut engine = Engine::new(&tree, cfg).drain_nodes(drained.clone());
        if let Some(f) = &faults {
            engine = engine.with_faults(f.clone());
        }
        let summary = if observed {
            // Only capture events when a trace sink was requested; a bare
            // --report-out keeps the mask empty (counters still collect).
            let mut cap = Capture::with_mask(if trace_out.is_some() {
                trace_mask
            } else {
                ClassMask::NONE
            });
            let mut reg = Registry::new();
            let summary = engine
                .run_observed(&log, &mut cap, &mut reg)
                .map_err(|e| e.to_string())?;
            if let Some(path) = &trace_out {
                let path = if compare {
                    with_selector(path, kind.name())
                } else {
                    path.clone()
                };
                let text = if path.ends_with(".json") {
                    chrome_trace(&cap.events)
                } else {
                    cap.to_jsonl()
                };
                std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
                obs_lines.push(format!(
                    "{}: wrote {} trace events to {path}",
                    kind.name(),
                    cap.events.len()
                ));
            }
            if let Some(path) = &report_out {
                let path = if compare {
                    with_selector(path, kind.name())
                } else {
                    path.clone()
                };
                std::fs::write(&path, reg.snapshot().to_json_pretty())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                obs_lines.push(format!("{}: wrote run report to {path}", kind.name()));
            }
            summary
        } else {
            engine.run(&log).map_err(|e| e.to_string())?
        };
        if faults.is_some() || p.switch("reject-oversized") {
            fault_lines.push(format!(
                "{}: {} completed, {} cancelled, {} rejected; {} requeues, \
                 {:.1} node-hours lost to failures",
                kind.name(),
                summary.count_status(JobStatus::Completed),
                summary.count_status(JobStatus::Cancelled),
                summary.count_status(JobStatus::Rejected),
                summary.total_retries(),
                summary.lost_node_hours(),
            ));
        }
        if p.get("utilization").is_some() {
            let buckets: usize = p.get_parsed("utilization", 20usize)?;
            timelines.push((kind, summary.utilization(tree.num_nodes(), buckets)));
        }
        t.row(vec![
            kind.name().to_string(),
            format!("{:.1}", summary.total_exec_hours()),
            format!("{:.1}", summary.total_wait_hours()),
            format!("{:.2}", summary.avg_turnaround_hours()),
            format!("{:.1}", summary.avg_node_hours()),
            format!("{:.0}", summary.total_comm_cost()),
            format!("{:.1}", summary.throughput()),
        ]);
    }
    writeln!(
        out,
        "log {:?}: {} jobs on {} nodes{}\n\n{t}",
        log.name,
        log.jobs.len(),
        tree.num_nodes(),
        if drained.is_empty() {
            String::new()
        } else {
            format!(" ({} drained)", drained.len())
        },
    )
    .map_err(|e| e.to_string())?;
    if !fault_lines.is_empty() {
        writeln!(out, "failures (policy: {failure_policy}):").map_err(|e| e.to_string())?;
        for line in &fault_lines {
            writeln!(out, "  {line}").map_err(|e| e.to_string())?;
        }
    }
    for line in &obs_lines {
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
    }
    for (kind, timeline) in timelines {
        writeln!(out, "utilization over time — {}:", kind.name()).map_err(|e| e.to_string())?;
        for (t0, frac) in timeline {
            writeln!(
                out,
                "  t={t0:>10}s  {:>5.1}%  {}",
                frac * 100.0,
                "#".repeat((frac * 40.0) as usize)
            )
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// `commsched individual` — the paper's individual-runs protocol (§5.4,
/// Table 4): freeze a partially occupied cluster and place each probe job
/// from the identical state under all four allocators.
pub fn individual(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    use commsched_slurmsim::individual::{individual_runs, mean_improvement, warmup_state};

    let tree = load_tree(p)?;
    let (log, _) = load_log(p)?;
    let warm: f64 = p.get_parsed("warmup", 0.55f64)?;
    if !(0.0..1.0).contains(&warm) {
        return Err("--warmup must be in [0, 1)".into());
    }
    let probes_wanted: usize = p.get_parsed("probes", 200usize)?;

    let state = warmup_state(&tree, &log, warm);
    let probes: Vec<_> = log
        .jobs
        .iter()
        .filter(|j| j.nature.is_comm() && j.nodes <= state.free_total())
        .take(probes_wanted)
        .cloned()
        .collect();
    if probes.is_empty() {
        return Err("no communication-intensive probes fit the warm cluster".into());
    }
    let outcomes = individual_runs(
        &tree,
        &state,
        &probes,
        EngineConfig::new(SelectorKind::Default),
    );

    let mut t = Table::new(
        ["selector", "mean % exec improvement over default"]
            .map(String::from)
            .to_vec(),
    );
    for kind in SelectorKind::PROPOSED {
        t.row(vec![
            kind.name().to_string(),
            format!("{:.2}", mean_improvement(&outcomes, kind)),
        ]);
    }
    writeln!(
        out,
        "individual runs: {} probes from a {:.0}%-occupied cluster          ({} busy / {} nodes)

{t}",
        outcomes.len(),
        100.0 * state.busy_total() as f64 / tree.num_nodes() as f64,
        state.busy_total(),
        tree.num_nodes()
    )
    .map_err(|e| e.to_string())
}

/// `commsched patterns [RANKS]`.
pub fn patterns(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let ranks: usize = p
        .positional
        .first()
        .map(|s| s.parse().map_err(|_| format!("bad rank count {s:?}")))
        .transpose()?
        .unwrap_or(8);
    for pattern in Pattern::ALL {
        let spec = CollectiveSpec::new(pattern, 1 << 20);
        writeln!(
            out,
            "{pattern}: {} steps over {ranks} ranks, {} total bytes",
            spec.num_steps(ranks),
            spec.total_bytes(ranks)
        )
        .map_err(|e| e.to_string())?;
        for (k, step) in spec.steps(ranks).iter().enumerate() {
            let pairs: Vec<String> = step.pairs.iter().map(|(a, b)| format!("{a}-{b}")).collect();
            writeln!(
                out,
                "  step {k:>2} ({:>8} B): {}",
                step.msize,
                pairs.join(" ")
            )
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}
